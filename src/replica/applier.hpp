// Follower-side replication: applies the leader's journal stream into a
// local replica store and a read-only database.
//
// A replica store directory holds the same files as a leader store —
// schema.herc, snapshot.herc, journal.wal — plus a `replica.herc` marker:
//
//   replica base <epoch> <seq> leader <endpoint>
//
// The marker is what distinguishes a follower's store from a leader's: it
// carries the base sequence of the local journal (the snapshot meta line
// cannot — frames 0..base-1 of the epoch are folded into the image, so the
// local journal starts at `base`, not 0), and its presence makes `herc
// serve` refuse to lead from the directory until `herc promote` removes it.
//
// Apply discipline is write-ahead, same as the leader: a shipped frame is
// appended to the local journal before it touches the database, so the
// replica store is fsck-clean after a crash at any byte.  The storage epoch
// is the fencing token — `apply_frame` rejects frames from an epoch below
// the replica's (`kFenced`: a demoted ex-leader is talking), and resyncs on
// anything from the future (`kGap`: we missed a checkpoint).
//
// Local recovery (`bootstrap`) replays snapshot + journal WITHOUT the
// leader's crash sweep: open runs in a replica's history are the leader's
// live runs, not evidence of a crash.  `promote_store` is the opposite —
// it runs full leader recovery (seal + quarantine), checkpoints (bumping
// the epoch: the fence that keeps the old leader out), and removes the
// marker, turning the directory into a leader store.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "history/history_db.hpp"
#include "replica/replication.hpp"
#include "schema/task_schema.hpp"
#include "server/protocol.hpp"
#include "server/socket.hpp"
#include "storage/journal.hpp"
#include "storage/store.hpp"
#include "support/clock.hpp"

namespace herc::replica {

struct ApplierOptions {
  storage::JournalOptions journal;
  /// Base pause between reconnection attempts to the leader.  Attempts
  /// back off exponentially (jittered ±25%) up to `reconnect_cap_ms`,
  /// resetting whenever the stream makes progress — so a brief leader
  /// bounce retries fast while a long outage stops hammering the network.
  int reconnect_delay_ms = 200;
  int reconnect_cap_ms = 5'000;
  /// Jitter seed (0 = derived from the store directory) so a fleet of
  /// followers does not reconnect in lockstep after a leader restart.
  std::uint64_t backoff_seed = 0;
  /// Dial timeout for every connection to the leader.  Unbounded connects
  /// are how a follower wedges forever behind a black-holed network path;
  /// expiring just reconnects through the normal backoff.
  int connect_timeout_ms = 5'000;
  /// Max ms to wait for the leader's hello (and for the rest of any frame
  /// once its first byte arrived).  A connection that opens but never
  /// speaks is dead-but-open: shed it and re-dial.
  int hello_timeout_ms = 5'000;
  /// Liveness probe period on an idle subscription.  A caught-up follower
  /// legitimately hears nothing for long stretches, so the first quiet
  /// period sends a keepalive ack; a second consecutive quiet period means
  /// even the probe provoked nothing — re-dial rather than trust a socket
  /// that may be silently dead (a proxy wedge, a vanished peer, a dropped
  /// route).  Re-subscribing when caught up is one empty bootstrap.
  int idle_probe_ms = 5'000;
  /// Wraps every database mutation (snapshot install, frame apply,
  /// checkpoint).  The server installs its exclusive-session-lock taker
  /// here so replication applies never race live reads; when empty the
  /// mutation runs directly (single-threaded tests).
  std::function<void(const std::function<void()>&)> gate;
};

/// What `apply_frame` did with a shipped frame.
enum class ApplyOutcome {
  kApplied,    ///< appended to the local journal and applied
  kDuplicate,  ///< already applied (harmless replay)
  kFenced,     ///< stale epoch: the sender is a demoted ex-leader
  kGap,        ///< ahead of our position: disconnect and resync
};

class ReplicaApplier {
 public:
  /// Binds to the replica store in `dir` (created on first bootstrap),
  /// following the leader at `leader`.
  ReplicaApplier(server::Endpoint leader, std::string dir,
                 ApplierOptions options = {});
  ~ReplicaApplier();

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// Makes the database available: local recovery from the store first,
  /// then up to `attempts` snapshot fetches from the leader.  Must succeed
  /// before `schema()`/`db()` are used (attach to the serving session) and
  /// before `start()`.  Synchronous; returns false when the leader stayed
  /// unreachable (or refused us as fenced).
  [[nodiscard]] bool bootstrap(int attempts = 5);

  /// Starts the streaming thread: subscribe at the current position, apply
  /// frames (through the gate), ack, reconnect forever until `stop`.
  void start();
  void stop();

  /// Installs the apply gate (see `ApplierOptions::gate`) — typically the
  /// serving server's exclusive-lock taker, which exists only after the
  /// session is built from this applier's bootstrap.  Call before `start`.
  void set_gate(std::function<void(const std::function<void()>&)> gate) {
    options_.gate = std::move(gate);
  }

  // ---- the apply path (the stream thread wraps these in the gate; tests
  // ---- call them directly) ---------------------------------------------------

  void install_snapshot(const SnapshotShipment& snapshot);
  [[nodiscard]] ApplyOutcome apply_frame(const JournalShipment& shipment);
  void apply_checkpoint(std::uint64_t new_epoch);

  // ---- observers -------------------------------------------------------------

  [[nodiscard]] bool bootstrapped() const { return db_ != nullptr; }
  [[nodiscard]] schema::TaskSchema& schema() { return *schema_; }
  [[nodiscard]] history::HistoryDb& db() { return *db_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const server::Endpoint& leader() const { return leader_; }

  /// The applied position (lock-free: the `stats` path reads it while the
  /// stream thread applies).  The acquire on `seq` pairs with the release
  /// in `publish_position`: observing a seq also observes every database
  /// mutation applied before it was published.
  [[nodiscard]] StreamPosition position() const {
    const std::uint64_t seq = seq_.load(std::memory_order_acquire);
    return {epoch_.load(std::memory_order_relaxed), seq};
  }
  /// Local journal file size (header + frames), for `stats`.
  [[nodiscard]] std::uint64_t journal_bytes() const {
    return journal_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_applied() const { return applied_; }
  /// Frames rejected for carrying a stale epoch (fenced ex-leader).
  [[nodiscard]] std::uint64_t fenced_frames() const { return fenced_; }
  /// Subscriptions the leader refused (kResult instead of a stream).
  [[nodiscard]] std::uint64_t refused_subscribes() const { return refused_; }
  /// Times the stream fell out of sync and reconnected for a resync.
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }
  [[nodiscard]] std::string last_error() const;
  /// Where the stream thread is right now ("connecting", "awaiting-hello",
  /// "streaming", "backoff", ...) — names the wedge when a follower stalls.
  [[nodiscard]] const char* stream_state() const {
    return state_.load(std::memory_order_relaxed);
  }

  /// True when `dir` carries the replica marker.
  [[nodiscard]] static bool is_replica_store(const std::string& dir);

 private:
  [[nodiscard]] std::string schema_path() const;
  [[nodiscard]] std::string snapshot_path() const;
  [[nodiscard]] std::string journal_path() const;
  [[nodiscard]] std::string marker_path() const;

  /// Rebuilds schema + db from the store directory.  Returns false (after
  /// recording why) when the directory holds nothing consistently usable —
  /// the caller falls back to a full snapshot fetch.
  [[nodiscard]] bool recover_local();
  /// One connect + subscribe-from-nothing + snapshot install.
  [[nodiscard]] bool fetch_snapshot();
  /// Reads the leader's hello under `hello_timeout_ms`; throws NetError
  /// when the leader opens the connection but never speaks.
  [[nodiscard]] server::ReadOutcome read_hello(int fd, server::Frame& frame);
  /// One connect + subscribe + apply-until-disconnect.
  void stream_once();
  void stream_loop();

  void gated(const std::function<void()>& fn);
  void write_marker(std::uint64_t epoch, std::uint64_t base_seq);
  void publish_position(std::uint64_t epoch, std::uint64_t seq);
  void set_error(std::string message);

  server::Endpoint leader_;
  std::string dir_;
  ApplierOptions options_;
  support::SystemClock clock_;

  /// Allocated once, reassigned in place on resync: the serving session
  /// holds `&db()` across resyncs, so both addresses must be stable.
  std::unique_ptr<schema::TaskSchema> schema_;
  std::unique_ptr<history::HistoryDb> db_;
  std::optional<storage::Journal> journal_;
  /// Sequence of the local journal's first frame (= the snapshot's seq).
  std::uint64_t base_seq_ = 0;
  /// When true the next subscribe asks for a full snapshot (the local
  /// database can no longer be trusted to extend).
  bool need_snapshot_ = true;
  /// `storage::frame_checksum` of the last frame in the local journal
  /// (valid when `has_tail_`).  Sent with every subscribe so the leader
  /// can tell a caught-up follower from one whose history diverged at the
  /// same sequence number (a torn leader tail the follower streamed
  /// complete) and answer the latter with a snapshot resync.
  std::uint64_t tail_checksum_ = 0;
  bool has_tail_ = false;

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> journal_bytes_{0};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> fenced_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> resyncs_{0};

  std::thread thread_;
  std::atomic<bool> stopping_{false};
  /// Guards `sock_` between the stream thread and `stop`'s shutdown.
  mutable std::mutex sock_mutex_;
  server::Socket sock_;
  mutable std::mutex error_mutex_;
  std::string last_error_;
  /// Stream-thread phase, for diagnostics (points at string literals).
  std::atomic<const char*> state_{"idle"};
};

/// What `promote_store` found and did.
struct PromoteReport {
  /// The store's epoch after the promotion checkpoint (the fence: strictly
  /// above anything the old leader ever journaled).
  std::uint64_t epoch = 0;
  /// The leader-style recovery that ran first (seals, quarantines).
  storage::RecoveryReport recovery;
};

/// Turns the replica store in `dir` into a leader store: full recovery
/// (sealing the ex-leader's interrupted runs, quarantining partial
/// products), a checkpoint under the next epoch, and removal of the
/// replica marker.  Throws `HistoryError` when `dir` is not a replica
/// store.  Safe to re-run after a mid-promote crash.
[[nodiscard]] PromoteReport promote_store(const std::string& dir,
                                          storage::StoreOptions options = {});

}  // namespace herc::replica
