#include "replica/applier.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "schema/schema_io.hpp"
#include "server/protocol.hpp"
#include "support/backoff.hpp"
#include "support/error.hpp"
#include "support/record.hpp"
#include "support/text.hpp"

namespace herc::replica {

namespace fs = std::filesystem;
using support::HistoryError;
using support::NetError;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw HistoryError("replica: cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::uint64_t seed_from(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash | 1;
}

std::optional<std::uint64_t> parse_u64(std::string_view token) {
  if (token.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

ReplicaApplier::ReplicaApplier(server::Endpoint leader, std::string dir,
                               ApplierOptions options)
    : leader_(std::move(leader)), dir_(std::move(dir)),
      options_(std::move(options)) {
  if (options_.reconnect_delay_ms < 1) options_.reconnect_delay_ms = 1;
  if (options_.reconnect_cap_ms < options_.reconnect_delay_ms) {
    options_.reconnect_cap_ms = options_.reconnect_delay_ms;
  }
  if (options_.backoff_seed == 0) options_.backoff_seed = seed_from(dir_);
}

ReplicaApplier::~ReplicaApplier() { stop(); }

std::string ReplicaApplier::schema_path() const {
  return (fs::path(dir_) / "schema.herc").string();
}
std::string ReplicaApplier::snapshot_path() const {
  return (fs::path(dir_) / "snapshot.herc").string();
}
std::string ReplicaApplier::journal_path() const {
  return (fs::path(dir_) / "journal.wal").string();
}
std::string ReplicaApplier::marker_path() const {
  return (fs::path(dir_) / "replica.herc").string();
}

bool ReplicaApplier::is_replica_store(const std::string& dir) {
  return fs::exists(fs::path(dir) / "replica.herc");
}

std::string ReplicaApplier::last_error() const {
  std::scoped_lock lock(error_mutex_);
  return last_error_;
}

void ReplicaApplier::set_error(std::string message) {
  std::scoped_lock lock(error_mutex_);
  last_error_ = std::move(message);
}

void ReplicaApplier::gated(const std::function<void()>& fn) {
  if (options_.gate) {
    options_.gate(fn);
  } else {
    fn();
  }
}

void ReplicaApplier::publish_position(std::uint64_t epoch, std::uint64_t seq) {
  journal_bytes_.store(journal_.has_value() ? journal_->bytes() : 0,
                       std::memory_order_relaxed);
  epoch_.store(epoch, std::memory_order_relaxed);
  // The release pairs with `position()`'s acquire: a reader that observes
  // the new seq also observes every database mutation applied before it.
  seq_.store(seq, std::memory_order_release);
}

void ReplicaApplier::write_marker(std::uint64_t epoch,
                                  std::uint64_t base_seq) {
  storage::write_file_atomic(
      marker_path(), "replica base " + std::to_string(epoch) + " " +
                         std::to_string(base_seq) + " leader " +
                         leader_.describe() + "\n");
}

// ---- local recovery ----------------------------------------------------------

bool ReplicaApplier::recover_local() {
  if (!fs::exists(marker_path()) || !fs::exists(schema_path()) ||
      !fs::exists(snapshot_path())) {
    return false;
  }

  // Marker: "replica base <epoch> <seq> leader <endpoint>".
  const std::vector<std::string> marker =
      support::split_ws(support::trim(read_file(marker_path())));
  if (marker.size() < 6 || marker[0] != "replica" || marker[1] != "base" ||
      marker[4] != "leader") {
    set_error("replica store '" + dir_ + "': malformed replica marker");
    return false;
  }
  const std::optional<std::uint64_t> marker_epoch = parse_u64(marker[2]);
  const std::optional<std::uint64_t> marker_base = parse_u64(marker[3]);
  if (!marker_epoch.has_value() || !marker_base.has_value()) {
    set_error("replica store '" + dir_ + "': malformed replica marker");
    return false;
  }

  if (schema_ == nullptr) {
    schema_ = std::make_unique<schema::TaskSchema>(
        schema::parse_schema(read_file(schema_path())));
  } else {
    *schema_ = schema::parse_schema(read_file(schema_path()));
  }

  // Snapshot: a "snap" meta line, then a full save image — the leader's
  // format.  A snapshot from a different epoch than the marker means a
  // crash landed between install steps; resync rather than guess.
  auto fresh = std::make_unique<history::HistoryDb>(*schema_, clock_);
  bool seen_meta = false;
  for (const std::string& line :
       support::split(read_file(snapshot_path()), '\n')) {
    if (support::trim(line).empty()) continue;
    if (!seen_meta) {
      support::RecordReader rec(line);
      if (rec.kind() != "snap") {
        set_error("replica store '" + dir_ +
                  "': snapshot does not start with a snap record");
        return false;
      }
      if (static_cast<std::uint64_t>(rec.next_int64()) != *marker_epoch) {
        set_error("replica store '" + dir_ +
                  "': snapshot epoch differs from the replica marker");
        return false;
      }
      seen_meta = true;
      continue;
    }
    fresh->apply_saved_line(line);
  }
  if (!seen_meta) {
    set_error("replica store '" + dir_ + "': empty snapshot");
    return false;
  }

  // Journal tail on top — the follower's own WAL of applied frames.  No
  // crash sweep here: open runs are the leader's live runs.
  journal_.reset();
  std::uint64_t replayed = 0;
  bool need_fresh_journal = true;
  has_tail_ = false;
  if (fs::exists(journal_path())) {
    const storage::ScanResult scan =
        storage::scan_journal(read_file(journal_path()));
    if (scan.header_valid && scan.epoch == *marker_epoch) {
      for (const std::string& record : scan.records) {
        for (const std::string& line : support::split(record, '\n')) {
          fresh->apply_saved_line(line);
        }
      }
      replayed = scan.records.size();
      if (!scan.records.empty()) {
        tail_checksum_ = storage::frame_checksum(scan.records.back());
        has_tail_ = true;
      }
      if (scan.torn) {
        std::error_code ec;
        fs::resize_file(journal_path(), scan.valid_bytes, ec);
        if (ec) {
          set_error("replica store '" + dir_ +
                    "': cannot truncate torn journal tail: " + ec.message());
          return false;
        }
      }
      journal_ = storage::Journal::open(journal_path(), *marker_epoch,
                                        scan.valid_bytes, options_.journal);
      need_fresh_journal = false;
    } else if (scan.header_valid && scan.epoch > *marker_epoch) {
      set_error("replica store '" + dir_ + "': journal is at future epoch " +
                std::to_string(scan.epoch) + " but the marker is at epoch " +
                std::to_string(*marker_epoch) + "; resyncing");
      return false;
    }
    // A stale-epoch journal's frames are inside the snapshot: discard.
  }
  if (need_fresh_journal) {
    journal_ = storage::Journal::create(journal_path(), *marker_epoch,
                                        options_.journal);
  }

  if (db_ == nullptr) {
    db_ = std::move(fresh);
  } else {
    *db_ = std::move(*fresh);
  }
  base_seq_ = *marker_base;
  need_snapshot_ = false;
  publish_position(*marker_epoch, *marker_base + replayed);
  return true;
}

// ---- the apply path ----------------------------------------------------------

void ReplicaApplier::install_snapshot(const SnapshotShipment& snapshot) {
  fs::create_directories(dir_);
  if (schema_ == nullptr) {
    schema_ = std::make_unique<schema::TaskSchema>(
        schema::parse_schema(snapshot.schema_text));
  } else {
    *schema_ = schema::parse_schema(snapshot.schema_text);
  }
  history::HistoryDb fresh =
      history::HistoryDb::load(*schema_, clock_, snapshot.image);
  if (db_ == nullptr) {
    db_ = std::make_unique<history::HistoryDb>(std::move(fresh));
  } else {
    *db_ = std::move(fresh);
  }

  storage::write_file_atomic(schema_path(), snapshot.schema_text);
  support::RecordWriter meta("snap");
  meta.field(static_cast<std::int64_t>(snapshot.epoch));
  meta.field(static_cast<std::uint32_t>(db_->size()));
  storage::write_file_atomic(snapshot_path(),
                             meta.str() + "\n" + snapshot.image);
  journal_.reset();
  journal_ = storage::Journal::create(journal_path(), snapshot.epoch,
                                      options_.journal);
  // Marker last: a crash before this line leaves marker and snapshot at
  // different epochs, which recovery answers with a clean resync.
  write_marker(snapshot.epoch, snapshot.seq);
  base_seq_ = snapshot.seq;
  need_snapshot_ = false;
  has_tail_ = false;  // local journal is empty: nothing to vouch for
  publish_position(snapshot.epoch, snapshot.seq);
}

ApplyOutcome ReplicaApplier::apply_frame(const JournalShipment& shipment) {
  if (db_ == nullptr) return ApplyOutcome::kGap;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  const std::uint64_t seq = seq_.load(std::memory_order_relaxed);
  if (shipment.epoch < epoch) {
    fenced_.fetch_add(1, std::memory_order_relaxed);
    return ApplyOutcome::kFenced;
  }
  if (shipment.epoch > epoch) return ApplyOutcome::kGap;
  if (shipment.seq < seq) return ApplyOutcome::kDuplicate;
  if (shipment.seq > seq) return ApplyOutcome::kGap;

  // Write-ahead: the local journal holds the frame before the database
  // shows it, so a crash mid-apply recovers to a consistent prefix.
  journal_->append(shipment.lines);
  for (const std::string& line : support::split(shipment.lines, '\n')) {
    db_->apply_saved_line(line);
  }
  applied_.fetch_add(1, std::memory_order_relaxed);
  tail_checksum_ = storage::frame_checksum(shipment.lines);
  has_tail_ = true;
  publish_position(epoch, seq + 1);
  return ApplyOutcome::kApplied;
}

void ReplicaApplier::apply_checkpoint(std::uint64_t new_epoch) {
  if (db_ == nullptr) return;
  if (new_epoch <= epoch_.load(std::memory_order_relaxed)) return;
  // The leader compacted: everything we have applied is now inside its
  // snapshot of `new_epoch`.  Mirror the compaction locally.
  support::RecordWriter meta("snap");
  meta.field(static_cast<std::int64_t>(new_epoch));
  meta.field(static_cast<std::uint32_t>(db_->size()));
  storage::write_file_atomic(snapshot_path(), meta.str() + "\n" + db_->save());
  journal_.reset();
  journal_ =
      storage::Journal::create(journal_path(), new_epoch, options_.journal);
  write_marker(new_epoch, 0);
  base_seq_ = 0;
  has_tail_ = false;  // the compacted journal starts empty
  publish_position(new_epoch, 0);
}

// ---- the stream --------------------------------------------------------------

bool ReplicaApplier::bootstrap(int attempts) {
  try {
    if (recover_local()) return true;
  } catch (const std::exception& e) {
    set_error(e.what());
  }
  support::Backoff backoff(options_.reconnect_delay_ms,
                           options_.reconnect_cap_ms, options_.backoff_seed);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (stopping_.load()) return false;
    if (attempt > 0) backoff.sleep(&stopping_);
    try {
      if (fetch_snapshot()) return true;
    } catch (const std::exception& e) {
      set_error(e.what());
    }
  }
  return false;
}

bool ReplicaApplier::fetch_snapshot() {
  server::Socket sock =
      server::connect_to(leader_, options_.connect_timeout_ms);
  server::Frame frame;
  if (read_hello(sock.fd(), frame) != server::ReadOutcome::kFrame ||
      frame.type != server::FrameType::kHello ||
      frame.payload.rfind(server::kMagic, 0) != 0) {
    throw NetError("replica: '" + leader_.describe() +
                   "' is not a herc server");
  }
  server::write_frame(sock.fd(),
                      {server::FrameType::kSubscribe, encode_subscribe({})});
  // Idle-bounded only: the snapshot may be large, so once its first byte
  // arrives the transfer is given unlimited time — but a leader that goes
  // silent before sending anything is shed.
  const server::ReadDeadline snapshot_deadline{options_.hello_timeout_ms, 0};
  while (server::read_frame(sock.fd(), frame, snapshot_deadline) ==
         server::ReadOutcome::kFrame) {
    if (frame.type == server::FrameType::kSnapshot) {
      const SnapshotShipment snapshot = decode_snapshot(frame.payload);
      gated([&] { install_snapshot(snapshot); });
      return true;
    }
    if (frame.type == server::FrameType::kResult) {
      const server::ResultInfo info = server::decode_result(frame.payload);
      refused_.fetch_add(1, std::memory_order_relaxed);
      set_error(info.error);
      return false;
    }
    // kJournal before the snapshot cannot happen (the leader bootstraps
    // first); anything else on this connection is ignorable noise.
  }
  throw NetError("replica: leader closed the stream before the snapshot");
}

void ReplicaApplier::start() {
  if (thread_.joinable()) return;
  stopping_.store(false);
  thread_ = std::thread([this] { stream_loop(); });
}

void ReplicaApplier::stop() {
  stopping_.store(true);
  {
    std::scoped_lock lock(sock_mutex_);
    if (sock_.valid()) sock_.shutdown_both();
  }
  if (thread_.joinable()) thread_.join();
}

void ReplicaApplier::stream_loop() {
  support::Backoff backoff(options_.reconnect_delay_ms,
                           options_.reconnect_cap_ms,
                           options_.backoff_seed ^ 0x5cddULL);
  while (!stopping_.load()) {
    const std::uint64_t applied_before = applied_;
    const StreamPosition before = position();
    try {
      stream_once();
    } catch (const std::exception& e) {
      set_error(e.what());
    }
    {
      std::scoped_lock lock(sock_mutex_);
      sock_.close();
    }
    if (stopping_.load()) break;
    const StreamPosition after = position();
    if (applied_ != applied_before || after.epoch != before.epoch ||
        after.seq != before.seq) {
      // The stream moved before it broke: the leader is (or was) healthy,
      // so retry fast instead of escalating the pause.
      backoff.reset();
    }
    state_.store("backoff", std::memory_order_relaxed);
    backoff.sleep(&stopping_);
  }
  state_.store("stopped", std::memory_order_relaxed);
}

server::ReadOutcome ReplicaApplier::read_hello(int fd, server::Frame& frame) {
  const server::ReadDeadline deadline{options_.hello_timeout_ms,
                                      options_.hello_timeout_ms};
  const server::ReadOutcome outcome = server::read_frame(fd, frame, deadline);
  if (outcome == server::ReadOutcome::kIdle) {
    throw NetError("replica: '" + leader_.describe() +
                   "' accepted the connection but sent no hello within " +
                   std::to_string(options_.hello_timeout_ms) + "ms");
  }
  return outcome;
}

void ReplicaApplier::stream_once() {
  state_.store("connecting", std::memory_order_relaxed);
  {
    server::Socket sock =
        server::connect_to(leader_, options_.connect_timeout_ms);
    std::scoped_lock lock(sock_mutex_);
    if (stopping_.load()) return;
    sock_ = std::move(sock);
  }
  const int fd = sock_.fd();
  server::Frame frame;
  state_.store("awaiting-hello", std::memory_order_relaxed);
  if (read_hello(fd, frame) != server::ReadOutcome::kFrame ||
      frame.type != server::FrameType::kHello ||
      frame.payload.rfind(server::kMagic, 0) != 0) {
    throw NetError("replica: '" + leader_.describe() +
                   "' is not a herc server");
  }
  const std::string position =
      need_snapshot_
          ? encode_subscribe({})
          : encode_subscribe(
                StreamPosition{epoch_.load(std::memory_order_relaxed),
                               seq_.load(std::memory_order_relaxed)},
                has_tail_ ? std::optional<std::uint64_t>(tail_checksum_)
                          : std::nullopt);
  server::write_frame(fd, {server::FrameType::kSubscribe, position});

  state_.store("streaming", std::memory_order_relaxed);
  // Idle-bounded stream reads: a caught-up subscription is legitimately
  // quiet, so the first quiet period sends a keepalive ack (cheap, and it
  // refreshes the leader's lag view); a second consecutive quiet period
  // means even that provoked nothing — the socket may be silently dead
  // (black-holed route, wedged proxy), so re-dial.  `frame_ms` bounds a
  // peer that stalls mid-frame.
  const server::ReadDeadline deadline{options_.idle_probe_ms,
                                      options_.hello_timeout_ms};
  int quiet_periods = 0;
  while (true) {
    const server::ReadOutcome outcome =
        server::read_frame(fd, frame, deadline);
    if (outcome == server::ReadOutcome::kEof) break;
    if (outcome == server::ReadOutcome::kIdle) {
      if (stopping_.load()) return;
      if (++quiet_periods >= 2) {
        throw NetError("replica: stream from '" + leader_.describe() +
                       "' went silent past the liveness probe; re-dialing");
      }
      server::write_frame(
          fd, {server::FrameType::kAck,
               encode_ack({epoch_.load(std::memory_order_relaxed),
                           seq_.load(std::memory_order_relaxed)})});
      continue;
    }
    quiet_periods = 0;
    if (stopping_.load()) return;
    switch (frame.type) {
      case server::FrameType::kSnapshot: {
        const SnapshotShipment snapshot = decode_snapshot(frame.payload);
        try {
          gated([&] { install_snapshot(snapshot); });
        } catch (...) {
          need_snapshot_ = true;  // half-installed: never extend it
          throw;
        }
        break;
      }
      case server::FrameType::kJournal: {
        const JournalShipment shipment = decode_journal(frame.payload);
        ApplyOutcome outcome = ApplyOutcome::kGap;
        try {
          gated([&] { outcome = apply_frame(shipment); });
        } catch (...) {
          need_snapshot_ = true;  // the journal has a frame the db may not
          throw;
        }
        if (outcome == ApplyOutcome::kGap) {
          resyncs_.fetch_add(1, std::memory_order_relaxed);
          return;  // reconnect; the leader decides backlog vs snapshot
        }
        if (outcome == ApplyOutcome::kFenced) {
          set_error("replica: stream from '" + leader_.describe() +
                    "' carries stale epoch " + std::to_string(shipment.epoch) +
                    " (we are at " +
                    std::to_string(epoch_.load(std::memory_order_relaxed)) +
                    "); the leader is fenced");
          return;
        }
        break;
      }
      case server::FrameType::kCheckpoint: {
        const std::uint64_t new_epoch = decode_checkpoint(frame.payload);
        try {
          gated([&] { apply_checkpoint(new_epoch); });
        } catch (...) {
          need_snapshot_ = true;
          throw;
        }
        break;
      }
      case server::FrameType::kResult: {
        const server::ResultInfo info = server::decode_result(frame.payload);
        refused_.fetch_add(1, std::memory_order_relaxed);
        set_error(info.error);
        return;
      }
      default:
        break;  // kOutput etc.: ignorable on a subscription connection
    }
    server::write_frame(
        fd, {server::FrameType::kAck,
             encode_ack({epoch_.load(std::memory_order_relaxed),
                         seq_.load(std::memory_order_relaxed)})});
  }
}

// ---- promotion ---------------------------------------------------------------

PromoteReport promote_store(const std::string& dir,
                            storage::StoreOptions options) {
  if (!ReplicaApplier::is_replica_store(dir)) {
    throw HistoryError("promote: '" + dir +
                       "' is not a replica store (no replica.herc marker)");
  }
  const schema::TaskSchema schema =
      schema::parse_schema(read_file((fs::path(dir) / "schema.herc").string()));
  support::SystemClock clock;
  PromoteReport report;
  {
    // Leader-style recovery: the ex-leader's interrupted runs seal, their
    // partial products quarantine — exactly a crashed leader restarting.
    storage::DurableHistory store(schema, clock, dir, options);
    report.recovery = store.recovery();
    // The fence.  Checkpointing bumps the epoch above anything the old
    // leader ever journaled, so its frames can never apply here again.
    store.checkpoint();
    report.epoch = store.epoch();
  }
  std::error_code ec;
  fs::remove(fs::path(dir) / "replica.herc", ec);
  if (ec) {
    throw HistoryError("promote: cannot remove the replica marker: " +
                       ec.message());
  }
  return report;
}

}  // namespace herc::replica
