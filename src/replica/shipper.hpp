// Leader-side replication: tails the open store's journal and streams it
// to subscribed followers.
//
// `JournalShipper` sits at the junction of two interfaces:
//
//   - `storage::JournalTap`: the store calls `on_frame`/`on_checkpoint`
//     synchronously from the mutation path (under the server's exclusive
//     session lock), and the shipper fans each frame out to per-follower
//     bounded queues — the mutation never blocks on a slow follower.
//   - `server::ReplicationHub`: the server calls `subscribe` under the
//     exclusive lock (so the bootstrap is position-atomic with the live
//     stream) and then pumps `next_frame` to the follower's socket from
//     the connection's worker thread.
//
// Bootstrap decides between two shapes: a follower whose position lies
// inside the current epoch's journal gets the missing frames re-read from
// the journal file (cheap catch-up); anything else — no position, a
// stale epoch, an impossible seq — gets a full snapshot of the live
// database.  A follower claiming a position from a *future* epoch is
// refused outright: that is a fenced stale leader (or a follower of one)
// trying to re-attach, and serving it would split-brain the store.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "core/session.hpp"
#include "replica/replication.hpp"
#include "server/server.hpp"
#include "storage/store.hpp"

namespace herc::replica {

struct ShipperOptions {
  /// Frames a follower may have queued before it is dropped (it
  /// reconnects and resyncs).  Bounds leader memory against a stalled
  /// follower without ever blocking the mutation path.
  std::size_t max_queued_frames = 8192;
};

class JournalShipper final : public server::ReplicationHub,
                             public storage::JournalTap {
 public:
  /// Attaches to `session`'s open store as its journal tap.  The session
  /// (and its store) must outlive the shipper; a session without an open
  /// store is served too (subscriptions are refused until one is open at
  /// construction time).
  explicit JournalShipper(core::DesignSession& session,
                          ShipperOptions options = {});
  ~JournalShipper() override;

  JournalShipper(const JournalShipper&) = delete;
  JournalShipper& operator=(const JournalShipper&) = delete;

  // ---- server::ReplicationHub ------------------------------------------------

  [[nodiscard]] bool subscribe(std::uint64_t conn_id, const std::string& peer,
                               std::string_view position,
                               std::string* error) override;
  [[nodiscard]] bool next_frame(std::uint64_t conn_id,
                                server::Frame& frame) override;
  void ack(std::uint64_t conn_id, std::string_view payload) override;
  void unsubscribe(std::uint64_t conn_id) override;
  [[nodiscard]] std::string render_followers(bool json) const override;
  void close_all() override;

  // ---- storage::JournalTap (under the exclusive session lock) ----------------

  void on_frame(std::uint64_t epoch, std::uint64_t seq,
                std::string_view payload) override;
  void on_checkpoint(std::uint64_t new_epoch) override;

  [[nodiscard]] std::size_t follower_count() const;
  /// Followers dropped because their queue overflowed.
  [[nodiscard]] std::uint64_t overflows() const { return overflows_; }
  /// Subscriptions refused for claiming a future epoch (fenced leaders).
  [[nodiscard]] std::uint64_t fenced_subscribes() const { return fenced_; }
  /// Subscribes whose tail checksum disproved prefix equality (the
  /// follower held a frame this leader's journal never kept — a torn tail
  /// it streamed complete before the crash) and were answered with a
  /// snapshot resync instead of a backlog.
  [[nodiscard]] std::uint64_t divergent_subscribes() const {
    return divergent_;
  }

 private:
  struct Follower {
    std::string peer;
    std::deque<server::Frame> queue;
    StreamPosition acked;
    bool closed = false;
  };

  core::DesignSession& session_;
  ShipperOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool closing_ = false;
  std::map<std::uint64_t, Follower> followers_;

  /// Mirrors of the store's position, written under the exclusive session
  /// lock, read lock-free by `render_followers` (the `stats` path).
  std::atomic<std::uint64_t> leader_epoch_{0};
  std::atomic<std::uint64_t> leader_seq_{0};
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::uint64_t> fenced_{0};
  std::atomic<std::uint64_t> divergent_{0};
};

}  // namespace herc::replica
