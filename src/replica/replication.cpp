#include "replica/replication.hpp"

#include <vector>

#include "storage/journal.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::replica {

using support::NetError;

namespace {

/// Strict decimal u64 parse: the payloads come off the wire, so anything
/// non-numeric (including overflow) is a protocol error, not UB.
std::uint64_t parse_u64(std::string_view token, std::string_view what) {
  if (token.empty()) {
    throw NetError("replication: missing " + std::string(what));
  }
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      throw NetError("replication: malformed " + std::string(what) + " '" +
                     std::string(token) + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      throw NetError("replication: " + std::string(what) + " overflows");
    }
    value = value * 10 + digit;
  }
  return value;
}

/// Splits the header line off a "<header>\n<body>" payload.
std::pair<std::string_view, std::string_view> split_header(
    std::string_view payload, std::string_view what) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    throw NetError("replication: " + std::string(what) +
                   " payload has no header line");
  }
  return {payload.substr(0, nl), payload.substr(nl + 1)};
}

}  // namespace

std::string encode_subscribe(const std::optional<StreamPosition>& position,
                             std::optional<std::uint64_t> tail_checksum) {
  if (!position.has_value()) return {};
  std::string out =
      std::to_string(position->epoch) + " " + std::to_string(position->seq);
  if (tail_checksum.has_value()) {
    out += " " + std::to_string(*tail_checksum);
  }
  return out;
}

std::optional<StreamPosition> decode_subscribe(std::string_view payload) {
  return decode_subscribe_info(payload).position;
}

SubscribeInfo decode_subscribe_info(std::string_view payload) {
  SubscribeInfo info;
  if (support::trim(payload).empty()) return info;
  const std::vector<std::string> parts =
      support::split_ws(support::trim(payload));
  if (parts.size() != 2 && parts.size() != 3) {
    throw NetError("replication: malformed subscribe position '" +
                   std::string(payload) + "'");
  }
  StreamPosition pos;
  pos.epoch = parse_u64(parts[0], "subscribe epoch");
  pos.seq = parse_u64(parts[1], "subscribe seq");
  info.position = pos;
  if (parts.size() == 3) {
    info.tail_checksum = parse_u64(parts[2], "subscribe tail checksum");
  }
  return info;
}

std::string encode_journal(std::uint64_t epoch, std::uint64_t seq,
                           std::string_view lines) {
  std::string out = std::to_string(epoch) + " " + std::to_string(seq) + " " +
                    std::to_string(storage::frame_checksum(lines)) + "\n";
  out += lines;
  return out;
}

JournalShipment decode_journal(std::string_view payload) {
  const auto [header, body] = split_header(payload, "journal");
  const std::vector<std::string> parts =
      support::split_ws(support::trim(header));
  if (parts.size() != 3) {
    throw NetError("replication: malformed journal header '" +
                   std::string(header) + "'");
  }
  JournalShipment shipment;
  shipment.epoch = parse_u64(parts[0], "journal epoch");
  shipment.seq = parse_u64(parts[1], "journal seq");
  const std::uint64_t check = parse_u64(parts[2], "journal checksum");
  if (check != storage::frame_checksum(body)) {
    throw NetError("replication: journal frame " + parts[0] + ":" +
                   parts[1] + " failed its checksum (corrupted in flight)");
  }
  shipment.lines.assign(body);
  return shipment;
}

std::string encode_snapshot(const SnapshotShipment& snapshot) {
  std::string content = snapshot.schema_text;
  content += snapshot.image;
  std::string out = std::to_string(snapshot.epoch) + " " +
                    std::to_string(snapshot.seq) + " " +
                    std::to_string(snapshot.schema_text.size()) + " " +
                    std::to_string(storage::frame_checksum(content)) + "\n";
  out += content;
  return out;
}

SnapshotShipment decode_snapshot(std::string_view payload) {
  const auto [header, body] = split_header(payload, "snapshot");
  const std::vector<std::string> parts =
      support::split_ws(support::trim(header));
  if (parts.size() != 4) {
    throw NetError("replication: malformed snapshot header '" +
                   std::string(header) + "'");
  }
  SnapshotShipment snapshot;
  snapshot.epoch = parse_u64(parts[0], "snapshot epoch");
  snapshot.seq = parse_u64(parts[1], "snapshot seq");
  const std::uint64_t schema_bytes = parse_u64(parts[2], "snapshot schema size");
  const std::uint64_t check = parse_u64(parts[3], "snapshot checksum");
  if (schema_bytes > body.size()) {
    throw NetError("replication: snapshot header announces " +
                   std::to_string(schema_bytes) +
                   " schema bytes but the body holds " +
                   std::to_string(body.size()));
  }
  if (check != storage::frame_checksum(body)) {
    throw NetError(
        "replication: snapshot failed its checksum (corrupted in flight)");
  }
  snapshot.schema_text.assign(body.substr(0, schema_bytes));
  snapshot.image.assign(body.substr(schema_bytes));
  return snapshot;
}

std::string encode_checkpoint(std::uint64_t new_epoch) {
  return std::to_string(new_epoch);
}

std::uint64_t decode_checkpoint(std::string_view payload) {
  return parse_u64(support::trim(payload), "checkpoint epoch");
}

std::string encode_ack(const StreamPosition& position) {
  return std::to_string(position.epoch) + " " + std::to_string(position.seq);
}

StreamPosition decode_ack(std::string_view payload) {
  const std::vector<std::string> parts =
      support::split_ws(support::trim(payload));
  if (parts.size() != 2) {
    throw NetError("replication: malformed ack '" + std::string(payload) +
                   "'");
  }
  StreamPosition pos;
  pos.epoch = parse_u64(parts[0], "ack epoch");
  pos.seq = parse_u64(parts[1], "ack seq");
  return pos;
}

}  // namespace herc::replica
