#include "replica/shipper.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "schema/schema_io.hpp"
#include "storage/journal.hpp"
#include "support/error.hpp"

namespace herc::replica {

namespace fs = std::filesystem;
using server::Frame;
using server::FrameType;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw support::HistoryError("shipper: cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

JournalShipper::JournalShipper(core::DesignSession& session,
                               ShipperOptions options)
    : session_(session), options_(options) {
  if (options_.max_queued_frames == 0) options_.max_queued_frames = 1;
  storage::DurableHistory* store = session_.storage();
  if (store != nullptr) {
    leader_epoch_.store(store->epoch(), std::memory_order_relaxed);
    leader_seq_.store(store->journal_seq(), std::memory_order_relaxed);
    store->attach_tap(this);
  }
}

JournalShipper::~JournalShipper() {
  storage::DurableHistory* store = session_.storage();
  if (store != nullptr) store->attach_tap(nullptr);
}

bool JournalShipper::subscribe(std::uint64_t conn_id, const std::string& peer,
                               std::string_view position,
                               std::string* error) {
  storage::DurableHistory* store = session_.storage();
  if (store == nullptr) {
    *error = "replication: the leader has no open store";
    return false;
  }
  SubscribeInfo info;
  try {
    info = decode_subscribe_info(position);
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
  const std::optional<StreamPosition>& pos = info.position;
  const std::uint64_t cur_epoch = store->epoch();
  const std::uint64_t cur_seq = store->journal_seq();

  if (pos.has_value() && pos->epoch > cur_epoch) {
    // The follower has seen an epoch this leader never reached: the
    // cluster moved on (a follower was promoted and bumped the epoch).
    // This leader is fenced — refusing here is what makes the demoted
    // ex-leader's world provably un-serveable.
    fenced_.fetch_add(1, std::memory_order_relaxed);
    *error = "fenced: follower position is at epoch " +
             std::to_string(pos->epoch) + " but this leader is at epoch " +
             std::to_string(cur_epoch) +
             "; this leader is stale and must not be followed";
    return false;
  }

  // Catch-up from the journal file when the follower's position lies
  // inside the current epoch; a full snapshot otherwise.
  std::vector<Frame> bootstrap;
  bool backlog_ok = false;
  if (pos.has_value() && pos->epoch == cur_epoch && pos->seq <= cur_seq) {
    try {
      store->sync();  // the tail frames must be readable from the file
      const storage::ScanResult scan = storage::scan_journal(
          read_file((fs::path(store->dir()) / "journal.wal").string()));
      if (scan.header_valid && scan.epoch == cur_epoch &&
          scan.records.size() >= cur_seq) {
        // Seq equality alone cannot prove the follower's history is a
        // prefix of ours: after a crash tore our journal tail, a follower
        // that streamed the torn frame complete sits at the same seq on a
        // different history — a backlog would silently diverge it forever.
        // The follower's tail checksum (of its last applied frame) must
        // match our record at seq-1; a mismatch earns a snapshot resync.
        bool tail_matches = true;
        if (info.tail_checksum.has_value() && pos->seq > 0) {
          tail_matches =
              pos->seq <= scan.records.size() &&
              storage::frame_checksum(scan.records[pos->seq - 1]) ==
                  *info.tail_checksum;
          if (!tail_matches) {
            divergent_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (tail_matches) {
          for (std::uint64_t seq = pos->seq; seq < cur_seq; ++seq) {
            bootstrap.push_back(
                {FrameType::kJournal,
                 encode_journal(cur_epoch, seq, scan.records[seq])});
          }
          backlog_ok = true;
        }
      }
    } catch (const std::exception&) {
      backlog_ok = false;  // fall through to a snapshot
    }
  }
  if (!backlog_ok) {
    SnapshotShipment snapshot;
    snapshot.epoch = cur_epoch;
    snapshot.seq = cur_seq;
    snapshot.schema_text = schema::write_schema(session_.schema());
    snapshot.image = session_.db().save();
    bootstrap.push_back({FrameType::kSnapshot, encode_snapshot(snapshot)});
  }

  leader_epoch_.store(cur_epoch, std::memory_order_relaxed);
  leader_seq_.store(cur_seq, std::memory_order_relaxed);
  {
    std::scoped_lock lock(mutex_);
    if (closing_) {
      *error = "replication: the server is shutting down";
      return false;
    }
    Follower& follower = followers_[conn_id];
    follower.peer = peer;
    follower.queue.clear();
    follower.closed = false;
    follower.acked = pos.value_or(StreamPosition{cur_epoch, 0});
    for (Frame& frame : bootstrap) {
      follower.queue.push_back(std::move(frame));
    }
  }
  cv_.notify_all();
  return true;
}

bool JournalShipper::next_frame(std::uint64_t conn_id, Frame& frame) {
  std::unique_lock lock(mutex_);
  while (true) {
    auto it = followers_.find(conn_id);
    if (it == followers_.end()) return false;
    Follower& follower = it->second;
    if (!follower.queue.empty()) {
      frame = std::move(follower.queue.front());
      follower.queue.pop_front();
      return true;
    }
    if (follower.closed || closing_) return false;
    cv_.wait(lock);
  }
}

void JournalShipper::ack(std::uint64_t conn_id, std::string_view payload) {
  StreamPosition pos;
  try {
    pos = decode_ack(payload);
  } catch (const std::exception&) {
    return;  // a malformed progress report is ignorable, not fatal
  }
  std::scoped_lock lock(mutex_);
  auto it = followers_.find(conn_id);
  if (it != followers_.end()) it->second.acked = pos;
}

void JournalShipper::unsubscribe(std::uint64_t conn_id) {
  {
    std::scoped_lock lock(mutex_);
    followers_.erase(conn_id);
  }
  cv_.notify_all();
}

void JournalShipper::on_frame(std::uint64_t epoch, std::uint64_t seq,
                              std::string_view payload) {
  leader_epoch_.store(epoch, std::memory_order_relaxed);
  leader_seq_.store(seq + 1, std::memory_order_relaxed);
  std::scoped_lock lock(mutex_);
  if (followers_.empty()) return;
  const Frame frame{FrameType::kJournal, encode_journal(epoch, seq, payload)};
  for (auto& [id, follower] : followers_) {
    if (follower.closed) continue;
    if (follower.queue.size() >= options_.max_queued_frames) {
      // Never block the mutation path on a stalled follower: end its
      // stream; it reconnects and resyncs from its acked position.
      follower.closed = true;
      overflows_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    follower.queue.push_back(frame);
  }
  cv_.notify_all();
}

void JournalShipper::on_checkpoint(std::uint64_t new_epoch) {
  leader_epoch_.store(new_epoch, std::memory_order_relaxed);
  leader_seq_.store(0, std::memory_order_relaxed);
  std::scoped_lock lock(mutex_);
  if (followers_.empty()) return;
  const Frame frame{FrameType::kCheckpoint, encode_checkpoint(new_epoch)};
  for (auto& [id, follower] : followers_) {
    if (follower.closed) continue;
    if (follower.queue.size() >= options_.max_queued_frames) {
      follower.closed = true;
      overflows_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    follower.queue.push_back(frame);
  }
  cv_.notify_all();
}

std::string JournalShipper::render_followers(bool json) const {
  const std::uint64_t epoch = leader_epoch_.load(std::memory_order_relaxed);
  const std::uint64_t seq = leader_seq_.load(std::memory_order_relaxed);
  std::scoped_lock lock(mutex_);
  std::ostringstream out;
  if (json) {
    out << "[";
    bool first = true;
    for (const auto& [id, follower] : followers_) {
      if (!first) out << ",";
      first = false;
      const bool same_epoch = follower.acked.epoch == epoch;
      out << "{\"id\":" << id << ",\"peer\":\"" << json_escape(follower.peer)
          << "\",\"acked_epoch\":" << follower.acked.epoch
          << ",\"acked_seq\":" << follower.acked.seq << ",\"lag_frames\":";
      if (same_epoch && seq >= follower.acked.seq) {
        out << (seq - follower.acked.seq);
      } else {
        out << -1;  // catching up across a checkpoint; frames incomparable
      }
      out << "}";
    }
    out << "]";
    return out.str();
  }
  out << "followers: " << followers_.size() << " (leader at " << epoch << ":"
      << seq << ")\n";
  for (const auto& [id, follower] : followers_) {
    out << "  follower #" << id << " (" << follower.peer << "): acked "
        << follower.acked.epoch << ":" << follower.acked.seq;
    if (follower.acked.epoch == epoch && seq >= follower.acked.seq) {
      out << ", lag " << (seq - follower.acked.seq) << " frame(s)";
    } else {
      out << ", resyncing across a checkpoint";
    }
    out << "\n";
  }
  return out.str();
}

void JournalShipper::close_all() {
  {
    std::scoped_lock lock(mutex_);
    closing_ = true;
    for (auto& [id, follower] : followers_) follower.closed = true;
  }
  cv_.notify_all();
}

std::size_t JournalShipper::follower_count() const {
  std::scoped_lock lock(mutex_);
  return followers_.size();
}

}  // namespace herc::replica
