// Canonical example circuits used by tests, benchmarks and examples.
//
// All are static CMOS built from the gate subcircuits below; the full adder
// is the Fig. 9 browser's "CMOS Full adder" made real.
#pragma once

#include <cstddef>

#include "circuit/netlist.hpp"

namespace herc::circuit {

/// CMOS inverter: in -> out (2 transistors).
[[nodiscard]] Netlist inverter_netlist();

/// 2-input NAND: a, b -> y (4 transistors).
[[nodiscard]] Netlist nand2_netlist();

/// 2-input NOR: a, b -> y (4 transistors).
[[nodiscard]] Netlist nor2_netlist();

/// XOR built from four NAND gates: a, b -> y (16 transistors).
[[nodiscard]] Netlist xor2_netlist();

/// Full adder from two XORs and NAND majority logic:
/// a, b, cin -> sum, cout.
[[nodiscard]] Netlist full_adder_netlist();

/// A chain of `stages` inverters: in -> out.  Handy for size sweeps.
[[nodiscard]] Netlist inverter_chain(std::size_t stages);

/// A level-sensitive latch (pass transistor + forward inverter + weak
/// feedback inverter): d, en -> q.  State is held by the ratioed feedback
/// loop.
[[nodiscard]] Netlist latch_netlist();

/// A *dynamic* latch (pass transistor + inverter, no feedback): d, en -> q.
/// The storage node floats when en=0, exercising charge retention and the
/// compiled simulator's state-retaining ('K') table rows.
[[nodiscard]] Netlist dynamic_latch_netlist();

/// 2:1 pass-transistor multiplexer with output buffer:
/// a, b, sel -> y  (y = sel ? b : a).
[[nodiscard]] Netlist mux2_netlist();

/// Cross-coupled-NAND set/reset latch: sn, rn -> q, qn (active-low
/// inputs).
[[nodiscard]] Netlist sr_latch_netlist();

/// Positive-edge master/slave D flip-flop from two transparent latches:
/// d, clk -> q.  The master samples while clk=0; q takes the sampled
/// value at the rising edge and holds it while clk=1.
[[nodiscard]] Netlist dff_netlist();

/// `bits`-wide ripple-carry adder from full adders:
/// a0..a{n-1}, b0..b{n-1}, cin -> s0..s{n-1}, cout.
[[nodiscard]] Netlist ripple_adder_netlist(std::size_t bits);

}  // namespace herc::circuit
