// Device-model library: the `DeviceModels` entity of Fig. 1.
//
// Models give MOS devices electrical strength for delay estimation.  The
// library is itself design data (edited by the ModelEditor tool, grouped
// with a netlist into the `Circuit` composite), so it round-trips through
// text:
//
//   models default
//   model nch type=nmos resistance=10 threshold=0.6
//   model pch type=pmos resistance=20 threshold=0.6
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace herc::circuit {

/// Electrical parameters of one MOS model.
struct DeviceModel {
  std::string name;
  bool is_pmos = false;
  /// On-resistance (kilo-ohms) of a unit-width device; delay scales with it.
  double resistance_kohm = 10.0;
  /// Threshold voltage (volts) — recorded meta-data, also used by the
  /// compose consistency check.
  double threshold_v = 0.6;
};

class DeviceModelLibrary {
 public:
  DeviceModelLibrary() = default;
  explicit DeviceModelLibrary(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Adds or replaces a model.
  void set_model(DeviceModel model);
  /// Removes a model; throws `ExecError` when absent.
  void remove_model(std::string_view name);
  [[nodiscard]] bool has_model(std::string_view name) const;
  /// Throws `ExecError` when absent.
  [[nodiscard]] const DeviceModel& model(std::string_view name) const;
  [[nodiscard]] const std::vector<DeviceModel>& models() const {
    return models_;
  }

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static DeviceModelLibrary from_text(std::string_view text);

  /// The library shipped with the framework: unit nch/pch models.
  [[nodiscard]] static DeviceModelLibrary standard();

 private:
  std::string name_ = "models";
  std::vector<DeviceModel> models_;
};

}  // namespace herc::circuit
