// Automatic placement: the `Placer` tool entity of Fig. 1.
//
// Produces a `PlacedLayout` from a netlist: devices go onto a near-square
// grid, I/O pins onto the left/right edges, and a deterministic simulated-
// annealing pass swaps cells to reduce total half-perimeter wirelength.
#pragma once

#include <cstdint>

#include "circuit/layout.hpp"
#include "circuit/netlist.hpp"

namespace herc::circuit {

struct PlaceOptions {
  /// Annealing moves; 0 disables refinement (row-major initial placement
  /// only).
  std::size_t moves = 2000;
  /// Seed for the deterministic move sequence.
  std::uint64_t seed = 1;
  /// Initial acceptance temperature (in HPWL units).
  double start_temperature = 4.0;
};

/// Places every device of `netlist`.  The result passes `Layout::drc()`.
[[nodiscard]] Layout place(const Netlist& netlist,
                           const PlaceOptions& options = {});

}  // namespace herc::circuit
