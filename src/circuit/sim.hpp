// Switch-level simulator: the `Simulator` tool entity of Fig. 1.
//
// An event-driven MOS-network simulator in the COSMOS tradition: at every
// input event it relaxes the conduction network (rails and inputs drive;
// values flow through ON transistors and resistors; undriven nets retain
// charge; conflicts resolve to X) and annotates output transitions with an
// RC delay estimated from device-model on-resistance and net capacitance —
// which is why extracted netlists (with parasitics) simulate slower than
// schematic ones, giving the framework's consistency checks something real
// to talk about.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/models.hpp"
#include "circuit/netlist.hpp"
#include "circuit/stimuli.hpp"

namespace herc::circuit {

/// Tool arguments — the `SimOptions` entity of Fig. 1.
struct SimOptions {
  /// Relaxation-iteration cap per event (0 = automatic: 4 * net count).
  std::size_t max_relax_iters = 0;
  /// Also record waveforms for internal nets, not just outputs.
  bool record_internal = false;
  /// Gate capacitance (pF) added per MOS terminal when estimating delay.
  double gate_load_pf = 0.01;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static SimOptions from_text(std::string_view text);
};

/// Counters for the `Statistics` entity (multi-output simulation task).
struct SimStatistics {
  std::uint64_t input_events = 0;
  std::uint64_t relax_iterations = 0;
  std::uint64_t net_updates = 0;
  std::uint64_t output_toggles = 0;
  /// Nets left at X after the final event (0 for a healthy circuit).
  std::uint64_t x_nets = 0;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static SimStatistics from_text(std::string_view text);
};

/// The `Performance` entity: observed waveforms plus summary metrics.
struct SimResult {
  std::vector<Waveform> waves;
  /// Largest input-event-to-output-transition delay observed (ps).
  std::int64_t max_delay_ps = 0;
  SimStatistics stats;

  [[nodiscard]] const Waveform& wave(std::string_view net) const;
  [[nodiscard]] bool has_wave(std::string_view net) const;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static SimResult from_text(std::string_view text);
};

/// Runs the switch-level simulation.  Throws `ExecError` on an invalid
/// netlist or missing device models.
[[nodiscard]] SimResult simulate(const Netlist& netlist,
                                 const DeviceModelLibrary& models,
                                 const Stimuli& stimuli,
                                 const SimOptions& options = {});

}  // namespace herc::circuit
