// MOS-network netlists: the transistor-level view of a design (Fig. 7).
//
// The substrate the framework's tools operate on is a small but real
// switch-level circuit representation: named nets (with the implicit VDD
// and GND rails), MOS transistors, and lumped resistors/capacitors.  All
// design data in the blob store is text, so the netlist round-trips through
// a line-oriented format:
//
//   netlist inverter
//   input in
//   output out
//   nmos m1 g=in d=out s=GND model=nch
//   pmos m2 g=in d=out s=VDD model=pch
//   cap c1 a=out b=GND value=0.02
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace herc::circuit {

/// The implicit supply rails present in every netlist.
inline constexpr std::string_view kVdd = "VDD";
inline constexpr std::string_view kGnd = "GND";

enum class DeviceType {
  kNmos,
  kPmos,
  kResistor,
  kCapacitor,
};

[[nodiscard]] const char* to_string(DeviceType t);
[[nodiscard]] std::optional<DeviceType> device_type_from(std::string_view s);

/// One circuit element.  MOS devices use terminals {gate, drain, source};
/// two-terminal devices use {a, b}.
struct Device {
  std::string name;
  DeviceType type = DeviceType::kNmos;
  /// For MOS: gate, drain, source nets.  For R/C: a, b nets.
  std::vector<std::string> terminals;
  /// Device-model name (MOS only); resolved against a DeviceModelLibrary.
  std::string model;
  /// Element value: width multiplier for MOS, ohms for R, pF for C.
  double value = 1.0;

  [[nodiscard]] bool is_mos() const {
    return type == DeviceType::kNmos || type == DeviceType::kPmos;
  }
};

/// A flat MOS netlist.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Declares a net; rails need not (but may) be declared.  Re-declaring
  /// is a no-op.
  void add_net(std::string_view net);
  void add_input(std::string_view net);
  void add_output(std::string_view net);

  void add_nmos(std::string_view name, std::string_view gate,
                std::string_view drain, std::string_view source,
                std::string_view model = "nch", double width = 1.0);
  void add_pmos(std::string_view name, std::string_view gate,
                std::string_view drain, std::string_view source,
                std::string_view model = "pch", double width = 1.0);
  void add_resistor(std::string_view name, std::string_view a,
                    std::string_view b, double ohms);
  void add_capacitor(std::string_view name, std::string_view a,
                     std::string_view b, double pf);

  /// Removes a device by name; throws `ParseError`-free `HercError` family
  /// (`ExecError`) when absent.
  void remove_device(std::string_view name);
  [[nodiscard]] bool has_device(std::string_view name) const;
  [[nodiscard]] const Device& device(std::string_view name) const;
  Device& device_mut(std::string_view name);

  [[nodiscard]] const std::vector<Device>& devices() const {
    return devices_;
  }
  [[nodiscard]] const std::vector<std::string>& nets() const { return nets_; }
  [[nodiscard]] const std::vector<std::string>& inputs() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<std::string>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] bool has_net(std::string_view net) const;

  [[nodiscard]] std::size_t device_count(DeviceType t) const;
  [[nodiscard]] std::size_t mos_count() const;

  /// Total capacitance (pF) hanging on `net` from capacitor devices.
  [[nodiscard]] double net_capacitance(std::string_view net) const;

  /// Structural sanity: every terminal references a declared net (or a
  /// rail), names are unique, MOS devices carry a model.  Throws
  /// `ExecError` with a description on the first problem.
  void validate() const;

  /// Merges `other` into this netlist with every name (nets, devices)
  /// prefixed by `prefix`, except connections listed in `port_map`, which
  /// are rewired to existing nets.  Rails are never prefixed.  Used to
  /// build large circuits from gate subcircuits.
  void instantiate(const Netlist& other, std::string_view prefix,
                   const std::unordered_map<std::string, std::string>&
                       port_map);

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static Netlist from_text(std::string_view text);

 private:
  void add_device(Device device);

  std::string name_ = "netlist";
  std::vector<std::string> nets_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<Device> devices_;
  std::unordered_map<std::string, std::size_t> device_index_;
};

}  // namespace herc::circuit
