// Statistical circuit optimizers (paper §3.3).
//
// The paper mentions three statistical circuit-optimization tools that
// "take exactly the same input arguments and produce the same type of
// output", encapsulated once.  These are they: three search strategies over
// MOS device widths minimizing the simulated worst-case delay, behind one
// entry point — which is exactly what lets one encapsulation serve all
// three tools.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "circuit/models.hpp"
#include "circuit/netlist.hpp"
#include "circuit/stimuli.hpp"

namespace herc::circuit {

enum class OptAlgorithm {
  kGradient,      ///< coordinate descent on device widths
  kAnnealing,     ///< simulated annealing over random width perturbations
  kRandomSearch,  ///< pure random restarts, keep the best
};

[[nodiscard]] const char* to_string(OptAlgorithm a);
[[nodiscard]] std::optional<OptAlgorithm> opt_algorithm_from(
    std::string_view s);

struct OptimizeOptions {
  OptAlgorithm algorithm = OptAlgorithm::kGradient;
  std::size_t iterations = 30;
  std::uint64_t seed = 1;
  double min_width = 0.5;
  double max_width = 8.0;
};

struct OptimizeResult {
  Netlist netlist;                    ///< the `OptimizedNetlist` payload
  std::int64_t initial_delay_ps = 0;
  std::int64_t final_delay_ps = 0;
  std::size_t evaluations = 0;        ///< simulator invocations spent

  [[nodiscard]] std::string summary() const;
};

/// Optimizes MOS widths of `netlist` against the delay measured by
/// simulating with `models` and `stimuli`.  Deterministic for a fixed seed.
[[nodiscard]] OptimizeResult optimize(const Netlist& netlist,
                                      const DeviceModelLibrary& models,
                                      const Stimuli& stimuli,
                                      const OptimizeOptions& options = {});

}  // namespace herc::circuit
