#include "circuit/compare.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::circuit {

std::string CompareReport::to_text() const {
  std::string out = "comparison ";
  out += match ? "MATCH" : "DIFFER";
  out += "\n";
  for (const std::string& d : differences) out += "diff " + d + "\n";
  return out;
}

CompareReport CompareReport::from_text(std::string_view text) {
  CompareReport report;
  for (const std::string& raw : support::split(text, '\n')) {
    const std::string_view body = support::trim(raw);
    if (body.empty() || body[0] == '#') continue;
    if (body.rfind("comparison", 0) == 0) {
      report.match = body.find("MATCH") != std::string_view::npos;
    } else if (body.rfind("diff ", 0) == 0) {
      report.differences.emplace_back(body.substr(5));
    } else {
      throw support::ParseError("comparison: unknown line '" +
                                std::string(body) + "'");
    }
  }
  return report;
}

namespace {

/// Sample points: every transition time of either waveform, plus a sample
/// just after each (so both the edge position and the settled value are
/// covered).
std::vector<std::int64_t> sample_times(const Waveform& a, const Waveform& b) {
  std::vector<std::int64_t> times;
  for (const Waveform* w : {&a, &b}) {
    for (const WavePoint& p : w->points) {
      times.push_back(p.time_ps);
      times.push_back(p.time_ps + 1);
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

}  // namespace

CompareReport compare_performance(const SimResult& golden,
                                  const SimResult& candidate,
                                  const CompareOptions& options) {
  CompareReport report;
  for (const Waveform& gw : golden.waves) {
    if (!candidate.has_wave(gw.net)) {
      report.differences.push_back("net '" + gw.net +
                                   "' missing from candidate");
      continue;
    }
    const Waveform& cw = candidate.wave(gw.net);
    // Value agreement, with edges allowed to shift within the tolerance:
    // a disagreement at time t is forgiven when the other waveform holds
    // the same value somewhere within +-tolerance.
    std::size_t reported = 0;
    for (const std::int64_t t : sample_times(gw, cw)) {
      const Level g = gw.at(t);
      const Level c = cw.at(t);
      if (g == c) continue;
      const std::int64_t tol = options.time_tolerance_ps;
      const bool forgiven =
          tol > 0 && (cw.at(t - tol) == g || cw.at(t + tol) == g) &&
          (gw.at(t - tol) == c || gw.at(t + tol) == c);
      if (forgiven) continue;
      if (reported++ < 4) {  // cap the noise per net
        std::string diff = "net '" + gw.net + "' at " + std::to_string(t) +
                           " ps: golden=";
        diff += to_char(g);
        diff += " candidate=";
        diff += to_char(c);
        report.differences.push_back(std::move(diff));
      }
    }
    if (reported > 4) {
      report.differences.push_back(
          "net '" + gw.net + "': " + std::to_string(reported - 4) +
          " further mismatches suppressed");
    }
  }
  for (const Waveform& cw : candidate.waves) {
    if (!golden.has_wave(cw.net)) {
      report.differences.push_back("net '" + cw.net +
                                   "' missing from golden");
    }
  }
  report.match = report.differences.empty();
  return report;
}

}  // namespace herc::circuit
