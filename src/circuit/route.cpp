#include "circuit/route.hpp"

#include <algorithm>
#include <cstdio>

#include "support/error.hpp"

namespace herc::circuit {

std::string RouteStatistics::to_text() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "routestats\nnets_routed=%zu\nsegments=%zu\n"
                "total_wirelength=%.9g\nconflicts=%zu\n",
                nets_routed, segments, total_wirelength, conflicts);
  return buf;
}

namespace {

/// Same-layer overlap test (mirrors Layout::drc's wire rule).
bool overlaps(const WireSegment& a, const WireSegment& b) {
  if (a.net == b.net) return false;
  if (a.horizontal() != b.horizontal()) return false;
  if (a.horizontal()) {
    return a.y1 == b.y1 &&
           std::max(std::min(a.x1, a.x2), std::min(b.x1, b.x2)) <
               std::min(std::max(a.x1, a.x2), std::max(b.x1, b.x2));
  }
  return a.x1 == b.x1 &&
         std::max(std::min(a.y1, a.y2), std::min(b.y1, b.y2)) <
             std::min(std::max(a.y1, a.y2), std::max(b.y1, b.y2));
}

/// The two L-shaped candidates joining p0 to p1.
std::vector<WireSegment> l_route(const std::string& net, int x0, int y0,
                                 int x1, int y1, bool horizontal_first) {
  std::vector<WireSegment> segs;
  if (horizontal_first) {
    if (x0 != x1) segs.push_back(WireSegment{net, x0, y0, x1, y0});
    if (y0 != y1) segs.push_back(WireSegment{net, x1, y0, x1, y1});
  } else {
    if (y0 != y1) segs.push_back(WireSegment{net, x0, y0, x0, y1});
    if (x0 != x1) segs.push_back(WireSegment{net, x0, y1, x1, y1});
  }
  return segs;
}

std::size_t conflict_count(const std::vector<WireSegment>& candidate,
                           const std::vector<WireSegment>& existing) {
  std::size_t count = 0;
  for (const WireSegment& c : candidate) {
    for (const WireSegment& e : existing) {
      count += overlaps(c, e) ? 1 : 0;
    }
  }
  return count;
}

}  // namespace

Layout route(const Layout& layout, const RouteOptions& options,
             RouteStatistics* stats) {
  if (!layout.wires().empty()) {
    throw support::ExecError("route: layout '" + layout.name() +
                             "' already contains wires");
  }
  Layout routed = layout;
  RouteStatistics local;
  for (const std::string& net : layout.nets()) {
    if (!options.route_rails && (net == kVdd || net == kGnd)) continue;
    auto terminals = routed.terminals_of(net);
    if (terminals.size() < 2) continue;
    // Deterministic chain: sort by (x, y), join consecutive terminals
    // with an L (horizontal first, then vertical).
    std::sort(terminals.begin(), terminals.end());
    for (std::size_t i = 1; i < terminals.size(); ++i) {
      const auto [x0, y0] = terminals[i - 1];
      const auto [x1, y1] = terminals[i];
      // Try both L orientations and keep the one with fewer same-layer
      // conflicts against wires already committed.
      const auto h_first = l_route(net, x0, y0, x1, y1, true);
      const auto v_first = l_route(net, x0, y0, x1, y1, false);
      const std::size_t h_conflicts =
          conflict_count(h_first, routed.wires());
      const std::size_t v_conflicts =
          conflict_count(v_first, routed.wires());
      const auto& chosen = h_conflicts <= v_conflicts ? h_first : v_first;
      local.conflicts += std::min(h_conflicts, v_conflicts);
      for (const WireSegment& w : chosen) {
        routed.add_wire(w.net, w.x1, w.y1, w.x2, w.y2);
        ++local.segments;
      }
    }
    ++local.nets_routed;
    local.total_wirelength += routed.routed_length(net);
  }
  if (stats != nullptr) *stats = local;
  return routed;
}

}  // namespace herc::circuit
