#include "circuit/layout.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <unordered_map>

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::circuit {

using support::ExecError;
using support::ParseError;

Layout::Layout(std::string name, std::string source_netlist, int rows,
               int cols)
    : name_(std::move(name)),
      source_(std::move(source_netlist)),
      rows_(rows),
      cols_(cols) {}

void Layout::resize(int rows, int cols) {
  rows_ = rows;
  cols_ = cols;
}

void Layout::place(const Device& device, int x, int y) {
  if (has_placement(device.name)) {
    throw ExecError("layout '" + name_ + "': device '" + device.name +
                    "' is already placed");
  }
  placed_.push_back(PlacedDevice{device, x, y});
}

void Layout::move(std::string_view device, int x, int y) {
  for (PlacedDevice& p : placed_) {
    if (p.device.name == device) {
      p.x = x;
      p.y = y;
      return;
    }
  }
  throw ExecError("layout '" + name_ + "': no placed device '" +
                  std::string(device) + "'");
}

void Layout::unplace(std::string_view device) {
  const auto it =
      std::find_if(placed_.begin(), placed_.end(),
                   [&](const PlacedDevice& p) {
                     return p.device.name == device;
                   });
  if (it == placed_.end()) {
    throw ExecError("layout '" + name_ + "': no placed device '" +
                    std::string(device) + "'");
  }
  placed_.erase(it);
}

bool Layout::has_placement(std::string_view device) const {
  return std::any_of(placed_.begin(), placed_.end(),
                     [&](const PlacedDevice& p) {
                       return p.device.name == device;
                     });
}

const PlacedDevice& Layout::placement(std::string_view device) const {
  for (const PlacedDevice& p : placed_) {
    if (p.device.name == device) return p;
  }
  throw ExecError("layout '" + name_ + "': no placed device '" +
                  std::string(device) + "'");
}

void Layout::add_pin(std::string_view net, int x, int y, bool is_output) {
  pins_.push_back(Pin{std::string(net), x, y, is_output});
}

int WireSegment::length() const {
  return std::abs(x2 - x1) + std::abs(y2 - y1);
}

bool WireSegment::covers(int x, int y) const {
  const int lo_x = std::min(x1, x2);
  const int hi_x = std::max(x1, x2);
  const int lo_y = std::min(y1, y2);
  const int hi_y = std::max(y1, y2);
  return x >= lo_x && x <= hi_x && y >= lo_y && y <= hi_y;
}

void Layout::add_wire(std::string_view net, int x1, int y1, int x2, int y2) {
  if (x1 != x2 && y1 != y2) {
    throw ExecError("layout '" + name_ + "': wire for net '" +
                    std::string(net) + "' is not axis-aligned");
  }
  wires_.push_back(WireSegment{std::string(net), x1, y1, x2, y2});
}

bool Layout::has_wires(std::string_view net) const {
  return std::any_of(wires_.begin(), wires_.end(),
                     [&](const WireSegment& w) { return w.net == net; });
}

double Layout::routed_length(std::string_view net) const {
  double total = 0.0;
  for (const WireSegment& w : wires_) {
    if (w.net == net) total += w.length();
  }
  return total;
}

std::vector<std::pair<int, int>> Layout::terminals_of(
    std::string_view net) const {
  std::vector<std::pair<int, int>> out;
  const auto add = [&](int x, int y) {
    if (std::find(out.begin(), out.end(), std::make_pair(x, y)) ==
        out.end()) {
      out.emplace_back(x, y);
    }
  };
  for (const PlacedDevice& p : placed_) {
    for (const std::string& t : p.device.terminals) {
      if (t == net) add(p.x, p.y);
    }
  }
  for (const Pin& pin : pins_) {
    if (pin.net == net) add(pin.x, pin.y);
  }
  return out;
}

bool Layout::net_connected(std::string_view net) const {
  const auto terminals = terminals_of(net);
  if (terminals.size() < 2) return true;

  // Union-find over terminals and the net's wire segments.
  std::vector<WireSegment> segs;
  for (const WireSegment& w : wires_) {
    if (w.net == net) segs.push_back(w);
  }
  const std::size_t n = terminals.size() + segs.size();
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  const std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const auto unite = [&](std::size_t a, std::size_t b) {
    parent[find(a)] = find(b);
  };

  // Terminal touches a segment when its point lies on it.
  for (std::size_t t = 0; t < terminals.size(); ++t) {
    for (std::size_t s = 0; s < segs.size(); ++s) {
      if (segs[s].covers(terminals[t].first, terminals[t].second)) {
        unite(t, terminals.size() + s);
      }
    }
  }
  // Two segments connect when either endpoint of one lies on the other
  // (sufficient for rectilinear trees built from endpoints).
  for (std::size_t a = 0; a < segs.size(); ++a) {
    for (std::size_t b = a + 1; b < segs.size(); ++b) {
      const bool touch = segs[a].covers(segs[b].x1, segs[b].y1) ||
                         segs[a].covers(segs[b].x2, segs[b].y2) ||
                         segs[b].covers(segs[a].x1, segs[a].y1) ||
                         segs[b].covers(segs[a].x2, segs[a].y2);
      if (touch) unite(terminals.size() + a, terminals.size() + b);
    }
  }
  const std::size_t root = find(0);
  for (std::size_t t = 1; t < terminals.size(); ++t) {
    if (find(t) != root) return false;
  }
  return true;
}

double Layout::net_hpwl(std::string_view net) const {
  int min_x = 0;
  int max_x = 0;
  int min_y = 0;
  int max_y = 0;
  bool any = false;
  const auto touch = [&](int x, int y) {
    if (!any) {
      min_x = max_x = x;
      min_y = max_y = y;
      any = true;
    } else {
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
  };
  for (const PlacedDevice& p : placed_) {
    for (const std::string& t : p.device.terminals) {
      if (t == net) touch(p.x, p.y);
    }
  }
  for (const Pin& pin : pins_) {
    if (pin.net == net) touch(pin.x, pin.y);
  }
  if (!any) return 0.0;
  return static_cast<double>((max_x - min_x) + (max_y - min_y));
}

std::vector<std::string> Layout::nets() const {
  std::vector<std::string> out;
  const auto add = [&](const std::string& net) {
    if (net == kVdd || net == kGnd) return;
    if (std::find(out.begin(), out.end(), net) == out.end()) {
      out.push_back(net);
    }
  };
  for (const PlacedDevice& p : placed_) {
    for (const std::string& t : p.device.terminals) add(t);
  }
  for (const Pin& pin : pins_) add(pin.net);
  return out;
}

double Layout::total_hpwl() const {
  double total = 0.0;
  for (const std::string& net : nets()) total += net_hpwl(net);
  return total;
}

std::vector<std::string> Layout::drc() const {
  std::vector<std::string> violations;
  std::map<std::pair<int, int>, std::string> occupied;
  for (const PlacedDevice& p : placed_) {
    if (p.x < 0 || p.x >= cols_ || p.y < 0 || p.y >= rows_) {
      violations.push_back("device '" + p.device.name +
                           "' placed outside the " + std::to_string(rows_) +
                           "x" + std::to_string(cols_) + " grid");
    }
    const auto [it, inserted] =
        occupied.try_emplace({p.x, p.y}, p.device.name);
    if (!inserted) {
      violations.push_back("devices '" + it->second + "' and '" +
                           p.device.name + "' overlap at (" +
                           std::to_string(p.x) + "," + std::to_string(p.y) +
                           ")");
    }
  }
  // Wire rule: horizontal segments share metal-1 and vertical segments
  // metal-2, so crossings are fine but collinear overlaps between
  // different nets short them.
  for (std::size_t a = 0; a < wires_.size(); ++a) {
    for (std::size_t b = a + 1; b < wires_.size(); ++b) {
      const WireSegment& wa = wires_[a];
      const WireSegment& wb = wires_[b];
      if (wa.net == wb.net) continue;
      if (wa.horizontal() != wb.horizontal()) continue;
      bool overlap;
      if (wa.horizontal()) {
        overlap = wa.y1 == wb.y1 &&
                  std::max(std::min(wa.x1, wa.x2), std::min(wb.x1, wb.x2)) <
                      std::min(std::max(wa.x1, wa.x2),
                               std::max(wb.x1, wb.x2));
      } else {
        overlap = wa.x1 == wb.x1 &&
                  std::max(std::min(wa.y1, wa.y2), std::min(wb.y1, wb.y2)) <
                      std::min(std::max(wa.y1, wa.y2),
                               std::max(wb.y1, wb.y2));
      }
      if (overlap) {
        violations.push_back("wires of nets '" + wa.net + "' and '" +
                             wb.net + "' overlap on the same layer");
      }
    }
  }
  return violations;
}

std::string Layout::to_text() const {
  std::string out = "layout " + name_ + " source=" + source_ +
                    " rows=" + std::to_string(rows_) +
                    " cols=" + std::to_string(cols_) + "\n";
  char buf[64];
  for (const PlacedDevice& p : placed_) {
    const Device& d = p.device;
    out += "place " + d.name + " ";
    out += to_string(d.type);
    out += " x=" + std::to_string(p.x) + " y=" + std::to_string(p.y);
    if (d.is_mos()) {
      out += " g=" + d.terminals[0] + " d=" + d.terminals[1] +
             " s=" + d.terminals[2] + " model=" + d.model;
    } else {
      out += " a=" + d.terminals[0] + " b=" + d.terminals[1];
    }
    std::snprintf(buf, sizeof(buf), "%.9g", d.value);
    out += " value=";
    out += buf;
    out += "\n";
  }
  for (const Pin& pin : pins_) {
    out += "pin " + pin.net + " x=" + std::to_string(pin.x) +
           " y=" + std::to_string(pin.y) +
           " dir=" + (pin.is_output ? "out" : "in") + "\n";
  }
  for (const WireSegment& w : wires_) {
    out += "wire " + w.net + " " + std::to_string(w.x1) + " " +
           std::to_string(w.y1) + " " + std::to_string(w.x2) + " " +
           std::to_string(w.y2) + "\n";
  }
  return out;
}

namespace {

std::unordered_map<std::string, std::string> parse_kv(
    const std::vector<std::string>& tokens, std::size_t start,
    int line_number) {
  std::unordered_map<std::string, std::string> kv;
  for (std::size_t i = start; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      throw ParseError("layout line " + std::to_string(line_number) +
                       ": expected key=value, got '" + tokens[i] + "'");
    }
    kv[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return kv;
}

const std::string& require_kv(
    const std::unordered_map<std::string, std::string>& kv,
    const std::string& key, int line_number) {
  const auto it = kv.find(key);
  if (it == kv.end()) {
    throw ParseError("layout line " + std::to_string(line_number) +
                     ": missing '" + key + "='");
  }
  return it->second;
}

int parse_int(const std::string& s, int line_number) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw ParseError("layout line " + std::to_string(line_number) +
                     ": bad integer '" + s + "'");
  }
}

double parse_double(const std::string& s, int line_number) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw ParseError("layout line " + std::to_string(line_number) +
                     ": bad number '" + s + "'");
  }
}

}  // namespace

Layout Layout::from_text(std::string_view text) {
  Layout layout;
  int line_number = 0;
  for (const std::string& raw : support::split(text, '\n')) {
    ++line_number;
    const std::string_view body = support::trim(raw);
    if (body.empty() || body[0] == '#') continue;
    const auto tokens = support::split_ws(body);
    if (tokens[0] == "layout") {
      if (tokens.size() < 2) {
        throw ParseError("layout line " + std::to_string(line_number) +
                         ": expected 'layout <name> ...'");
      }
      layout.name_ = tokens[1];
      const auto kv = parse_kv(tokens, 2, line_number);
      if (const auto it = kv.find("source"); it != kv.end()) {
        layout.source_ = it->second;
      }
      if (const auto it = kv.find("rows"); it != kv.end()) {
        layout.rows_ = parse_int(it->second, line_number);
      }
      if (const auto it = kv.find("cols"); it != kv.end()) {
        layout.cols_ = parse_int(it->second, line_number);
      }
    } else if (tokens[0] == "place") {
      if (tokens.size() < 3) {
        throw ParseError("layout line " + std::to_string(line_number) +
                         ": expected 'place <name> <type> ...'");
      }
      const auto type = device_type_from(tokens[2]);
      if (!type) {
        throw ParseError("layout line " + std::to_string(line_number) +
                         ": unknown device type '" + tokens[2] + "'");
      }
      const auto kv = parse_kv(tokens, 3, line_number);
      Device d;
      d.name = tokens[1];
      d.type = *type;
      if (d.is_mos()) {
        d.terminals = {require_kv(kv, "g", line_number),
                       require_kv(kv, "d", line_number),
                       require_kv(kv, "s", line_number)};
        const auto it = kv.find("model");
        d.model = it == kv.end()
                      ? (d.type == DeviceType::kNmos ? "nch" : "pch")
                      : it->second;
      } else {
        d.terminals = {require_kv(kv, "a", line_number),
                       require_kv(kv, "b", line_number)};
      }
      if (const auto it = kv.find("value"); it != kv.end()) {
        d.value = parse_double(it->second, line_number);
      }
      layout.place(d, parse_int(require_kv(kv, "x", line_number), line_number),
                   parse_int(require_kv(kv, "y", line_number), line_number));
    } else if (tokens[0] == "pin") {
      if (tokens.size() < 2) {
        throw ParseError("layout line " + std::to_string(line_number) +
                         ": pin needs a net");
      }
      const auto kv = parse_kv(tokens, 2, line_number);
      layout.add_pin(
          tokens[1], parse_int(require_kv(kv, "x", line_number), line_number),
          parse_int(require_kv(kv, "y", line_number), line_number),
          require_kv(kv, "dir", line_number) == "out");
    } else if (tokens[0] == "wire") {
      if (tokens.size() != 6) {
        throw ParseError("layout line " + std::to_string(line_number) +
                         ": expected 'wire <net> x1 y1 x2 y2'");
      }
      layout.add_wire(tokens[1], parse_int(tokens[2], line_number),
                      parse_int(tokens[3], line_number),
                      parse_int(tokens[4], line_number),
                      parse_int(tokens[5], line_number));
    } else {
      throw ParseError("layout line " + std::to_string(line_number) +
                       ": unknown directive '" + tokens[0] + "'");
    }
  }
  return layout;
}

}  // namespace herc::circuit
