// Physical layouts: the physical view of a design (Fig. 7).
//
// A layout places every device of a circuit on an integer grid and labels
// its terminals with net names (labeled pins).  Connectivity is therefore
// recoverable from the layout alone — which is what the Extractor does —
// while geometry (positions) determines the wirelength used for parasitic
// estimation.  Text form:
//
//   layout inverter source=inverter rows=4 cols=4
//   place m1 nmos x=0 y=0 g=in d=out s=GND model=nch value=1
//   pin in x=0 y=1
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/netlist.hpp"

namespace herc::circuit {

/// One placed device: a netlist device plus a grid position.
struct PlacedDevice {
  Device device;
  int x = 0;
  int y = 0;
};

/// A labeled I/O pin position.
struct Pin {
  std::string net;
  int x = 0;
  int y = 0;
  bool is_output = false;
};

/// An axis-aligned wire segment.  By convention horizontal segments run on
/// metal-1 and vertical segments on metal-2, so crossings are legal but
/// collinear overlaps between different nets are not (see `drc`).
struct WireSegment {
  std::string net;
  int x1 = 0;
  int y1 = 0;
  int x2 = 0;
  int y2 = 0;

  [[nodiscard]] bool horizontal() const { return y1 == y2; }
  /// Manhattan length in grid units.
  [[nodiscard]] int length() const;
  /// True when the grid point (x, y) lies on the segment.
  [[nodiscard]] bool covers(int x, int y) const;
};

class Layout {
 public:
  Layout() = default;
  Layout(std::string name, std::string source_netlist, int rows, int cols);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& source_netlist() const { return source_; }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  void resize(int rows, int cols);

  void place(const Device& device, int x, int y);
  void move(std::string_view device, int x, int y);
  void unplace(std::string_view device);
  [[nodiscard]] bool has_placement(std::string_view device) const;
  [[nodiscard]] const PlacedDevice& placement(std::string_view device) const;
  [[nodiscard]] const std::vector<PlacedDevice>& placements() const {
    return placed_;
  }

  void add_pin(std::string_view net, int x, int y, bool is_output);
  [[nodiscard]] const std::vector<Pin>& pins() const { return pins_; }

  /// Adds an axis-aligned wire segment; throws `ExecError` on a diagonal.
  void add_wire(std::string_view net, int x1, int y1, int x2, int y2);
  [[nodiscard]] const std::vector<WireSegment>& wires() const {
    return wires_;
  }
  [[nodiscard]] bool has_wires(std::string_view net) const;
  /// Total routed wirelength of `net` (0 when unrouted).
  [[nodiscard]] double routed_length(std::string_view net) const;
  /// All terminal positions (device placements and pins) of `net`.
  [[nodiscard]] std::vector<std::pair<int, int>> terminals_of(
      std::string_view net) const;
  /// True when every terminal of `net` is connected through its wires
  /// (trivially true for nets with fewer than two terminals).
  [[nodiscard]] bool net_connected(std::string_view net) const;

  /// Half-perimeter wirelength of `net` over device terminals and pins.
  [[nodiscard]] double net_hpwl(std::string_view net) const;
  /// Sum of HPWL over all nets (placement cost).
  [[nodiscard]] double total_hpwl() const;
  /// All nets referenced by placed devices and pins.
  [[nodiscard]] std::vector<std::string> nets() const;

  /// Design-rule check: placements inside the grid, no two devices on the
  /// same cell.  Returns human-readable violations (empty = clean).
  [[nodiscard]] std::vector<std::string> drc() const;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static Layout from_text(std::string_view text);

 private:
  std::string name_ = "layout";
  std::string source_ = "";
  int rows_ = 0;
  int cols_ = 0;
  std::vector<PlacedDevice> placed_;
  std::vector<Pin> pins_;
  std::vector<WireSegment> wires_;
};

}  // namespace herc::circuit
