// Interactive editing tools: `CircuitEditor`, `LayoutEditor`, `ModelEditor`.
//
// The paper's edit loops (`EditedNetlist --CircuitEditor--> Netlist?`) are
// driven by *edit scripts* — the designer's interactive session captured as
// text, which is exactly how a batch encapsulation of an editor behaves.
// Each `apply_*` function takes the previous version (or nothing, for
// editing from scratch) plus a script and returns the new version; applied
// through the framework this is what grows version trees (Fig. 11).
//
// Netlist script:            Layout script:          Model script:
//   name adder_v2              move m1 3 4             set nch resistance=12
//   input cin                  unplace m2              model px type=pmos
//   add nmos m9 g=a d=x s=GND  place m9 nmos x=1 ...   del pch
//   del m3                     pin cin x=0 y=3 dir=in
//   set m2 value=2             resize 8 8
#pragma once

#include <string_view>

#include "circuit/layout.hpp"
#include "circuit/models.hpp"
#include "circuit/netlist.hpp"

namespace herc::circuit {

/// Applies a circuit-editor script to `base` (empty netlist = from scratch).
/// Throws `ParseError` on bad scripts, `ExecError` on impossible edits.
[[nodiscard]] Netlist apply_netlist_edits(const Netlist& base,
                                          std::string_view script);

/// Applies a layout-editor script.
[[nodiscard]] Layout apply_layout_edits(const Layout& base,
                                        std::string_view script);

/// Applies a model-editor script.
[[nodiscard]] DeviceModelLibrary apply_model_edits(
    const DeviceModelLibrary& base, std::string_view script);

}  // namespace herc::circuit
