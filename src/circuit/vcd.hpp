// Value-change-dump (VCD) export.
//
// Simulation results exported as IEEE-1364 VCD open in any waveform
// viewer.  Registered as a second Plotter encapsulation ("Plotter.vcd"),
// it is another instance of the paper's multiple-encapsulations-per-tool
// mechanism: same tool entity, different output format.
#pragma once

#include <string>
#include <string_view>

#include "circuit/sim.hpp"

namespace herc::circuit {

struct VcdOptions {
  /// `$timescale` unit; waveform times are picoseconds.
  std::string timescale = "1ps";
  /// Module name in the `$scope` section.
  std::string module = "dut";
};

/// Renders every waveform of `result` as a VCD document.
[[nodiscard]] std::string to_vcd(const SimResult& result,
                                 const VcdOptions& options = {});

}  // namespace herc::circuit
