#include "circuit/vcd.hpp"

#include <algorithm>
#include <map>

namespace herc::circuit {

namespace {

char vcd_value(Level l) {
  switch (l) {
    case Level::kLow: return '0';
    case Level::kHigh: return '1';
    case Level::kX: return 'x';
  }
  return 'x';
}

/// Short identifier codes: '!', '"', '#', ... per VCD convention.
std::string id_code(std::size_t index) {
  std::string code;
  do {
    code += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return code;
}

}  // namespace

std::string to_vcd(const SimResult& result, const VcdOptions& options) {
  std::string out;
  out += "$date reproduced $end\n";
  out += "$version hercules switch-level simulator $end\n";
  out += "$timescale " + options.timescale + " $end\n";
  out += "$scope module " + options.module + " $end\n";
  std::vector<std::string> codes;
  for (std::size_t i = 0; i < result.waves.size(); ++i) {
    codes.push_back(id_code(i));
    out += "$var wire 1 " + codes[i] + " " + result.waves[i].net + " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  // Merge all change points into one time-ordered stream.
  std::map<std::int64_t, std::vector<std::pair<std::size_t, Level>>>
      by_time;
  for (std::size_t i = 0; i < result.waves.size(); ++i) {
    for (const WavePoint& p : result.waves[i].points) {
      by_time[p.time_ps].emplace_back(i, p.level);
    }
  }
  // Initial values at time 0 in $dumpvars (default x when unknown).
  out += "$dumpvars\n";
  for (std::size_t i = 0; i < result.waves.size(); ++i) {
    const Level initial = result.waves[i].points.empty()
                              ? Level::kX
                              : result.waves[i].points.front().level;
    out += vcd_value(initial);
    out += codes[i];
    out += "\n";
  }
  out += "$end\n";
  for (const auto& [time, changes] : by_time) {
    if (time == 0) continue;  // covered by $dumpvars
    out += "#" + std::to_string(time) + "\n";
    for (const auto& [index, level] : changes) {
      out += vcd_value(level);
      out += codes[index];
      out += "\n";
    }
  }
  return out;
}

}  // namespace herc::circuit
