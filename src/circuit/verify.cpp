#include "circuit/verify.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::circuit {

std::string VerificationReport::to_text() const {
  std::string out = "verification ";
  out += pass ? "PASS" : "FAIL";
  out += "\n";
  for (const std::string& e : errors) out += "error " + e + "\n";
  return out;
}

VerificationReport VerificationReport::from_text(std::string_view text) {
  VerificationReport report;
  for (const std::string& raw : support::split(text, '\n')) {
    const std::string_view body = support::trim(raw);
    if (body.empty() || body[0] == '#') continue;
    if (body.rfind("verification", 0) == 0) {
      report.pass = body.find("PASS") != std::string_view::npos;
    } else if (body.rfind("error ", 0) == 0) {
      report.errors.emplace_back(body.substr(6));
    } else {
      throw support::ParseError("verification: unknown line '" +
                                std::string(body) + "'");
    }
  }
  return report;
}

VerificationReport verify_layout(const Layout& layout,
                                 const Netlist& reference,
                                 std::string_view parasitic_prefix) {
  VerificationReport report;
  const auto is_parasitic = [&](const std::string& name) {
    return !parasitic_prefix.empty() &&
           name.rfind(parasitic_prefix, 0) == 0;
  };

  // Every schematic device must be placed, with matching connectivity.
  for (const Device& want : reference.devices()) {
    if (is_parasitic(want.name)) continue;
    if (!layout.has_placement(want.name)) {
      report.errors.push_back("schematic device '" + want.name +
                              "' is not placed in the layout");
      continue;
    }
    const Device& have = layout.placement(want.name).device;
    if (have.type != want.type) {
      report.errors.push_back("device '" + want.name + "' is a " +
                              to_string(have.type) + " in the layout but a " +
                              to_string(want.type) + " in the schematic");
      continue;
    }
    for (std::size_t i = 0; i < want.terminals.size(); ++i) {
      if (have.terminals[i] != want.terminals[i]) {
        report.errors.push_back("device '" + want.name + "' terminal " +
                                std::to_string(i) + " connects to '" +
                                have.terminals[i] + "' in the layout but '" +
                                want.terminals[i] + "' in the schematic");
      }
    }
    if (want.is_mos() && have.model != want.model) {
      report.errors.push_back("device '" + want.name + "' uses model '" +
                              have.model + "' in the layout but '" +
                              want.model + "' in the schematic");
    }
    if (std::fabs(have.value - want.value) > 1e-9) {
      report.errors.push_back("device '" + want.name +
                              "' size differs between layout and schematic");
    }
  }
  // No extra (non-parasitic) devices in the layout.
  for (const PlacedDevice& p : layout.placements()) {
    if (is_parasitic(p.device.name)) continue;
    if (!reference.has_device(p.device.name)) {
      report.errors.push_back("layout device '" + p.device.name +
                              "' does not exist in the schematic");
    }
  }
  // Routed nets must actually connect their terminals.
  for (const std::string& net : layout.nets()) {
    if (layout.has_wires(net) && !layout.net_connected(net)) {
      report.errors.push_back("net '" + net +
                              "' is routed but not fully connected");
    }
  }
  // DRC rides along in the same report.
  for (const std::string& v : layout.drc()) {
    report.errors.push_back("drc: " + v);
  }
  report.pass = report.errors.empty();
  return report;
}

}  // namespace herc::circuit
