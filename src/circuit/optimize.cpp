#include "circuit/optimize.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/sim.hpp"
#include "support/error.hpp"

namespace herc::circuit {

const char* to_string(OptAlgorithm a) {
  switch (a) {
    case OptAlgorithm::kGradient: return "gradient";
    case OptAlgorithm::kAnnealing: return "annealing";
    case OptAlgorithm::kRandomSearch: return "random";
  }
  return "?";
}

std::optional<OptAlgorithm> opt_algorithm_from(std::string_view s) {
  if (s == "gradient") return OptAlgorithm::kGradient;
  if (s == "annealing") return OptAlgorithm::kAnnealing;
  if (s == "random") return OptAlgorithm::kRandomSearch;
  return std::nullopt;
}

std::string OptimizeResult::summary() const {
  return "optimized " + netlist.name() + ": delay " +
         std::to_string(initial_delay_ps) + " -> " +
         std::to_string(final_delay_ps) + " ps in " +
         std::to_string(evaluations) + " evaluations";
}

namespace {

class Rng {
 public:
  explicit Rng(std::uint64_t seed)
      : state_(seed == 0 ? 0x9e3779b97f4a7c15ULL : seed) {}
  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  std::size_t below(std::size_t n) { return next() % n; }
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

/// Cost: worst-case delay with a small area tie-breaker so the search
/// cannot wander among equal-delay sizings.
struct Evaluator {
  const DeviceModelLibrary& models;
  const Stimuli& stimuli;
  std::size_t evaluations = 0;

  double cost(const Netlist& nl) {
    ++evaluations;
    const SimResult r = simulate(nl, models, stimuli);
    double area = 0.0;
    for (const Device& d : nl.devices()) {
      if (d.is_mos()) area += d.value;
    }
    return static_cast<double>(r.max_delay_ps) + 0.01 * area;
  }

  std::int64_t delay(const Netlist& nl) {
    return simulate(nl, models, stimuli).max_delay_ps;
  }
};

std::vector<std::size_t> mos_indices(const Netlist& nl) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nl.devices().size(); ++i) {
    if (nl.devices()[i].is_mos()) out.push_back(i);
  }
  return out;
}

void set_width(Netlist& nl, std::size_t device_index, double width) {
  nl.device_mut(nl.devices()[device_index].name).value = width;
}

}  // namespace

OptimizeResult optimize(const Netlist& netlist,
                        const DeviceModelLibrary& models,
                        const Stimuli& stimuli,
                        const OptimizeOptions& options) {
  Evaluator eval{models, stimuli};
  OptimizeResult result;
  result.netlist = netlist;
  result.netlist.set_name(netlist.name() + "_opt");
  result.initial_delay_ps = eval.delay(netlist);

  const std::vector<std::size_t> mos = mos_indices(netlist);
  if (mos.empty()) {
    result.final_delay_ps = result.initial_delay_ps;
    result.evaluations = eval.evaluations;
    return result;
  }

  Netlist best = result.netlist;
  double best_cost = eval.cost(best);
  Rng rng(options.seed);

  switch (options.algorithm) {
    case OptAlgorithm::kGradient: {
      // Coordinate descent: try scaling each device up/down, keep any
      // improvement, stop after `iterations` sweeps or a sweep without
      // progress.
      for (std::size_t sweep = 0; sweep < options.iterations; ++sweep) {
        bool improved = false;
        for (const std::size_t di : mos) {
          const double w = best.devices()[di].value;
          for (const double factor : {1.4, 0.7}) {
            const double cand_w =
                std::clamp(w * factor, options.min_width, options.max_width);
            if (cand_w == w) continue;
            Netlist cand = best;
            set_width(cand, di, cand_w);
            const double c = eval.cost(cand);
            if (c < best_cost) {
              best = std::move(cand);
              best_cost = c;
              improved = true;
              break;
            }
          }
        }
        if (!improved) break;
      }
      break;
    }
    case OptAlgorithm::kAnnealing: {
      Netlist current = best;
      double current_cost = best_cost;
      double temperature = std::max(1.0, best_cost * 0.1);
      const double cooling =
          std::pow(0.02, 1.0 / static_cast<double>(
                               std::max<std::size_t>(options.iterations, 1)));
      for (std::size_t it = 0; it < options.iterations; ++it) {
        Netlist cand = current;
        const std::size_t di = mos[rng.below(mos.size())];
        const double w = cand.devices()[di].value;
        const double factor = 0.5 + rng.unit() * 1.5;
        set_width(cand, di,
                  std::clamp(w * factor, options.min_width,
                             options.max_width));
        const double c = eval.cost(cand);
        const double delta = c - current_cost;
        if (delta <= 0 || rng.unit() < std::exp(-delta / temperature)) {
          current = std::move(cand);
          current_cost = c;
          if (current_cost < best_cost) {
            best = current;
            best_cost = current_cost;
          }
        }
        temperature *= cooling;
      }
      break;
    }
    case OptAlgorithm::kRandomSearch: {
      for (std::size_t it = 0; it < options.iterations; ++it) {
        Netlist cand = result.netlist;
        for (const std::size_t di : mos) {
          const double w = options.min_width +
                           rng.unit() * (options.max_width -
                                         options.min_width);
          set_width(cand, di, w);
        }
        const double c = eval.cost(cand);
        if (c < best_cost) {
          best = std::move(cand);
          best_cost = c;
        }
      }
      break;
    }
  }

  result.netlist = std::move(best);
  result.final_delay_ps = eval.delay(result.netlist);
  result.evaluations = eval.evaluations;
  return result;
}

}  // namespace herc::circuit
