// Layout-versus-schematic verification: the `Verifier` of Figs. 1 and 8b.
//
// Checks that a physical view corresponds to a transistor view: every
// schematic device must be placed with identical connectivity, model and
// size; extra placed devices are flagged; DRC violations are included.
// Parasitic capacitors added by extraction are ignored on both sides.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "circuit/layout.hpp"
#include "circuit/netlist.hpp"

namespace herc::circuit {

/// The `Verification` entity payload.
struct VerificationReport {
  bool pass = false;
  std::vector<std::string> errors;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static VerificationReport from_text(std::string_view text);
};

/// Compares `layout` against `reference`.  Device names beginning with
/// `parasitic_prefix` are treated as extraction artifacts and skipped.
[[nodiscard]] VerificationReport verify_layout(
    const Layout& layout, const Netlist& reference,
    std::string_view parasitic_prefix = "cpar_");

}  // namespace herc::circuit
