#include "circuit/library.hpp"

namespace herc::circuit {

Netlist inverter_netlist() {
  Netlist nl("inverter");
  nl.add_input("in");
  nl.add_output("out");
  nl.add_nmos("mn", "in", "out", kGnd);
  nl.add_pmos("mp", "in", "out", kVdd);
  return nl;
}

Netlist nand2_netlist() {
  Netlist nl("nand2");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_output("y");
  nl.add_net("x");
  // Series NMOS pull-down, parallel PMOS pull-up.
  nl.add_nmos("mn1", "a", "y", "x");
  nl.add_nmos("mn2", "b", "x", kGnd);
  nl.add_pmos("mp1", "a", "y", kVdd);
  nl.add_pmos("mp2", "b", "y", kVdd);
  return nl;
}

Netlist nor2_netlist() {
  Netlist nl("nor2");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_output("y");
  nl.add_net("x");
  // Parallel NMOS pull-down, series PMOS pull-up.
  nl.add_nmos("mn1", "a", "y", kGnd);
  nl.add_nmos("mn2", "b", "y", kGnd);
  nl.add_pmos("mp1", "a", "x", kVdd);
  nl.add_pmos("mp2", "b", "y", "x");
  return nl;
}

Netlist xor2_netlist() {
  // y = a XOR b via four NANDs: n1 = ~(a&b); y = ~(~(a&n1) & ~(b&n1)).
  Netlist nl("xor2");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_output("y");
  const Netlist nand2 = nand2_netlist();
  nl.instantiate(nand2, "u1", {{"a", "a"}, {"b", "b"}, {"y", "n1"}});
  nl.instantiate(nand2, "u2", {{"a", "a"}, {"b", "n1"}, {"y", "n2"}});
  nl.instantiate(nand2, "u3", {{"a", "n1"}, {"b", "b"}, {"y", "n3"}});
  nl.instantiate(nand2, "u4", {{"a", "n2"}, {"b", "n3"}, {"y", "y"}});
  return nl;
}

Netlist full_adder_netlist() {
  // sum = a ^ b ^ cin; cout = majority(a, b, cin) via NANDs.
  Netlist nl("full_adder");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_input("cin");
  nl.add_output("sum");
  nl.add_output("cout");
  const Netlist x = xor2_netlist();
  const Netlist nand2 = nand2_netlist();
  nl.instantiate(x, "x1", {{"a", "a"}, {"b", "b"}, {"y", "p"}});
  nl.instantiate(x, "x2", {{"a", "p"}, {"b", "cin"}, {"y", "sum"}});
  // cout = ~( ~(a&b) & ~(p&cin) )
  nl.instantiate(nand2, "c1", {{"a", "a"}, {"b", "b"}, {"y", "g1"}});
  nl.instantiate(nand2, "c2", {{"a", "p"}, {"b", "cin"}, {"y", "g2"}});
  nl.instantiate(nand2, "c3", {{"a", "g1"}, {"b", "g2"}, {"y", "cout"}});
  return nl;
}

Netlist inverter_chain(std::size_t stages) {
  Netlist nl("inv_chain" + std::to_string(stages));
  nl.add_input("in");
  nl.add_output("out");
  const Netlist inv = inverter_netlist();
  std::string prev = "in";
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string next =
        (i + 1 == stages) ? "out" : "n" + std::to_string(i);
    nl.instantiate(inv, "s" + std::to_string(i),
                   {{"in", prev}, {"out", next}});
    prev = next;
  }
  return nl;
}

Netlist latch_netlist() {
  Netlist nl("latch");
  nl.add_input("d");
  nl.add_input("en");
  nl.add_output("q");
  nl.add_net("m");
  // Pass transistor into the storage node, then a forward inverter and a
  // weak feedback inverter keeping the node.
  nl.add_nmos("mpass", "en", "m", "d");
  nl.add_nmos("mn_f", "m", "q", kGnd);
  nl.add_pmos("mp_f", "m", "q", kVdd);
  nl.add_nmos("mn_b", "q", "m", kGnd, "nch", 0.25);
  nl.add_pmos("mp_b", "q", "m", kVdd, "pch", 0.25);
  return nl;
}

Netlist mux2_netlist() {
  Netlist nl("mux2");
  nl.add_input("a");
  nl.add_input("b");
  nl.add_input("sel");
  nl.add_output("y");
  nl.add_net("seln");
  nl.add_net("m");
  // sel inverter.
  nl.add_nmos("mn_i", "sel", "seln", kGnd);
  nl.add_pmos("mp_i", "sel", "seln", kVdd);
  // Pass gates onto the shared node, then an output buffer (two
  // inverters) to restore drive.
  nl.add_nmos("mpass_a", "seln", "m", "a");
  nl.add_nmos("mpass_b", "sel", "m", "b");
  nl.add_net("yb");
  nl.add_nmos("mn_b1", "m", "yb", kGnd);
  nl.add_pmos("mp_b1", "m", "yb", kVdd);
  nl.add_nmos("mn_b2", "yb", "y", kGnd);
  nl.add_pmos("mp_b2", "yb", "y", kVdd);
  return nl;
}

Netlist sr_latch_netlist() {
  // Cross-coupled NANDs, active-low set/reset.
  Netlist nl("sr_latch");
  nl.add_input("sn");
  nl.add_input("rn");
  nl.add_output("q");
  nl.add_output("qn");
  const Netlist nand2 = nand2_netlist();
  nl.instantiate(nand2, "u1", {{"a", "sn"}, {"b", "qn"}, {"y", "q"}});
  nl.instantiate(nand2, "u2", {{"a", "rn"}, {"b", "q"}, {"y", "qn"}});
  return nl;
}

Netlist dff_netlist() {
  Netlist nl("dff");
  nl.add_input("d");
  nl.add_input("clk");
  nl.add_output("q");
  nl.add_net("clkn");
  nl.add_net("mq");
  // Clock inverter.
  nl.add_nmos("mn_c", "clk", "clkn", kGnd);
  nl.add_pmos("mp_c", "clk", "clkn", kVdd);
  // Master latch (inverting): samples d while clk=0.
  const Netlist latch = latch_netlist();
  nl.instantiate(latch, "master", {{"d", "d"}, {"en", "clkn"}, {"q", "mq"}});
  // Slave latch (inverting): passes the master's value while clk=1;
  // two inversions give q = d sampled at the rising edge.
  nl.instantiate(latch, "slave", {{"d", "mq"}, {"en", "clk"}, {"q", "q"}});
  return nl;
}

Netlist dynamic_latch_netlist() {
  Netlist nl("dynamic_latch");
  nl.add_input("d");
  nl.add_input("en");
  nl.add_output("q");
  nl.add_net("m");
  nl.add_nmos("mpass", "en", "m", "d");
  nl.add_nmos("mn_f", "m", "q", kGnd);
  nl.add_pmos("mp_f", "m", "q", kVdd);
  return nl;
}

Netlist ripple_adder_netlist(std::size_t bits) {
  Netlist nl("ripple" + std::to_string(bits));
  const Netlist fa = full_adder_netlist();
  nl.add_input("cin");
  std::string carry = "cin";
  for (std::size_t i = 0; i < bits; ++i) {
    const std::string ai = "a" + std::to_string(i);
    const std::string bi = "b" + std::to_string(i);
    const std::string si = "s" + std::to_string(i);
    const std::string co =
        (i + 1 == bits) ? "cout" : "c" + std::to_string(i + 1);
    nl.add_input(ai);
    nl.add_input(bi);
    nl.add_output(si);
    nl.instantiate(fa, "fa" + std::to_string(i),
                   {{"a", ai},
                    {"b", bi},
                    {"cin", carry},
                    {"sum", si},
                    {"cout", co}});
    carry = co;
  }
  nl.add_output("cout");
  return nl;
}

}  // namespace herc::circuit
