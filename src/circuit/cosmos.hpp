// COSMOS-style compiled simulation (Fig. 2).
//
// The paper's example of a tool created *during* the design is the COSMOS
// switch-level simulator, "compiled for a given netlist and then executed
// on different stimuli".  This module reproduces that: `compile_netlist`
// partitions a MOS netlist into channel-connected components, solves each
// component's steady-state behaviour exhaustively over its gate inputs, and
// emits a `CompiledSim` — a table-driven evaluator whose text form is the
// payload of the `CompiledSimulator` *tool instance* in the history
// database.  `run_compiled` then executes that instance on stimuli.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/models.hpp"
#include "circuit/netlist.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"

namespace herc::circuit {

/// One channel-connected component, compiled to a truth table.
///
/// `rows[index]` holds one output code per output net for the input
/// combination `index` (bit i of the index = level of `input_signals[i]`).
/// Codes: '0', '1', 'X' (conflict / undriven-unknown), 'K' (state is
/// retained — the component stores charge for this combination).
struct CompiledComponent {
  std::vector<std::string> input_signals;
  std::vector<std::string> output_nets;
  std::vector<std::string> rows;
};

/// A compiled simulator: the runnable artifact of Fig. 2.
struct CompiledSim {
  std::string source_netlist;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  /// Components in (best-effort) topological order; feedback loops are
  /// resolved at run time by iterating to a fixpoint.
  std::vector<CompiledComponent> components;

  /// Total truth-table rows across components (a size metric).
  [[nodiscard]] std::size_t table_rows() const;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static CompiledSim from_text(std::string_view text);
};

/// Compiles `netlist` for later execution.  Components with more than
/// `max_component_inputs` gate inputs make the table blow up; compilation
/// refuses them with `ExecError`.
[[nodiscard]] CompiledSim compile_netlist(
    const Netlist& netlist, const DeviceModelLibrary& models,
    std::size_t max_component_inputs = 12);

/// Executes a compiled simulator on stimuli.  Functionally equivalent to
/// `simulate` on the source netlist (zero-delay: `max_delay_ps` is 0), but
/// evaluation is table lookups instead of network relaxation.
[[nodiscard]] SimResult run_compiled(const CompiledSim& sim,
                                     const Stimuli& stimuli);

}  // namespace herc::circuit
