#include "circuit/place.hpp"

#include <algorithm>
#include <cmath>

namespace herc::circuit {

namespace {

/// xorshift64* — deterministic, seedable, and good enough for annealing.
class Rng {
 public:
  explicit Rng(std::uint64_t seed)
      : state_(seed == 0 ? 0x9e3779b97f4a7c15ULL : seed) {}

  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  std::size_t below(std::size_t n) { return next() % n; }

  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace

Layout place(const Netlist& netlist, const PlaceOptions& options) {
  netlist.validate();
  const std::size_t n = netlist.devices().size();
  const int side =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(
                      static_cast<double>(std::max<std::size_t>(n, 1))))));
  Layout layout(netlist.name() + "_placed", netlist.name(), side + 2, side);

  // Row-major initial placement, rows 1..side (row 0 and the last row are
  // kept free for pins).
  int x = 0;
  int y = 1;
  for (const Device& d : netlist.devices()) {
    layout.place(d, x, y);
    if (++x == side) {
      x = 0;
      ++y;
    }
  }
  // Pins: inputs on the top edge, outputs on the bottom edge.
  int pin_x = 0;
  for (const std::string& in : netlist.inputs()) {
    layout.add_pin(in, pin_x++ % side, 0, /*is_output=*/false);
  }
  pin_x = 0;
  for (const std::string& out : netlist.outputs()) {
    layout.add_pin(out, pin_x++ % side, side + 1, /*is_output=*/true);
  }

  if (n < 2 || options.moves == 0) return layout;

  // Simulated annealing over device-position swaps.
  Rng rng(options.seed);
  double cost = layout.total_hpwl();
  double temperature = options.start_temperature;
  const double cooling =
      std::pow(0.01 / std::max(options.start_temperature, 0.011),
               1.0 / static_cast<double>(options.moves));
  const auto& devices = netlist.devices();
  for (std::size_t move = 0; move < options.moves; ++move) {
    const std::size_t i = rng.below(n);
    std::size_t j = rng.below(n - 1);
    if (j >= i) ++j;
    const PlacedDevice& pi = layout.placement(devices[i].name);
    const PlacedDevice& pj = layout.placement(devices[j].name);
    const int xi = pi.x;
    const int yi = pi.y;
    const int xj = pj.x;
    const int yj = pj.y;
    layout.move(devices[i].name, xj, yj);
    layout.move(devices[j].name, xi, yi);
    const double new_cost = layout.total_hpwl();
    const double delta = new_cost - cost;
    if (delta <= 0 ||
        (temperature > 1e-9 && rng.unit() < std::exp(-delta / temperature))) {
      cost = new_cost;
    } else {
      layout.move(devices[i].name, xi, yi);
      layout.move(devices[j].name, xj, yj);
    }
    temperature *= cooling;
  }
  return layout;
}

}  // namespace herc::circuit
