// Detail routing: the `Router` tool entity.
//
// Turns a placed layout into a routed one: each multi-terminal net gets a
// rectilinear chain of L-shaped wires connecting its terminals (sorted by
// position, so the tree is deterministic).  Horizontal segments live on
// metal-1 and vertical segments on metal-2; the layout's DRC flags
// same-layer overlaps between different nets, and its connectivity check
// (`Layout::net_connected`) verifies the result.  Extraction then uses the
// *routed* wirelength instead of the half-perimeter estimate, tying the
// placement/routing quality to simulated performance.
#pragma once

#include <string>

#include "circuit/layout.hpp"

namespace herc::circuit {

struct RouteOptions {
  /// Also route the supply rails (off by default: power routing is
  /// typically a separate grid).
  bool route_rails = false;
};

/// Routing by-products.
struct RouteStatistics {
  std::size_t nets_routed = 0;
  std::size_t segments = 0;
  double total_wirelength = 0.0;
  /// Same-layer overlaps the router could not avoid (these surface as DRC
  /// violations on the result).
  std::size_t conflicts = 0;

  [[nodiscard]] std::string to_text() const;
};

/// Routes every net of `layout` (which must not already contain wires).
/// The result keeps all placements and pins; every routed net satisfies
/// `net_connected`.  When `stats` is non-null it receives the summary.
[[nodiscard]] Layout route(const Layout& layout,
                           const RouteOptions& options = {},
                           RouteStatistics* stats = nullptr);

}  // namespace herc::circuit
