#include "circuit/cosmos.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::circuit {

using support::ExecError;
using support::ParseError;

namespace {

bool is_rail(const std::string& net) { return net == kVdd || net == kGnd; }

/// Union-find over net names.
class UnionFind {
 public:
  void add(const std::string& x) { parent_.try_emplace(x, x); }
  const std::string& find(const std::string& x) {
    std::string& p = parent_.at(x);
    if (p == x) return p;
    p = find(p);
    return p;
  }
  void unite(const std::string& a, const std::string& b) {
    const std::string ra = find(a);
    const std::string rb = find(b);
    if (ra != rb) parent_[ra] = rb;
  }

 private:
  std::unordered_map<std::string, std::string> parent_;
};

/// Steady-state solver over one channel-connected component.  `driven`
/// maps boundary nets (gates resolved externally, primary inputs, rails)
/// to fixed levels; `initial` seeds the charge state of internal nets.
struct ComponentNetwork {
  struct Channel {
    DeviceType type;         // kNmos / kPmos / kResistor
    std::size_t gate;        // index into `signals` for MOS; unused for R
    std::size_t a;
    std::size_t b;
    bool weak = false;       // narrow device: loses against full channels
  };
  std::vector<std::string> nets;        // component nets incl. rails touched
  std::vector<std::string> signals;     // gate-input signal names
  std::vector<Channel> channels;
  std::vector<char> net_is_driven;      // rails and primary inputs
  std::vector<Level> driven_level_of;   // for driven nets (rails)
};

std::vector<Level> solve_component(const ComponentNetwork& cn,
                                   const std::vector<Level>& signal_levels,
                                   Level initial_internal) {
  constexpr int kCharged = 1;
  constexpr int kWeak = 2;
  constexpr int kResistive = 3;
  constexpr int kDriven = 4;
  const std::size_t n = cn.nets.size();
  std::vector<Level> val(n);
  std::vector<int> str(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (cn.net_is_driven[i] != 0) {
      val[i] = cn.driven_level_of[i];
      str[i] = kDriven;
    } else {
      val[i] = initial_internal;
      str[i] = kCharged;
    }
  }
  bool changed = true;
  std::size_t iters = 0;
  const std::size_t cap = 4 * n + 8;
  while (changed && iters++ < cap) {
    changed = false;
    for (const ComponentNetwork::Channel& ch : cn.channels) {
      bool on = true;
      bool uncertain = false;
      if (ch.type == DeviceType::kNmos) {
        on = signal_levels[ch.gate] != Level::kLow;
        uncertain = signal_levels[ch.gate] == Level::kX;
      } else if (ch.type == DeviceType::kPmos) {
        on = signal_levels[ch.gate] != Level::kHigh;
        uncertain = signal_levels[ch.gate] == Level::kX;
      }
      if (!on) continue;
      const int strength_limit = ch.weak ? kWeak : kResistive;
      // Same merge rules as `simulate` (see sim.cpp): uncertain paths
      // carry their source value and only differing possibilities go X.
      const auto propagate = [&](std::size_t from, std::size_t to) {
        if (cn.net_is_driven[to] != 0) return;  // driven nets never move
        const int cand_str = std::min(str[from], strength_limit);
        const Level cand_val = val[from];
        if (cand_str > str[to]) {
          const Level next =
              (uncertain && val[to] != cand_val) ? Level::kX : cand_val;
          str[to] = cand_str;
          if (val[to] != next) val[to] = next;
          changed = true;
        } else if (cand_str == str[to] && cand_val != val[to] &&
                   val[to] != Level::kX) {
          val[to] = Level::kX;
          changed = true;
        }
      };
      propagate(ch.a, ch.b);
      propagate(ch.b, ch.a);
    }
  }
  return val;
}

}  // namespace

std::size_t CompiledSim::table_rows() const {
  std::size_t total = 0;
  for (const CompiledComponent& c : components) total += c.rows.size();
  return total;
}

CompiledSim compile_netlist(const Netlist& netlist,
                            const DeviceModelLibrary& models,
                            std::size_t max_component_inputs) {
  netlist.validate();
  for (const Device& d : netlist.devices()) {
    if (d.is_mos() && !models.has_model(d.model)) {
      throw ExecError("compile: netlist '" + netlist.name() +
                      "' uses unknown model '" + d.model + "'");
    }
  }

  const std::unordered_set<std::string> primary_inputs(
      netlist.inputs().begin(), netlist.inputs().end());

  // 1. Channel-connected components: union source/drain (and resistor
  // terminals), with rails and primary inputs acting as boundaries that do
  // not merge components.
  UnionFind uf;
  for (const std::string& n : netlist.nets()) uf.add(n);
  const auto is_boundary = [&](const std::string& net) {
    return is_rail(net) || primary_inputs.contains(net);
  };
  for (const Device& d : netlist.devices()) {
    if (d.type == DeviceType::kCapacitor) continue;
    const std::string& a = d.is_mos() ? d.terminals[1] : d.terminals[0];
    const std::string& b = d.is_mos() ? d.terminals[2] : d.terminals[1];
    if (!is_boundary(a) && !is_boundary(b)) uf.unite(a, b);
  }

  // Gather devices per component (a device belongs to the component of its
  // non-boundary channel net; devices between two boundaries form their own
  // singleton component keyed by the device name).
  std::map<std::string, std::vector<const Device*>> comp_devices;
  for (const Device& d : netlist.devices()) {
    if (d.type == DeviceType::kCapacitor) continue;
    const std::string& a = d.is_mos() ? d.terminals[1] : d.terminals[0];
    const std::string& b = d.is_mos() ? d.terminals[2] : d.terminals[1];
    std::string key;
    if (!is_boundary(a)) {
      key = uf.find(a);
    } else if (!is_boundary(b)) {
      key = uf.find(b);
    } else {
      key = "@dev:" + d.name;
    }
    comp_devices[key].push_back(&d);
  }

  // Nets observed by the rest of the circuit: primary outputs and MOS gates.
  std::unordered_set<std::string> observed(netlist.outputs().begin(),
                                           netlist.outputs().end());
  for (const Device& d : netlist.devices()) {
    if (d.is_mos() && !is_rail(d.terminals[0])) observed.insert(d.terminals[0]);
  }

  CompiledSim sim;
  sim.source_netlist = netlist.name();
  sim.inputs = netlist.inputs();
  sim.outputs = netlist.outputs();

  for (const auto& [key, devices] : comp_devices) {
    ComponentNetwork cn;
    std::unordered_map<std::string, std::size_t> net_index;
    std::unordered_map<std::string, std::size_t> signal_index;
    const auto net_of = [&](const std::string& name) {
      const auto it = net_index.find(name);
      if (it != net_index.end()) return it->second;
      const std::size_t idx = cn.nets.size();
      cn.nets.push_back(name);
      net_index.emplace(name, idx);
      const bool driven = is_rail(name) || primary_inputs.contains(name);
      cn.net_is_driven.push_back(driven ? 1 : 0);
      cn.driven_level_of.push_back(name == kVdd ? Level::kHigh : Level::kLow);
      return idx;
    };
    const auto signal_of = [&](const std::string& name) {
      const auto it = signal_index.find(name);
      if (it != signal_index.end()) return it->second;
      const std::size_t idx = cn.signals.size();
      cn.signals.push_back(name);
      signal_index.emplace(name, idx);
      return idx;
    };

    for (const Device* d : devices) {
      ComponentNetwork::Channel ch;
      ch.type = d->type;
      ch.weak = d->is_mos() && d->value < 0.5;
      if (d->is_mos()) {
        ch.gate = signal_of(d->terminals[0]);
        ch.a = net_of(d->terminals[1]);
        ch.b = net_of(d->terminals[2]);
      } else {
        ch.gate = 0;
        ch.a = net_of(d->terminals[0]);
        ch.b = net_of(d->terminals[1]);
      }
      cn.channels.push_back(ch);
    }
    // Primary inputs lying on the channel network are runtime signals too:
    // their level comes from the stimuli, not from a table constant.
    for (std::size_t i = 0; i < cn.nets.size(); ++i) {
      if (primary_inputs.contains(cn.nets[i])) {
        signal_of(cn.nets[i]);
      }
    }

    CompiledComponent comp;
    comp.input_signals = cn.signals;
    for (const std::string& n : cn.nets) {
      if (!is_rail(n) && !primary_inputs.contains(n) && observed.contains(n)) {
        comp.output_nets.push_back(n);
      }
    }
    if (comp.output_nets.empty()) continue;  // nothing the outside can see
    if (cn.signals.size() > max_component_inputs) {
      throw ExecError(
          "compile: component around net '" + comp.output_nets.front() +
          "' has " + std::to_string(cn.signals.size()) +
          " inputs; refusing to build a 2^" +
          std::to_string(cn.signals.size()) + "-row table (limit " +
          std::to_string(max_component_inputs) + ")");
    }

    const std::size_t k = cn.signals.size();
    const std::size_t n_rows = std::size_t{1} << k;
    comp.rows.reserve(n_rows);
    std::vector<Level> levels(k);
    for (std::size_t row = 0; row < n_rows; ++row) {
      for (std::size_t b = 0; b < k; ++b) {
        levels[b] = ((row >> b) & 1U) != 0 ? Level::kHigh : Level::kLow;
      }
      // Primary-input signals that are also channel nets must drive the
      // network with the row's level.
      ComponentNetwork driven = cn;
      for (std::size_t i = 0; i < cn.nets.size(); ++i) {
        if (primary_inputs.contains(cn.nets[i])) {
          driven.driven_level_of[i] = levels[signal_index.at(cn.nets[i])];
        }
      }
      // Solve twice with opposite charge seeds: agreement means the value
      // is combinational, disagreement means the component retains state.
      const std::vector<Level> lo =
          solve_component(driven, levels, Level::kLow);
      const std::vector<Level> hi =
          solve_component(driven, levels, Level::kHigh);
      std::string codes;
      for (const std::string& out : comp.output_nets) {
        const std::size_t idx = net_index.at(out);
        char code;
        if (lo[idx] == hi[idx]) {
          code = to_char(lo[idx]);
        } else {
          code = 'K';
        }
        codes += code;
      }
      comp.rows.push_back(std::move(codes));
    }
    sim.components.push_back(std::move(comp));
  }

  // 2. Topological order by signal dependency (Kahn; feedback stays in
  // insertion order and is iterated at run time).
  std::unordered_map<std::string, std::size_t> producer;
  for (std::size_t c = 0; c < sim.components.size(); ++c) {
    for (const std::string& out : sim.components[c].output_nets) {
      producer.emplace(out, c);
    }
  }
  const std::size_t n_comp = sim.components.size();
  std::vector<std::vector<std::size_t>> succs(n_comp);
  std::vector<std::size_t> indeg(n_comp, 0);
  for (std::size_t c = 0; c < n_comp; ++c) {
    std::set<std::size_t> preds;
    for (const std::string& sig : sim.components[c].input_signals) {
      const auto it = producer.find(sig);
      if (it != producer.end() && it->second != c) preds.insert(it->second);
    }
    for (const std::size_t p : preds) {
      succs[p].push_back(c);
      ++indeg[c];
    }
  }
  std::vector<std::size_t> order;
  std::vector<std::size_t> ready;
  for (std::size_t c = 0; c < n_comp; ++c) {
    if (indeg[c] == 0) ready.push_back(c);
  }
  while (!ready.empty()) {
    const std::size_t c = ready.back();
    ready.pop_back();
    order.push_back(c);
    for (const std::size_t s : succs[c]) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (order.size() == n_comp) {
    std::vector<CompiledComponent> sorted;
    sorted.reserve(n_comp);
    for (const std::size_t c : order) sorted.push_back(sim.components[c]);
    sim.components = std::move(sorted);
  }
  return sim;
}

SimResult run_compiled(const CompiledSim& sim, const Stimuli& stimuli) {
  // Net state across events.
  std::unordered_map<std::string, Level> state;
  const auto level_of = [&](const std::string& net) {
    if (net == kVdd) return Level::kHigh;
    if (net == kGnd) return Level::kLow;
    const auto it = state.find(net);
    return it == state.end() ? Level::kX : it->second;
  };

  SimResult result;
  SimStatistics& stats = result.stats;
  std::vector<std::vector<WavePoint>> recs(sim.outputs.size());

  std::vector<std::int64_t> times = stimuli.event_times();
  if (times.empty()) times.push_back(0);
  for (const std::int64_t t : times) {
    ++stats.input_events;
    for (const std::string& in : sim.inputs) {
      state[in] = stimuli.has_wave(in) ? stimuli.wave(in).at(t) : Level::kX;
    }
    // Evaluate components to a fixpoint (feedback needs multiple passes).
    bool changed = true;
    std::size_t passes = 0;
    const std::size_t cap = sim.components.size() + 4;
    while (changed && passes++ < cap) {
      changed = false;
      for (const CompiledComponent& comp : sim.components) {
        // X handling: enumerate every completion of the X inputs; outputs
        // on which all completions agree take that value, the rest go X.
        // This lets latches initialize even while their feedback signal is
        // still unknown (a plain "any X in -> X out" rule never converges
        // on cross-coupled structures).
        std::size_t base_row = 0;
        std::vector<std::size_t> x_bits;
        for (std::size_t b = 0; b < comp.input_signals.size(); ++b) {
          const Level l = level_of(comp.input_signals[b]);
          if (l == Level::kX) {
            x_bits.push_back(b);
          } else {
            base_row |= (l == Level::kHigh ? std::size_t{1} : 0U) << b;
          }
        }
        ++stats.relax_iterations;
        constexpr std::size_t kMaxEnumeratedXBits = 10;
        const bool too_many_x = x_bits.size() > kMaxEnumeratedXBits;
        const std::size_t completions =
            too_many_x ? 0 : (std::size_t{1} << x_bits.size());
        for (std::size_t o = 0; o < comp.output_nets.size(); ++o) {
          const std::string& net = comp.output_nets[o];
          Level next = Level::kX;
          if (!too_many_x) {
            bool first = true;
            bool agree = true;
            for (std::size_t c = 0; c < completions && agree; ++c) {
              std::size_t row = base_row;
              for (std::size_t x = 0; x < x_bits.size(); ++x) {
                if (((c >> x) & 1U) != 0) {
                  row |= std::size_t{1} << x_bits[x];
                }
              }
              Level value;
              switch (comp.rows[row][o]) {
                case '0': value = Level::kLow; break;
                case '1': value = Level::kHigh; break;
                case 'K': value = level_of(net); break;
                default: value = Level::kX; break;
              }
              if (first) {
                next = value;
                first = false;
              } else if (value != next) {
                agree = false;
              }
            }
            if (!agree) next = Level::kX;
          }
          if (level_of(net) != next) {
            state[net] = next;
            ++stats.net_updates;
            changed = true;
          }
        }
      }
    }

    for (std::size_t o = 0; o < sim.outputs.size(); ++o) {
      const Level l = level_of(sim.outputs[o]);
      if (!recs[o].empty() && recs[o].back().level == l) continue;
      recs[o].push_back(WavePoint{t, l});
    }
  }

  for (std::size_t o = 0; o < sim.outputs.size(); ++o) {
    Waveform w;
    w.net = sim.outputs[o];
    w.points = std::move(recs[o]);
    stats.output_toggles += w.transitions();
    result.waves.push_back(std::move(w));
  }
  for (const auto& [net, level] : state) {
    stats.x_nets += (level == Level::kX) ? 1 : 0;
  }
  result.max_delay_ps = 0;
  return result;
}

std::string CompiledSim::to_text() const {
  std::string out = "compiledsim " + source_netlist + "\n";
  for (const std::string& in : inputs) out += "input " + in + "\n";
  for (const std::string& o : outputs) out += "output " + o + "\n";
  for (const CompiledComponent& c : components) {
    out += "component in=" + support::join(c.input_signals, ",") +
           " out=" + support::join(c.output_nets, ",") + " rows=";
    for (std::size_t r = 0; r < c.rows.size(); ++r) {
      if (r != 0) out += ',';
      out += c.rows[r];
    }
    out += "\n";
  }
  return out;
}

CompiledSim CompiledSim::from_text(std::string_view text) {
  CompiledSim sim;
  int line_number = 0;
  for (const std::string& raw : support::split(text, '\n')) {
    ++line_number;
    const std::string_view body = support::trim(raw);
    if (body.empty() || body[0] == '#') continue;
    const auto tokens = support::split_ws(body);
    if (tokens[0] == "compiledsim") {
      sim.source_netlist = tokens.size() > 1 ? tokens[1] : "";
    } else if (tokens[0] == "input" && tokens.size() == 2) {
      sim.inputs.push_back(tokens[1]);
    } else if (tokens[0] == "output" && tokens.size() == 2) {
      sim.outputs.push_back(tokens[1]);
    } else if (tokens[0] == "component") {
      CompiledComponent comp;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          throw ParseError("compiledsim line " + std::to_string(line_number) +
                           ": expected key=value");
        }
        const std::string key = tokens[i].substr(0, eq);
        const std::string value = tokens[i].substr(eq + 1);
        if (key == "in") {
          if (!value.empty()) {
            comp.input_signals = support::split(value, ',');
          }
        } else if (key == "out") {
          comp.output_nets = support::split(value, ',');
        } else if (key == "rows") {
          comp.rows = support::split(value, ',');
        } else {
          throw ParseError("compiledsim line " + std::to_string(line_number) +
                           ": unknown key '" + key + "'");
        }
      }
      const std::size_t want_rows = std::size_t{1}
                                    << comp.input_signals.size();
      if (comp.rows.size() != want_rows) {
        throw ParseError("compiledsim line " + std::to_string(line_number) +
                         ": expected " + std::to_string(want_rows) +
                         " rows, got " + std::to_string(comp.rows.size()));
      }
      for (const std::string& row : comp.rows) {
        if (row.size() != comp.output_nets.size()) {
          throw ParseError("compiledsim line " +
                           std::to_string(line_number) +
                           ": row width mismatches output count");
        }
      }
      sim.components.push_back(std::move(comp));
    } else {
      throw ParseError("compiledsim line " + std::to_string(line_number) +
                       ": unknown directive '" + tokens[0] + "'");
    }
  }
  return sim;
}

}  // namespace herc::circuit
