#include "circuit/extract.hpp"

#include <cstdio>

namespace herc::circuit {

std::string ExtractStatistics::to_text() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "extractstats\ndevices=%zu\nnets=%zu\nparasitics=%zu\n"
                "total_parasitic_pf=%.9g\ntotal_hpwl=%.9g\n",
                devices, nets, parasitics, total_parasitic_pf, total_hpwl);
  return buf;
}

Netlist extract(const Layout& layout, const ExtractOptions& options,
                ExtractStatistics* stats) {
  Netlist netlist(layout.source_netlist().empty()
                      ? layout.name() + "_extracted"
                      : layout.source_netlist() + "_extracted");
  for (const Pin& pin : layout.pins()) {
    if (pin.is_output) {
      netlist.add_output(pin.net);
    } else {
      netlist.add_input(pin.net);
    }
  }
  for (const PlacedDevice& p : layout.placements()) {
    Device copy = p.device;
    // `add` via the device-specific entry points to reuse their checks.
    switch (copy.type) {
      case DeviceType::kNmos:
        netlist.add_nmos(copy.name, copy.terminals[0], copy.terminals[1],
                         copy.terminals[2], copy.model, copy.value);
        break;
      case DeviceType::kPmos:
        netlist.add_pmos(copy.name, copy.terminals[0], copy.terminals[1],
                         copy.terminals[2], copy.model, copy.value);
        break;
      case DeviceType::kResistor:
        netlist.add_resistor(copy.name, copy.terminals[0], copy.terminals[1],
                             copy.value);
        break;
      case DeviceType::kCapacitor:
        netlist.add_capacitor(copy.name, copy.terminals[0], copy.terminals[1],
                              copy.value);
        break;
    }
  }
  // Parasitics: one grounded capacitor per net with nonzero wirelength.
  // Routed nets use their actual wire length; unrouted nets fall back to
  // the half-perimeter estimate.
  double total_pf = 0.0;
  double total_hpwl = 0.0;
  std::size_t parasitics = 0;
  for (const std::string& net : layout.nets()) {
    const double hpwl = layout.has_wires(net) ? layout.routed_length(net)
                                              : layout.net_hpwl(net);
    total_hpwl += hpwl;
    if (hpwl <= 0.0) continue;
    const double pf = hpwl * options.cap_per_unit_pf;
    netlist.add_capacitor(std::string(options.parasitic_prefix) + net, net,
                          kGnd, pf);
    total_pf += pf;
    ++parasitics;
  }
  if (stats != nullptr) {
    stats->devices = layout.placements().size();
    stats->nets = layout.nets().size();
    stats->parasitics = parasitics;
    stats->total_parasitic_pf = total_pf;
    stats->total_hpwl = total_hpwl;
  }
  return netlist;
}

}  // namespace herc::circuit
