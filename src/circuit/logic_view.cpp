#include "circuit/logic_view.hpp"

#include <algorithm>

#include "circuit/library.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::circuit {

using support::ExecError;
using support::ParseError;

const char* to_string(GateKind k) {
  switch (k) {
    case GateKind::kInv: return "inv";
    case GateKind::kNand2: return "nand2";
    case GateKind::kNor2: return "nor2";
    case GateKind::kAnd2: return "and2";
    case GateKind::kOr2: return "or2";
    case GateKind::kXor2: return "xor2";
  }
  return "?";
}

std::optional<GateKind> gate_kind_from(std::string_view s) {
  if (s == "inv") return GateKind::kInv;
  if (s == "nand2") return GateKind::kNand2;
  if (s == "nor2") return GateKind::kNor2;
  if (s == "and2") return GateKind::kAnd2;
  if (s == "or2") return GateKind::kOr2;
  if (s == "xor2") return GateKind::kXor2;
  return std::nullopt;
}

LogicView::LogicView(std::string name) : name_(std::move(name)) {}

void LogicView::add_input(std::string_view net) {
  if (std::find(inputs_.begin(), inputs_.end(), net) == inputs_.end()) {
    inputs_.emplace_back(net);
  }
}

void LogicView::add_output(std::string_view net) {
  if (std::find(outputs_.begin(), outputs_.end(), net) == outputs_.end()) {
    outputs_.emplace_back(net);
  }
}

void LogicView::add_gate(LogicGate gate) {
  for (const LogicGate& g : gates_) {
    if (g.name == gate.name) {
      throw ExecError("logic view '" + name_ + "': duplicate gate '" +
                      gate.name + "'");
    }
  }
  gates_.push_back(std::move(gate));
}

void LogicView::validate() const {
  for (const LogicGate& g : gates_) {
    const bool unary = g.kind == GateKind::kInv;
    const std::vector<std::string> want =
        unary ? std::vector<std::string>{"a", "y"}
              : std::vector<std::string>{"a", "b", "y"};
    for (const std::string& pin : want) {
      if (!g.pins.contains(pin)) {
        throw ExecError("logic view '" + name_ + "': gate '" + g.name +
                        "' is missing pin '" + pin + "'");
      }
    }
    if (g.pins.size() != want.size()) {
      throw ExecError("logic view '" + name_ + "': gate '" + g.name +
                      "' has unexpected pins");
    }
  }
  // Each output must be driven by exactly one gate.
  for (const std::string& out : outputs_) {
    std::size_t drivers = 0;
    for (const LogicGate& g : gates_) {
      drivers += (g.pins.at("y") == out) ? 1 : 0;
    }
    if (drivers != 1) {
      throw ExecError("logic view '" + name_ + "': output '" + out +
                      "' has " + std::to_string(drivers) + " drivers");
    }
  }
}

std::string LogicView::to_text() const {
  std::string out = "logic " + name_ + "\n";
  if (!inputs_.empty()) {
    out += "input " + support::join(inputs_, " ") + "\n";
  }
  if (!outputs_.empty()) {
    out += "output " + support::join(outputs_, " ") + "\n";
  }
  for (const LogicGate& g : gates_) {
    out += "gate " + g.name + " ";
    out += to_string(g.kind);
    // Stable pin order.
    for (const char* pin : {"a", "b", "y"}) {
      const auto it = g.pins.find(pin);
      if (it != g.pins.end()) {
        out += " " + std::string(pin) + "=" + it->second;
      }
    }
    out += "\n";
  }
  return out;
}

LogicView LogicView::from_text(std::string_view text) {
  LogicView view;
  int line_number = 0;
  for (const std::string& raw : support::split(text, '\n')) {
    ++line_number;
    const std::string_view body = support::trim(raw);
    if (body.empty() || body[0] == '#') continue;
    const auto tokens = support::split_ws(body);
    if (tokens[0] == "logic") {
      if (tokens.size() != 2) {
        throw ParseError("logic line " + std::to_string(line_number) +
                         ": expected 'logic <name>'");
      }
      view.name_ = tokens[1];
    } else if (tokens[0] == "input" || tokens[0] == "output") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (tokens[0] == "input") {
          view.add_input(tokens[i]);
        } else {
          view.add_output(tokens[i]);
        }
      }
    } else if (tokens[0] == "gate") {
      if (tokens.size() < 3) {
        throw ParseError("logic line " + std::to_string(line_number) +
                         ": expected 'gate <name> <kind> pins...'");
      }
      LogicGate g;
      g.name = tokens[1];
      const auto kind = gate_kind_from(tokens[2]);
      if (!kind) {
        throw ParseError("logic line " + std::to_string(line_number) +
                         ": unknown gate kind '" + tokens[2] + "'");
      }
      g.kind = *kind;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          throw ParseError("logic line " + std::to_string(line_number) +
                           ": expected pin=net");
        }
        g.pins[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
      }
      view.add_gate(std::move(g));
    } else {
      throw ParseError("logic line " + std::to_string(line_number) +
                       ": unknown directive '" + tokens[0] + "'");
    }
  }
  return view;
}

Netlist synthesize(const LogicView& view) {
  view.validate();
  Netlist nl(view.name() + "_syn");
  for (const std::string& in : view.inputs()) nl.add_input(in);
  for (const std::string& out : view.outputs()) nl.add_output(out);

  const Netlist inv = inverter_netlist();
  const Netlist nand2 = nand2_netlist();
  const Netlist nor2 = nor2_netlist();
  const Netlist xor2 = xor2_netlist();

  for (const LogicGate& g : view.gates()) {
    const std::string& y = g.pins.at("y");
    switch (g.kind) {
      case GateKind::kInv:
        nl.instantiate(inv, g.name, {{"in", g.pins.at("a")}, {"out", y}});
        break;
      case GateKind::kNand2:
        nl.instantiate(nand2, g.name,
                       {{"a", g.pins.at("a")}, {"b", g.pins.at("b")},
                        {"y", y}});
        break;
      case GateKind::kNor2:
        nl.instantiate(nor2, g.name,
                       {{"a", g.pins.at("a")}, {"b", g.pins.at("b")},
                        {"y", y}});
        break;
      case GateKind::kAnd2: {
        // nand + inverter through a private internal net.
        const std::string mid = g.name + ".n";
        nl.instantiate(nand2, g.name + ".g",
                       {{"a", g.pins.at("a")}, {"b", g.pins.at("b")},
                        {"y", mid}});
        nl.instantiate(inv, g.name + ".i", {{"in", mid}, {"out", y}});
        break;
      }
      case GateKind::kOr2: {
        const std::string mid = g.name + ".n";
        nl.instantiate(nor2, g.name + ".g",
                       {{"a", g.pins.at("a")}, {"b", g.pins.at("b")},
                        {"y", mid}});
        nl.instantiate(inv, g.name + ".i", {{"in", mid}, {"out", y}});
        break;
      }
      case GateKind::kXor2:
        nl.instantiate(xor2, g.name,
                       {{"a", g.pins.at("a")}, {"b", g.pins.at("b")},
                        {"y", y}});
        break;
    }
  }
  nl.validate();
  return nl;
}

LogicView full_adder_logic() {
  LogicView view("full_adder");
  view.add_input("a");
  view.add_input("b");
  view.add_input("cin");
  view.add_output("sum");
  view.add_output("cout");
  view.add_gate(LogicGate{"x1", GateKind::kXor2,
                          {{"a", "a"}, {"b", "b"}, {"y", "p"}}});
  view.add_gate(LogicGate{"x2", GateKind::kXor2,
                          {{"a", "p"}, {"b", "cin"}, {"y", "sum"}}});
  view.add_gate(LogicGate{"c1", GateKind::kNand2,
                          {{"a", "a"}, {"b", "b"}, {"y", "g1"}}});
  view.add_gate(LogicGate{"c2", GateKind::kNand2,
                          {{"a", "p"}, {"b", "cin"}, {"y", "g2"}}});
  view.add_gate(LogicGate{"c3", GateKind::kNand2,
                          {{"a", "g1"}, {"b", "g2"}, {"y", "cout"}}});
  return view;
}

}  // namespace herc::circuit
