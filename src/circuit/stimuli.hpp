// Input stimuli: waveforms driven onto circuit inputs during simulation.
//
// A stimulus set assigns each input net a piecewise-constant waveform of
// logic levels.  Text form:
//
//   stimuli walk
//   wave a 0:0 10:1 20:0
//   wave b 0:1 15:0
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace herc::circuit {

/// Logic levels used throughout the simulators.
enum class Level : std::uint8_t {
  kLow = 0,
  kHigh = 1,
  kX = 2,  ///< unknown / conflict
};

[[nodiscard]] char to_char(Level l);

/// One (time, level) step of a waveform; times are integer picoseconds.
struct WavePoint {
  std::int64_t time_ps = 0;
  Level level = Level::kLow;
};

/// A named piecewise-constant waveform.
struct Waveform {
  std::string net;
  std::vector<WavePoint> points;  ///< sorted by time, first at t=0

  /// Level at `time_ps` (the last point at or before it; X before the
  /// first point).
  [[nodiscard]] Level at(std::int64_t time_ps) const;
  /// Number of level changes.
  [[nodiscard]] std::size_t transitions() const;
};

/// A stimulus set: one waveform per driven input.
class Stimuli {
 public:
  Stimuli() = default;
  explicit Stimuli(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Adds a waveform; points must be time-sorted (throws `ExecError`
  /// otherwise).
  void add_wave(Waveform wave);
  [[nodiscard]] bool has_wave(std::string_view net) const;
  [[nodiscard]] const Waveform& wave(std::string_view net) const;
  [[nodiscard]] const std::vector<Waveform>& waves() const { return waves_; }

  /// Latest time across all waveforms.
  [[nodiscard]] std::int64_t horizon_ps() const;
  /// All distinct times at which some input changes, sorted.
  [[nodiscard]] std::vector<std::int64_t> event_times() const;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static Stimuli from_text(std::string_view text);

  // ---- generators (deterministic; no global randomness) --------------------

  /// A square clock on `net`: period `period_ps`, `cycles` full cycles.
  [[nodiscard]] static Waveform clock(std::string_view net,
                                      std::int64_t period_ps,
                                      std::size_t cycles);
  /// Exhaustive binary count over `nets` (LSB first), one code per
  /// `step_ps` — drives all 2^n input combinations.
  [[nodiscard]] static Stimuli counter(const std::vector<std::string>& nets,
                                       std::int64_t step_ps);
  /// Pseudo-random levels from `seed` (xorshift), `steps` changes per net.
  [[nodiscard]] static Stimuli random(const std::vector<std::string>& nets,
                                      std::int64_t step_ps, std::size_t steps,
                                      std::uint64_t seed);

 private:
  std::string name_ = "stimuli";
  std::vector<Waveform> waves_;
};

}  // namespace herc::circuit
