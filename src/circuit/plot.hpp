// Waveform plotting: the `Plotter` tool entity of Fig. 1.
//
// Renders a simulation result as an ASCII timing diagram — the
// `PerformancePlot` entity payload.
#pragma once

#include <string>

#include "circuit/sim.hpp"

namespace herc::circuit {

struct PlotOptions {
  /// Characters available for the time axis.
  int width = 72;
  /// Title printed above the diagram; empty uses a default.
  std::string title;
};

/// Renders every waveform of `result` over its full time span, e.g.:
///
///   out  ____/~~~~\____/~~~~
///
/// with `~` = high, `_` = low, `?` = X, `/`/`\` at transitions.
[[nodiscard]] std::string ascii_plot(const SimResult& result,
                                     const PlotOptions& options = {});

}  // namespace herc::circuit
