#include "circuit/netlist.hpp"

#include <algorithm>
#include <charconv>

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::circuit {

using support::ExecError;
using support::ParseError;

const char* to_string(DeviceType t) {
  switch (t) {
    case DeviceType::kNmos: return "nmos";
    case DeviceType::kPmos: return "pmos";
    case DeviceType::kResistor: return "res";
    case DeviceType::kCapacitor: return "cap";
  }
  return "?";
}

std::optional<DeviceType> device_type_from(std::string_view s) {
  if (s == "nmos") return DeviceType::kNmos;
  if (s == "pmos") return DeviceType::kPmos;
  if (s == "res") return DeviceType::kResistor;
  if (s == "cap") return DeviceType::kCapacitor;
  return std::nullopt;
}

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

namespace {
bool is_rail(std::string_view net) { return net == kVdd || net == kGnd; }
}  // namespace

void Netlist::add_net(std::string_view net) {
  if (is_rail(net)) return;
  if (!has_net(net)) nets_.emplace_back(net);
}

void Netlist::add_input(std::string_view net) {
  add_net(net);
  if (std::find(inputs_.begin(), inputs_.end(), net) == inputs_.end()) {
    inputs_.emplace_back(net);
  }
}

void Netlist::add_output(std::string_view net) {
  add_net(net);
  if (std::find(outputs_.begin(), outputs_.end(), net) == outputs_.end()) {
    outputs_.emplace_back(net);
  }
}

bool Netlist::has_net(std::string_view net) const {
  if (is_rail(net)) return true;
  return std::find(nets_.begin(), nets_.end(), net) != nets_.end();
}

void Netlist::add_device(Device device) {
  if (device_index_.contains(device.name)) {
    throw ExecError("netlist '" + name_ + "': duplicate device '" +
                    device.name + "'");
  }
  for (const std::string& t : device.terminals) add_net(t);
  device_index_.emplace(device.name, devices_.size());
  devices_.push_back(std::move(device));
}

void Netlist::add_nmos(std::string_view name, std::string_view gate,
                       std::string_view drain, std::string_view source,
                       std::string_view model, double width) {
  Device d;
  d.name = std::string(name);
  d.type = DeviceType::kNmos;
  d.terminals = {std::string(gate), std::string(drain), std::string(source)};
  d.model = std::string(model);
  d.value = width;
  add_device(std::move(d));
}

void Netlist::add_pmos(std::string_view name, std::string_view gate,
                       std::string_view drain, std::string_view source,
                       std::string_view model, double width) {
  Device d;
  d.name = std::string(name);
  d.type = DeviceType::kPmos;
  d.terminals = {std::string(gate), std::string(drain), std::string(source)};
  d.model = std::string(model);
  d.value = width;
  add_device(std::move(d));
}

void Netlist::add_resistor(std::string_view name, std::string_view a,
                           std::string_view b, double ohms) {
  Device d;
  d.name = std::string(name);
  d.type = DeviceType::kResistor;
  d.terminals = {std::string(a), std::string(b)};
  d.value = ohms;
  add_device(std::move(d));
}

void Netlist::add_capacitor(std::string_view name, std::string_view a,
                            std::string_view b, double pf) {
  Device d;
  d.name = std::string(name);
  d.type = DeviceType::kCapacitor;
  d.terminals = {std::string(a), std::string(b)};
  d.value = pf;
  add_device(std::move(d));
}

void Netlist::remove_device(std::string_view name) {
  const auto it = device_index_.find(std::string(name));
  if (it == device_index_.end()) {
    throw ExecError("netlist '" + name_ + "': no device '" +
                    std::string(name) + "' to remove");
  }
  const std::size_t idx = it->second;
  devices_.erase(devices_.begin() + static_cast<std::ptrdiff_t>(idx));
  device_index_.erase(it);
  for (auto& [dev, i] : device_index_) {
    if (i > idx) --i;
  }
}

bool Netlist::has_device(std::string_view name) const {
  return device_index_.contains(std::string(name));
}

const Device& Netlist::device(std::string_view name) const {
  const auto it = device_index_.find(std::string(name));
  if (it == device_index_.end()) {
    throw ExecError("netlist '" + name_ + "': no device '" +
                    std::string(name) + "'");
  }
  return devices_[it->second];
}

Device& Netlist::device_mut(std::string_view name) {
  return const_cast<Device&>(
      static_cast<const Netlist*>(this)->device(name));
}

std::size_t Netlist::device_count(DeviceType t) const {
  std::size_t count = 0;
  for (const Device& d : devices_) count += (d.type == t) ? 1 : 0;
  return count;
}

std::size_t Netlist::mos_count() const {
  return device_count(DeviceType::kNmos) + device_count(DeviceType::kPmos);
}

double Netlist::net_capacitance(std::string_view net) const {
  double total = 0.0;
  for (const Device& d : devices_) {
    if (d.type != DeviceType::kCapacitor) continue;
    if (d.terminals[0] == net || d.terminals[1] == net) total += d.value;
  }
  return total;
}

void Netlist::validate() const {
  for (const Device& d : devices_) {
    const std::size_t want = d.is_mos() ? 3 : 2;
    if (d.terminals.size() != want) {
      throw ExecError("netlist '" + name_ + "': device '" + d.name +
                      "' has wrong terminal count");
    }
    for (const std::string& t : d.terminals) {
      if (!has_net(t)) {
        throw ExecError("netlist '" + name_ + "': device '" + d.name +
                        "' references unknown net '" + t + "'");
      }
    }
    if (d.is_mos() && d.model.empty()) {
      throw ExecError("netlist '" + name_ + "': MOS device '" + d.name +
                      "' has no model");
    }
    if (d.value <= 0) {
      throw ExecError("netlist '" + name_ + "': device '" + d.name +
                      "' has non-positive value");
    }
  }
  for (const std::string& in : inputs_) {
    if (!has_net(in)) {
      throw ExecError("netlist '" + name_ + "': unknown input net '" + in +
                      "'");
    }
  }
}

void Netlist::instantiate(
    const Netlist& other, std::string_view prefix,
    const std::unordered_map<std::string, std::string>& port_map) {
  const auto map_net = [&](const std::string& net) -> std::string {
    if (is_rail(net)) return net;
    const auto it = port_map.find(net);
    if (it != port_map.end()) return it->second;
    return std::string(prefix) + "." + net;
  };
  for (const std::string& net : other.nets_) add_net(map_net(net));
  for (const Device& d : other.devices_) {
    Device copy = d;
    copy.name = std::string(prefix) + "." + d.name;
    for (std::string& t : copy.terminals) t = map_net(t);
    add_device(std::move(copy));
  }
}

std::string Netlist::to_text() const {
  std::string out = "netlist " + name_ + "\n";
  for (const std::string& n : inputs_) out += "input " + n + "\n";
  for (const std::string& n : outputs_) out += "output " + n + "\n";
  for (const std::string& n : nets_) {
    if (std::find(inputs_.begin(), inputs_.end(), n) != inputs_.end()) {
      continue;
    }
    if (std::find(outputs_.begin(), outputs_.end(), n) != outputs_.end()) {
      continue;
    }
    out += "net " + n + "\n";
  }
  char buf[64];
  for (const Device& d : devices_) {
    out += to_string(d.type);
    out += ' ' + d.name;
    if (d.is_mos()) {
      out += " g=" + d.terminals[0] + " d=" + d.terminals[1] +
             " s=" + d.terminals[2] + " model=" + d.model;
    } else {
      out += " a=" + d.terminals[0] + " b=" + d.terminals[1];
    }
    std::snprintf(buf, sizeof(buf), "%.9g", d.value);
    out += " value=";
    out += buf;
    out += "\n";
  }
  return out;
}

namespace {

std::unordered_map<std::string, std::string> parse_kv(
    const std::vector<std::string>& tokens, std::size_t start,
    int line_number) {
  std::unordered_map<std::string, std::string> kv;
  for (std::size_t i = start; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      throw ParseError("netlist line " + std::to_string(line_number) +
                       ": expected key=value, got '" + tokens[i] + "'");
    }
    kv[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return kv;
}

double parse_value(const std::unordered_map<std::string, std::string>& kv,
                   int line_number) {
  const auto it = kv.find("value");
  if (it == kv.end()) return 1.0;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw ParseError("netlist line " + std::to_string(line_number) +
                     ": bad value '" + it->second + "'");
  }
}

const std::string& require_kv(
    const std::unordered_map<std::string, std::string>& kv,
    const std::string& key, int line_number) {
  const auto it = kv.find(key);
  if (it == kv.end()) {
    throw ParseError("netlist line " + std::to_string(line_number) +
                     ": missing '" + key + "='");
  }
  return it->second;
}

}  // namespace

Netlist Netlist::from_text(std::string_view text) {
  Netlist nl;
  int line_number = 0;
  for (const std::string& raw : support::split(text, '\n')) {
    ++line_number;
    std::string_view body = support::trim(raw);
    const std::size_t hash = body.find('#');
    if (hash != std::string_view::npos) {
      body = support::trim(body.substr(0, hash));
    }
    if (body.empty()) continue;
    const auto tokens = support::split_ws(body);
    const std::string& head = tokens[0];
    if (head == "netlist") {
      if (tokens.size() != 2) {
        throw ParseError("netlist line " + std::to_string(line_number) +
                         ": expected 'netlist <name>'");
      }
      nl.name_ = tokens[1];
    } else if (head == "input" || head == "output" || head == "net") {
      if (tokens.size() != 2) {
        throw ParseError("netlist line " + std::to_string(line_number) +
                         ": expected '" + head + " <net>'");
      }
      if (head == "input") {
        nl.add_input(tokens[1]);
      } else if (head == "output") {
        nl.add_output(tokens[1]);
      } else {
        nl.add_net(tokens[1]);
      }
    } else if (const auto type = device_type_from(head)) {
      if (tokens.size() < 2) {
        throw ParseError("netlist line " + std::to_string(line_number) +
                         ": device needs a name");
      }
      const auto kv = parse_kv(tokens, 2, line_number);
      const double value = parse_value(kv, line_number);
      if (*type == DeviceType::kNmos || *type == DeviceType::kPmos) {
        const std::string& g = require_kv(kv, "g", line_number);
        const std::string& d = require_kv(kv, "d", line_number);
        const std::string& s = require_kv(kv, "s", line_number);
        const auto model_it = kv.find("model");
        const std::string model =
            model_it == kv.end()
                ? (*type == DeviceType::kNmos ? "nch" : "pch")
                : model_it->second;
        if (*type == DeviceType::kNmos) {
          nl.add_nmos(tokens[1], g, d, s, model, value);
        } else {
          nl.add_pmos(tokens[1], g, d, s, model, value);
        }
      } else {
        const std::string& a = require_kv(kv, "a", line_number);
        const std::string& b = require_kv(kv, "b", line_number);
        if (*type == DeviceType::kResistor) {
          nl.add_resistor(tokens[1], a, b, value);
        } else {
          nl.add_capacitor(tokens[1], a, b, value);
        }
      }
    } else {
      throw ParseError("netlist line " + std::to_string(line_number) +
                       ": unknown directive '" + head + "'");
    }
  }
  return nl;
}

}  // namespace herc::circuit
