// Gate-level logic views and synthesis to the transistor view (Figs. 7–8).
//
// A `LogicView` is the designer's gate-level description of a cell; the
// `Synthesizer` tool expands each gate into its static-CMOS subcircuit,
// producing a `SynthesizedNetlist` (a transistor view).  Text form:
//
//   logic full_adder
//   input a b cin
//   output sum cout
//   gate x1 xor2 a=a b=b y=p
//   gate c3 nand2 a=g1 b=g2 y=cout
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "circuit/netlist.hpp"

namespace herc::circuit {

/// Gate kinds the synthesizer knows.
enum class GateKind { kInv, kNand2, kNor2, kAnd2, kOr2, kXor2 };

[[nodiscard]] const char* to_string(GateKind k);
[[nodiscard]] std::optional<GateKind> gate_kind_from(std::string_view s);

struct LogicGate {
  std::string name;
  GateKind kind = GateKind::kInv;
  /// Formal-pin -> net: `a`/`b` inputs (`a` only for inverters), `y` output.
  std::unordered_map<std::string, std::string> pins;
};

class LogicView {
 public:
  LogicView() = default;
  explicit LogicView(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  void add_input(std::string_view net);
  void add_output(std::string_view net);
  void add_gate(LogicGate gate);

  [[nodiscard]] const std::vector<std::string>& inputs() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<std::string>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] const std::vector<LogicGate>& gates() const { return gates_; }

  /// Checks pins are complete and reference consistent nets; throws
  /// `ExecError` on the first problem.
  void validate() const;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static LogicView from_text(std::string_view text);

 private:
  std::string name_ = "logic";
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<LogicGate> gates_;
};

/// The `Synthesizer` tool: expands gates into transistors.
[[nodiscard]] Netlist synthesize(const LogicView& view);

/// The logic view of the full adder (for the Fig. 7/8 examples).
[[nodiscard]] LogicView full_adder_logic();

}  // namespace herc::circuit
