// Performance comparison: regression-checking two simulation results.
//
// Consistency maintenance needs more than "is it stale?" — after retracing
// a flow the designer wants to know whether the behaviour actually
// changed.  The comparator diffs two `Performance` payloads waveform by
// waveform: logic values sampled on the union of their event times, and
// transition times within a tolerance.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/sim.hpp"

namespace herc::circuit {

struct CompareOptions {
  /// Transition-time slack (ps) tolerated between matching edges.
  std::int64_t time_tolerance_ps = 0;
};

/// The `PerformanceDiff` entity payload.
struct CompareReport {
  bool match = false;
  std::vector<std::string> differences;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static CompareReport from_text(std::string_view text);
};

/// Compares `candidate` against `golden`.
[[nodiscard]] CompareReport compare_performance(
    const SimResult& golden, const SimResult& candidate,
    const CompareOptions& options = {});

}  // namespace herc::circuit
