#include "circuit/sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::circuit {

using support::ExecError;
using support::ParseError;

namespace {

/// Drive strengths of the relaxation lattice.
enum Strength : int {
  kCharged = 1,   ///< retained charge (previous value)
  kWeak = 2,      ///< reached through a weak (narrow) channel
  kResistive = 3, ///< reached through a channel or resistor
  kDriven = 4,    ///< rail or input
};

/// MOS devices narrower than this conduct at `kWeak` strength, so ratioed
/// structures (latch feedback inverters) lose against full-strength paths
/// instead of resolving to X.
constexpr double kWeakWidth = 0.5;

struct Element {
  enum Kind { kNmosEl, kPmosEl, kResEl } kind;
  std::size_t gate = 0;  ///< net index (MOS only)
  std::size_t a = 0;
  std::size_t b = 0;
  bool weak = false;
};

double parse_double_kv(const std::string& value, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw ParseError(std::string(what) + ": bad number '" + value + "'");
  }
}

std::int64_t parse_int_kv(const std::string& value, const char* what) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(value, &pos);
    if (pos != value.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw ParseError(std::string(what) + ": bad integer '" + value + "'");
  }
}

}  // namespace

std::string SimOptions::to_text() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "simoptions\nmax_relax_iters=%zu\nrecord_internal=%d\n"
                "gate_load_pf=%.9g\n",
                max_relax_iters, record_internal ? 1 : 0, gate_load_pf);
  return buf;
}

SimOptions SimOptions::from_text(std::string_view text) {
  SimOptions opts;
  for (const std::string& raw : support::split(text, '\n')) {
    const std::string_view body = support::trim(raw);
    if (body.empty() || body == "simoptions" || body[0] == '#') continue;
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      throw ParseError("simoptions: expected key=value, got '" +
                       std::string(body) + "'");
    }
    const std::string key(body.substr(0, eq));
    const std::string value(body.substr(eq + 1));
    if (key == "max_relax_iters") {
      opts.max_relax_iters =
          static_cast<std::size_t>(parse_int_kv(value, "simoptions"));
    } else if (key == "record_internal") {
      opts.record_internal = parse_int_kv(value, "simoptions") != 0;
    } else if (key == "gate_load_pf") {
      opts.gate_load_pf = parse_double_kv(value, "simoptions");
    } else {
      throw ParseError("simoptions: unknown key '" + key + "'");
    }
  }
  return opts;
}

std::string SimStatistics::to_text() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "statistics\ninput_events=%llu\nrelax_iterations=%llu\n"
                "net_updates=%llu\noutput_toggles=%llu\nx_nets=%llu\n",
                static_cast<unsigned long long>(input_events),
                static_cast<unsigned long long>(relax_iterations),
                static_cast<unsigned long long>(net_updates),
                static_cast<unsigned long long>(output_toggles),
                static_cast<unsigned long long>(x_nets));
  return buf;
}

SimStatistics SimStatistics::from_text(std::string_view text) {
  SimStatistics stats;
  for (const std::string& raw : support::split(text, '\n')) {
    const std::string_view body = support::trim(raw);
    if (body.empty() || body == "statistics" || body[0] == '#') continue;
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      throw ParseError("statistics: expected key=value");
    }
    const std::string key(body.substr(0, eq));
    const auto value = static_cast<std::uint64_t>(
        parse_int_kv(std::string(body.substr(eq + 1)), "statistics"));
    if (key == "input_events") {
      stats.input_events = value;
    } else if (key == "relax_iterations") {
      stats.relax_iterations = value;
    } else if (key == "net_updates") {
      stats.net_updates = value;
    } else if (key == "output_toggles") {
      stats.output_toggles = value;
    } else if (key == "x_nets") {
      stats.x_nets = value;
    } else {
      throw ParseError("statistics: unknown key '" + key + "'");
    }
  }
  return stats;
}

const Waveform& SimResult::wave(std::string_view net) const {
  for (const Waveform& w : waves) {
    if (w.net == net) return w;
  }
  throw ExecError("simulation result has no waveform for net '" +
                  std::string(net) + "'");
}

bool SimResult::has_wave(std::string_view net) const {
  for (const Waveform& w : waves) {
    if (w.net == net) return true;
  }
  return false;
}

std::string SimResult::to_text() const {
  std::string out = "performance\n";
  out += "metric max_delay_ps=" + std::to_string(max_delay_ps) + "\n";
  for (const Waveform& w : waves) {
    out += "wave " + w.net;
    for (const WavePoint& p : w.points) {
      out += ' ' + std::to_string(p.time_ps) + ':';
      out += to_char(p.level);
    }
    out += "\n";
  }
  // Embed the statistics so a Performance payload is self-contained.
  for (const std::string& line :
       support::split(stats.to_text(), '\n')) {
    if (support::trim(line).empty() || line == "statistics") continue;
    out += "stat " + line + "\n";
  }
  return out;
}

SimResult SimResult::from_text(std::string_view text) {
  SimResult result;
  std::string stat_block = "statistics\n";
  for (const std::string& raw : support::split(text, '\n')) {
    const std::string_view body = support::trim(raw);
    if (body.empty() || body == "performance" || body[0] == '#') continue;
    const auto tokens = support::split_ws(body);
    if (tokens[0] == "metric") {
      const std::size_t eq = tokens[1].find('=');
      if (eq == std::string::npos || tokens[1].substr(0, eq) != "max_delay_ps") {
        throw ParseError("performance: bad metric line");
      }
      result.max_delay_ps =
          parse_int_kv(tokens[1].substr(eq + 1), "performance");
    } else if (tokens[0] == "stat") {
      stat_block += std::string(body.substr(5)) + "\n";
    } else if (tokens[0] == "wave") {
      // Reuse the stimuli waveform grammar.
      const Stimuli parsed =
          Stimuli::from_text("stimuli tmp\n" + std::string(body) + "\n");
      result.waves.push_back(parsed.waves().front());
    } else {
      throw ParseError("performance: unknown directive '" + tokens[0] + "'");
    }
  }
  result.stats = SimStatistics::from_text(stat_block);
  return result;
}

SimResult simulate(const Netlist& netlist, const DeviceModelLibrary& models,
                   const Stimuli& stimuli, const SimOptions& options) {
  netlist.validate();

  // Net indexing: 0 = VDD, 1 = GND, then declared nets.
  std::unordered_map<std::string, std::size_t> index;
  index.emplace(std::string(kVdd), 0);
  index.emplace(std::string(kGnd), 1);
  std::vector<std::string> net_names{std::string(kVdd), std::string(kGnd)};
  for (const std::string& n : netlist.nets()) {
    if (index.emplace(n, net_names.size()).second) net_names.push_back(n);
  }
  const std::size_t n_nets = net_names.size();

  // Elements, per-net delay data.
  std::vector<Element> elements;
  std::vector<double> net_cap(n_nets, 0.0);
  std::vector<std::vector<std::size_t>> channel_elements(n_nets);
  for (const Device& d : netlist.devices()) {
    if (d.is_mos()) {
      if (!models.has_model(d.model)) {
        throw ExecError("simulate: netlist '" + netlist.name() +
                        "' uses unknown model '" + d.model + "'");
      }
      Element e;
      e.kind = d.type == DeviceType::kNmos ? Element::kNmosEl
                                           : Element::kPmosEl;
      e.gate = index.at(d.terminals[0]);
      e.a = index.at(d.terminals[1]);
      e.b = index.at(d.terminals[2]);
      e.weak = d.value < kWeakWidth;
      channel_elements[e.a].push_back(elements.size());
      channel_elements[e.b].push_back(elements.size());
      // Gate and diffusion load scale with device width, so widening a
      // transistor speeds its own output but loads its driver — the
      // trade-off the optimizers search.
      net_cap[e.gate] += options.gate_load_pf * d.value;
      net_cap[e.a] += options.gate_load_pf * 0.5 * d.value;
      net_cap[e.b] += options.gate_load_pf * 0.5 * d.value;
      elements.push_back(e);
    } else if (d.type == DeviceType::kResistor) {
      Element e;
      e.kind = Element::kResEl;
      e.a = index.at(d.terminals[0]);
      e.b = index.at(d.terminals[1]);
      channel_elements[e.a].push_back(elements.size());
      channel_elements[e.b].push_back(elements.size());
      elements.push_back(e);
    } else {  // capacitor
      net_cap[index.at(d.terminals[0])] += d.value;
      net_cap[index.at(d.terminals[1])] += d.value;
    }
  }
  // Device widths / models for drive-resistance estimation.
  std::vector<double> element_r(elements.size(), 10.0);
  {
    std::size_t ei = 0;
    for (const Device& d : netlist.devices()) {
      if (d.is_mos()) {
        element_r[ei++] = models.model(d.model).resistance_kohm /
                          std::max(d.value, 1e-6);
      } else if (d.type == DeviceType::kResistor) {
        element_r[ei++] = d.value / 1000.0;  // ohms -> kohm
      }
    }
  }

  std::vector<std::size_t> input_index;
  input_index.reserve(netlist.inputs().size());
  for (const std::string& in : netlist.inputs()) {
    input_index.push_back(index.at(in));
  }

  // Which nets get waveforms recorded.
  std::vector<std::size_t> recorded;
  for (const std::string& out : netlist.outputs()) {
    recorded.push_back(index.at(out));
  }
  if (options.record_internal) {
    for (std::size_t i = 2; i < n_nets; ++i) {
      if (std::find(recorded.begin(), recorded.end(), i) == recorded.end()) {
        recorded.push_back(i);
      }
    }
  }

  SimResult result;
  SimStatistics& stats = result.stats;
  std::vector<Level> prev(n_nets, Level::kX);
  prev[0] = Level::kHigh;
  prev[1] = Level::kLow;
  std::vector<std::vector<WavePoint>> recs(recorded.size());

  const std::size_t iter_cap = options.max_relax_iters != 0
                                   ? options.max_relax_iters
                                   : 4 * n_nets + 8;
  std::vector<Level> val(n_nets, Level::kX);
  std::vector<int> str(n_nets, 0);
  std::vector<char> element_on(elements.size(), 0);

  std::vector<std::int64_t> times = stimuli.event_times();
  if (times.empty()) times.push_back(0);

  std::vector<Level> gates(n_nets, Level::kX);
  for (const std::int64_t t : times) {
    ++stats.input_events;
    // Outer rounds: gate levels are frozen per round (taken from the
    // previous round's solution), the channel network is relaxed to a
    // fixpoint, then gates are refreshed.  Re-initializing from the charge
    // state each round keeps X from uncertain conduction from sticking once
    // the gate resolves; with frozen gates the inner relaxation is monotone
    // on the strength lattice, so it always terminates.
    gates = prev;
    for (std::size_t k = 0; k < input_index.size(); ++k) {
      const std::string& name = netlist.inputs()[k];
      gates[input_index[k]] =
          stimuli.has_wave(name) ? stimuli.wave(name).at(t) : Level::kX;
    }
    const std::size_t round_cap = 2 * n_nets + 4;
    for (std::size_t round = 0; round < round_cap; ++round) {
      // Initialize the lattice from rails, inputs and retained charge.
      for (std::size_t i = 0; i < n_nets; ++i) {
        val[i] = prev[i];
        str[i] = kCharged;
      }
      val[0] = Level::kHigh;
      str[0] = kDriven;
      val[1] = Level::kLow;
      str[1] = kDriven;
      for (std::size_t k = 0; k < input_index.size(); ++k) {
        const std::string& name = netlist.inputs()[k];
        val[input_index[k]] =
            stimuli.has_wave(name) ? stimuli.wave(name).at(t) : Level::kX;
        str[input_index[k]] = kDriven;
      }

      // Inner relaxation with frozen gates.
      bool changed = true;
      std::size_t iters = 0;
      while (changed && iters < iter_cap) {
        changed = false;
        ++iters;
        for (std::size_t ei = 0; ei < elements.size(); ++ei) {
          const Element& e = elements[ei];
          bool on = false;
          bool uncertain = false;
          switch (e.kind) {
            case Element::kNmosEl:
              on = gates[e.gate] != Level::kLow;
              uncertain = gates[e.gate] == Level::kX;
              break;
            case Element::kPmosEl:
              on = gates[e.gate] != Level::kHigh;
              uncertain = gates[e.gate] == Level::kX;
              break;
            case Element::kResEl:
              on = true;
              break;
          }
          element_on[ei] = on && !uncertain;
          if (!on) continue;
          const int strength_limit =
              elements[ei].weak ? int{kWeak} : int{kResistive};
          // Uncertain (gate-X) paths carry their *source value*: when it
          // agrees with what already drives the target, nothing is
          // unknown; only differing possibilities resolve to X.  (A naive
          // "uncertain conducts X" poisons cross-coupled structures whose
          // feedback agrees with the forward path.)
          const auto propagate = [&](std::size_t from, std::size_t to) {
            const int cand_str = std::min(str[from], strength_limit);
            const Level cand_val = val[from];
            if (cand_str > str[to]) {
              // If this path might not conduct, the weaker old value could
              // survive: same value -> keep it, different -> unknown.
              const Level next = (uncertain && val[to] != cand_val)
                                     ? Level::kX
                                     : cand_val;
              str[to] = cand_str;
              if (val[to] != next) {
                val[to] = next;
                ++stats.net_updates;
              }
              changed = true;
            } else if (cand_str == str[to] && cand_val != val[to] &&
                       val[to] != Level::kX) {
              val[to] = Level::kX;
              ++stats.net_updates;
              changed = true;
            }
          };
          propagate(e.a, e.b);
          propagate(e.b, e.a);
        }
      }
      stats.relax_iterations += iters;

      if (val == gates) break;  // gate refresh changes nothing: settled
      gates = val;
    }

    // Record transitions with RC delays.
    for (std::size_t r = 0; r < recorded.size(); ++r) {
      const std::size_t net = recorded[r];
      if (val[net] == prev[net] && !recs[r].empty()) continue;
      if (!recs[r].empty() && recs[r].back().level == val[net]) continue;
      // Drive resistance: best ON channel element at the net.
      double r_drive = 10.0;
      bool any_on = false;
      for (const std::size_t ei : channel_elements[net]) {
        if (element_on[ei] != 0) {
          r_drive = any_on ? std::min(r_drive, element_r[ei])
                           : element_r[ei];
          any_on = true;
        }
      }
      const double c_total = net_cap[net];
      const std::int64_t delay =
          recs[r].empty()
              ? 0
              : std::max<std::int64_t>(
                    1, std::llround(r_drive * c_total * 1000.0));
      recs[r].push_back(WavePoint{t + delay, val[net]});
      result.max_delay_ps = std::max(result.max_delay_ps, delay);
    }
    prev = val;
  }

  // Assemble waveforms: sort, drop duplicate times (keep the later write),
  // collapse equal consecutive levels; count output toggles.
  for (std::size_t r = 0; r < recorded.size(); ++r) {
    Waveform w;
    w.net = net_names[recorded[r]];
    std::stable_sort(recs[r].begin(), recs[r].end(),
                     [](const WavePoint& x, const WavePoint& y) {
                       return x.time_ps < y.time_ps;
                     });
    for (const WavePoint& p : recs[r]) {
      if (!w.points.empty() && w.points.back().time_ps == p.time_ps) {
        w.points.back().level = p.level;
        continue;
      }
      if (!w.points.empty() && w.points.back().level == p.level) continue;
      w.points.push_back(p);
    }
    const bool is_output =
        std::find(netlist.outputs().begin(), netlist.outputs().end(),
                  w.net) != netlist.outputs().end();
    if (is_output) stats.output_toggles += w.transitions();
    result.waves.push_back(std::move(w));
  }
  for (std::size_t i = 2; i < n_nets; ++i) {
    stats.x_nets += (prev[i] == Level::kX) ? 1 : 0;
  }
  return result;
}

}  // namespace herc::circuit
