#include "circuit/plot.hpp"

#include <algorithm>

namespace herc::circuit {

std::string ascii_plot(const SimResult& result, const PlotOptions& options) {
  std::string out = options.title.empty() ? std::string("performance plot")
                                          : options.title;
  out += "\n";
  // Common span across all waveforms.
  std::int64_t horizon = 1;
  std::size_t label_width = 4;
  for (const Waveform& w : result.waves) {
    if (!w.points.empty()) {
      horizon = std::max(horizon, w.points.back().time_ps + 1);
    }
    label_width = std::max(label_width, w.net.size());
  }
  const int width = std::max(options.width, 8);
  const double ps_per_col = static_cast<double>(horizon) /
                            static_cast<double>(width);

  for (const Waveform& w : result.waves) {
    std::string line(w.net);
    line.resize(label_width + 2, ' ');
    Level prev = Level::kX;
    for (int col = 0; col < width; ++col) {
      const auto t = static_cast<std::int64_t>(col * ps_per_col);
      const Level l = w.at(t);
      char c;
      if (l == Level::kX) {
        c = '?';
      } else if (prev != l && col != 0 && prev != Level::kX) {
        c = (l == Level::kHigh) ? '/' : '\\';
      } else {
        c = (l == Level::kHigh) ? '~' : '_';
      }
      line += c;
      prev = l;
    }
    out += line + "\n";
  }
  out += "scale: " + std::to_string(static_cast<std::int64_t>(ps_per_col)) +
         " ps/col, horizon " + std::to_string(horizon) + " ps\n";
  out += "max_delay_ps " + std::to_string(result.max_delay_ps) + "\n";
  return out;
}

}  // namespace herc::circuit
