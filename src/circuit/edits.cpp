#include "circuit/edits.hpp"

#include <unordered_map>

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::circuit {

using support::ExecError;
using support::ParseError;

namespace {

struct ScriptLine {
  int number;
  std::vector<std::string> tokens;
};

std::vector<ScriptLine> tokenize(std::string_view script) {
  std::vector<ScriptLine> lines;
  int number = 0;
  for (const std::string& raw : support::split(script, '\n')) {
    ++number;
    std::string_view body = support::trim(raw);
    const std::size_t hash = body.find('#');
    if (hash != std::string_view::npos) {
      body = support::trim(body.substr(0, hash));
    }
    if (body.empty()) continue;
    lines.push_back(ScriptLine{number, support::split_ws(body)});
  }
  return lines;
}

[[noreturn]] void fail(const ScriptLine& line, const std::string& msg) {
  throw ParseError("edit line " + std::to_string(line.number) + ": " + msg);
}

std::unordered_map<std::string, std::string> kv_of(const ScriptLine& line,
                                                   std::size_t start) {
  std::unordered_map<std::string, std::string> kv;
  for (std::size_t i = start; i < line.tokens.size(); ++i) {
    const std::size_t eq = line.tokens[i].find('=');
    if (eq == std::string::npos) {
      fail(line, "expected key=value, got '" + line.tokens[i] + "'");
    }
    kv[line.tokens[i].substr(0, eq)] = line.tokens[i].substr(eq + 1);
  }
  return kv;
}

double to_double(const ScriptLine& line, const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    fail(line, "bad number '" + s + "'");
  }
}

int to_int(const ScriptLine& line, const std::string& s) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    fail(line, "bad integer '" + s + "'");
  }
}

}  // namespace

Netlist apply_netlist_edits(const Netlist& base, std::string_view script) {
  Netlist out = base;
  for (const ScriptLine& line : tokenize(script)) {
    const auto& t = line.tokens;
    if (t[0] == "name") {
      if (t.size() != 2) fail(line, "expected 'name <name>'");
      out.set_name(t[1]);
    } else if (t[0] == "input" || t[0] == "output" || t[0] == "net") {
      if (t.size() != 2) fail(line, "expected '" + t[0] + " <net>'");
      if (t[0] == "input") {
        out.add_input(t[1]);
      } else if (t[0] == "output") {
        out.add_output(t[1]);
      } else {
        out.add_net(t[1]);
      }
    } else if (t[0] == "add") {
      if (t.size() < 3) fail(line, "expected 'add <type> <name> ...'");
      const auto type = device_type_from(t[1]);
      if (!type) fail(line, "unknown device type '" + t[1] + "'");
      const auto kv = kv_of(line, 3);
      const auto get = [&](const char* key) -> const std::string& {
        const auto it = kv.find(key);
        if (it == kv.end()) fail(line, "missing '" + std::string(key) + "='");
        return it->second;
      };
      const double value =
          kv.contains("value") ? to_double(line, kv.at("value")) : 1.0;
      switch (*type) {
        case DeviceType::kNmos:
          out.add_nmos(t[2], get("g"), get("d"), get("s"),
                       kv.contains("model") ? kv.at("model") : "nch", value);
          break;
        case DeviceType::kPmos:
          out.add_pmos(t[2], get("g"), get("d"), get("s"),
                       kv.contains("model") ? kv.at("model") : "pch", value);
          break;
        case DeviceType::kResistor:
          out.add_resistor(t[2], get("a"), get("b"), value);
          break;
        case DeviceType::kCapacitor:
          out.add_capacitor(t[2], get("a"), get("b"), value);
          break;
      }
    } else if (t[0] == "del") {
      if (t.size() != 2) fail(line, "expected 'del <device>'");
      out.remove_device(t[1]);
    } else if (t[0] == "set") {
      if (t.size() < 3) fail(line, "expected 'set <device> key=value...'");
      Device& d = out.device_mut(t[1]);
      for (const auto& [key, value] : kv_of(line, 2)) {
        if (key == "value") {
          d.value = to_double(line, value);
        } else if (key == "model") {
          if (!d.is_mos()) fail(line, "only MOS devices have models");
          d.model = value;
        } else {
          fail(line, "unknown attribute '" + key + "'");
        }
      }
    } else {
      fail(line, "unknown edit command '" + t[0] + "'");
    }
  }
  out.validate();
  return out;
}

Layout apply_layout_edits(const Layout& base, std::string_view script) {
  Layout out = base;
  for (const ScriptLine& line : tokenize(script)) {
    const auto& t = line.tokens;
    if (t[0] == "move") {
      if (t.size() != 4) fail(line, "expected 'move <device> <x> <y>'");
      out.move(t[1], to_int(line, t[2]), to_int(line, t[3]));
    } else if (t[0] == "unplace") {
      if (t.size() != 2) fail(line, "expected 'unplace <device>'");
      out.unplace(t[1]);
    } else if (t[0] == "resize") {
      if (t.size() != 3) fail(line, "expected 'resize <rows> <cols>'");
      out.resize(to_int(line, t[1]), to_int(line, t[2]));
    } else if (t[0] == "place") {
      // Same grammar as the layout file's `place` line.
      if (t.size() < 3) fail(line, "expected 'place <name> <type> ...'");
      const auto type = device_type_from(t[2]);
      if (!type) fail(line, "unknown device type '" + t[2] + "'");
      const auto kv = kv_of(line, 3);
      const auto get = [&](const char* key) -> const std::string& {
        const auto it = kv.find(key);
        if (it == kv.end()) fail(line, "missing '" + std::string(key) + "='");
        return it->second;
      };
      Device d;
      d.name = t[1];
      d.type = *type;
      if (d.is_mos()) {
        d.terminals = {get("g"), get("d"), get("s")};
        d.model = kv.contains("model")
                      ? kv.at("model")
                      : (d.type == DeviceType::kNmos ? "nch" : "pch");
      } else {
        d.terminals = {get("a"), get("b")};
      }
      if (kv.contains("value")) d.value = to_double(line, kv.at("value"));
      out.place(d, to_int(line, get("x")), to_int(line, get("y")));
    } else if (t[0] == "pin") {
      if (t.size() < 2) fail(line, "pin needs a net");
      const auto kv = kv_of(line, 2);
      const auto get = [&](const char* key) -> const std::string& {
        const auto it = kv.find(key);
        if (it == kv.end()) fail(line, "missing '" + std::string(key) + "='");
        return it->second;
      };
      out.add_pin(t[1], to_int(line, get("x")), to_int(line, get("y")),
                  get("dir") == "out");
    } else {
      fail(line, "unknown edit command '" + t[0] + "'");
    }
  }
  return out;
}

DeviceModelLibrary apply_model_edits(const DeviceModelLibrary& base,
                                     std::string_view script) {
  DeviceModelLibrary out = base;
  for (const ScriptLine& line : tokenize(script)) {
    const auto& t = line.tokens;
    if (t[0] == "set" || t[0] == "model") {
      if (t.size() < 2) fail(line, "expected '" + t[0] + " <model> ...'");
      DeviceModel m = out.has_model(t[1]) ? out.model(t[1]) : DeviceModel{};
      m.name = t[1];
      for (const auto& [key, value] : kv_of(line, 2)) {
        if (key == "type") {
          m.is_pmos = (value == "pmos");
        } else if (key == "resistance") {
          m.resistance_kohm = to_double(line, value);
        } else if (key == "threshold") {
          m.threshold_v = to_double(line, value);
        } else {
          fail(line, "unknown attribute '" + key + "'");
        }
      }
      out.set_model(std::move(m));
    } else if (t[0] == "del") {
      if (t.size() != 2) fail(line, "expected 'del <model>'");
      out.remove_model(t[1]);
    } else {
      fail(line, "unknown edit command '" + t[0] + "'");
    }
  }
  return out;
}

}  // namespace herc::circuit
