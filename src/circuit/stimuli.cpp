#include "circuit/stimuli.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::circuit {

using support::ExecError;
using support::ParseError;

char to_char(Level l) {
  switch (l) {
    case Level::kLow: return '0';
    case Level::kHigh: return '1';
    case Level::kX: return 'X';
  }
  return '?';
}

Level Waveform::at(std::int64_t time_ps) const {
  Level current = Level::kX;
  for (const WavePoint& p : points) {
    if (p.time_ps > time_ps) break;
    current = p.level;
  }
  return current;
}

std::size_t Waveform::transitions() const {
  std::size_t count = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    count += (points[i].level != points[i - 1].level) ? 1 : 0;
  }
  return count;
}

Stimuli::Stimuli(std::string name) : name_(std::move(name)) {}

void Stimuli::add_wave(Waveform wave) {
  for (std::size_t i = 1; i < wave.points.size(); ++i) {
    if (wave.points[i].time_ps <= wave.points[i - 1].time_ps) {
      throw ExecError("stimuli '" + name_ + "': waveform for '" + wave.net +
                      "' is not strictly time-sorted");
    }
  }
  for (Waveform& w : waves_) {
    if (w.net == wave.net) {
      w = std::move(wave);
      return;
    }
  }
  waves_.push_back(std::move(wave));
}

bool Stimuli::has_wave(std::string_view net) const {
  for (const Waveform& w : waves_) {
    if (w.net == net) return true;
  }
  return false;
}

const Waveform& Stimuli::wave(std::string_view net) const {
  for (const Waveform& w : waves_) {
    if (w.net == net) return w;
  }
  throw ExecError("stimuli '" + name_ + "': no waveform for net '" +
                  std::string(net) + "'");
}

std::int64_t Stimuli::horizon_ps() const {
  std::int64_t horizon = 0;
  for (const Waveform& w : waves_) {
    if (!w.points.empty()) {
      horizon = std::max(horizon, w.points.back().time_ps);
    }
  }
  return horizon;
}

std::vector<std::int64_t> Stimuli::event_times() const {
  std::vector<std::int64_t> times;
  for (const Waveform& w : waves_) {
    for (const WavePoint& p : w.points) times.push_back(p.time_ps);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

std::string Stimuli::to_text() const {
  std::string out = "stimuli " + name_ + "\n";
  for (const Waveform& w : waves_) {
    out += "wave " + w.net;
    for (const WavePoint& p : w.points) {
      out += ' ' + std::to_string(p.time_ps) + ':';
      out += to_char(p.level);
    }
    out += "\n";
  }
  return out;
}

Stimuli Stimuli::from_text(std::string_view text) {
  Stimuli st;
  int line_number = 0;
  for (const std::string& raw : support::split(text, '\n')) {
    ++line_number;
    const std::string_view body = support::trim(raw);
    if (body.empty() || body[0] == '#') continue;
    const auto tokens = support::split_ws(body);
    if (tokens[0] == "stimuli") {
      if (tokens.size() != 2) {
        throw ParseError("stimuli line " + std::to_string(line_number) +
                         ": expected 'stimuli <name>'");
      }
      st.name_ = tokens[1];
    } else if (tokens[0] == "wave") {
      if (tokens.size() < 3) {
        throw ParseError("stimuli line " + std::to_string(line_number) +
                         ": wave needs a net and points");
      }
      Waveform w;
      w.net = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::size_t colon = tokens[i].find(':');
        if (colon == std::string::npos || colon + 2 != tokens[i].size()) {
          throw ParseError("stimuli line " + std::to_string(line_number) +
                           ": expected time:level, got '" + tokens[i] + "'");
        }
        WavePoint p;
        try {
          p.time_ps = std::stoll(tokens[i].substr(0, colon));
        } catch (const std::exception&) {
          throw ParseError("stimuli line " + std::to_string(line_number) +
                           ": bad time in '" + tokens[i] + "'");
        }
        switch (tokens[i][colon + 1]) {
          case '0': p.level = Level::kLow; break;
          case '1': p.level = Level::kHigh; break;
          case 'X':
          case 'x': p.level = Level::kX; break;
          default:
            throw ParseError("stimuli line " + std::to_string(line_number) +
                             ": bad level in '" + tokens[i] + "'");
        }
        w.points.push_back(p);
      }
      st.add_wave(std::move(w));
    } else {
      throw ParseError("stimuli line " + std::to_string(line_number) +
                       ": unknown directive '" + tokens[0] + "'");
    }
  }
  return st;
}

Waveform Stimuli::clock(std::string_view net, std::int64_t period_ps,
                        std::size_t cycles) {
  Waveform w;
  w.net = std::string(net);
  const std::int64_t half = period_ps / 2;
  for (std::size_t c = 0; c < cycles; ++c) {
    const std::int64_t base = static_cast<std::int64_t>(c) * period_ps;
    w.points.push_back(WavePoint{base, Level::kLow});
    w.points.push_back(WavePoint{base + half, Level::kHigh});
  }
  w.points.push_back(
      WavePoint{static_cast<std::int64_t>(cycles) * period_ps, Level::kLow});
  return w;
}

Stimuli Stimuli::counter(const std::vector<std::string>& nets,
                         std::int64_t step_ps) {
  Stimuli st("counter");
  const std::size_t codes = std::size_t{1} << nets.size();
  for (std::size_t bit = 0; bit < nets.size(); ++bit) {
    Waveform w;
    w.net = nets[bit];
    Level prev = Level::kX;
    for (std::size_t code = 0; code < codes; ++code) {
      const Level level =
          ((code >> bit) & 1U) != 0 ? Level::kHigh : Level::kLow;
      if (level != prev) {
        w.points.push_back(
            WavePoint{static_cast<std::int64_t>(code) * step_ps, level});
        prev = level;
      }
    }
    st.add_wave(std::move(w));
  }
  return st;
}

Stimuli Stimuli::random(const std::vector<std::string>& nets,
                        std::int64_t step_ps, std::size_t steps,
                        std::uint64_t seed) {
  Stimuli st("random");
  std::uint64_t state = seed == 0 ? 0x9e3779b97f4a7c15ULL : seed;
  const auto next_bit = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return (state >> 33) & 1U;
  };
  for (const std::string& net : nets) {
    Waveform w;
    w.net = net;
    Level prev = Level::kX;
    for (std::size_t i = 0; i < steps; ++i) {
      const Level level = next_bit() != 0 ? Level::kHigh : Level::kLow;
      if (level != prev) {
        w.points.push_back(
            WavePoint{static_cast<std::int64_t>(i) * step_ps, level});
        prev = level;
      }
    }
    if (w.points.empty()) {
      w.points.push_back(WavePoint{0, Level::kLow});
    } else if (w.points.front().time_ps != 0) {
      w.points.insert(w.points.begin(),
                      WavePoint{0, w.points.front().level == Level::kHigh
                                       ? Level::kLow
                                       : Level::kHigh});
    }
    st.add_wave(std::move(w));
  }
  return st;
}

}  // namespace herc::circuit
