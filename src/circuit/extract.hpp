// Netlist extraction: the `Extractor` tool entity of Fig. 1.
//
// Recovers a netlist from a layout's labeled pins and adds lumped parasitic
// capacitors sized by net wirelength — so an `ExtractedNetlist` simulates
// slower than the schematic it came from, which is what makes the
// framework's "is this performance up to date with that layout?" questions
// meaningful.
#pragma once

#include "circuit/layout.hpp"
#include "circuit/netlist.hpp"

namespace herc::circuit {

struct ExtractOptions {
  /// Parasitic capacitance (pF) per grid unit of half-perimeter wirelength.
  double cap_per_unit_pf = 0.02;
  /// Prefix for generated parasitic capacitor names.
  const char* parasitic_prefix = "cpar_";
};

/// Extraction by-products (the `ExtractionStatistics` idea of Fig. 2).
struct ExtractStatistics {
  std::size_t devices = 0;
  std::size_t nets = 0;
  std::size_t parasitics = 0;
  double total_parasitic_pf = 0.0;
  double total_hpwl = 0.0;

  [[nodiscard]] std::string to_text() const;
};

/// Extracts a netlist from `layout`.  When `stats` is non-null it receives
/// the extraction summary.
[[nodiscard]] Netlist extract(const Layout& layout,
                              const ExtractOptions& options = {},
                              ExtractStatistics* stats = nullptr);

}  // namespace herc::circuit
