#include "circuit/models.hpp"

#include <cstdio>

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::circuit {

using support::ExecError;
using support::ParseError;

DeviceModelLibrary::DeviceModelLibrary(std::string name)
    : name_(std::move(name)) {}

void DeviceModelLibrary::set_model(DeviceModel model) {
  for (DeviceModel& m : models_) {
    if (m.name == model.name) {
      m = std::move(model);
      return;
    }
  }
  models_.push_back(std::move(model));
}

void DeviceModelLibrary::remove_model(std::string_view name) {
  for (auto it = models_.begin(); it != models_.end(); ++it) {
    if (it->name == name) {
      models_.erase(it);
      return;
    }
  }
  throw ExecError("model library '" + name_ + "': no model '" +
                  std::string(name) + "' to remove");
}

bool DeviceModelLibrary::has_model(std::string_view name) const {
  for (const DeviceModel& m : models_) {
    if (m.name == name) return true;
  }
  return false;
}

const DeviceModel& DeviceModelLibrary::model(std::string_view name) const {
  for (const DeviceModel& m : models_) {
    if (m.name == name) return m;
  }
  throw ExecError("model library '" + name_ + "': no model '" +
                  std::string(name) + "'");
}

std::string DeviceModelLibrary::to_text() const {
  std::string out = "models " + name_ + "\n";
  char buf[128];
  for (const DeviceModel& m : models_) {
    std::snprintf(buf, sizeof(buf),
                  "model %s type=%s resistance=%.9g threshold=%.9g\n",
                  m.name.c_str(), m.is_pmos ? "pmos" : "nmos",
                  m.resistance_kohm, m.threshold_v);
    out += buf;
  }
  return out;
}

DeviceModelLibrary DeviceModelLibrary::from_text(std::string_view text) {
  DeviceModelLibrary lib;
  int line_number = 0;
  for (const std::string& raw : support::split(text, '\n')) {
    ++line_number;
    const std::string_view body = support::trim(raw);
    if (body.empty() || body[0] == '#') continue;
    const auto tokens = support::split_ws(body);
    if (tokens[0] == "models") {
      if (tokens.size() != 2) {
        throw ParseError("models line " + std::to_string(line_number) +
                         ": expected 'models <name>'");
      }
      lib.name_ = tokens[1];
    } else if (tokens[0] == "model") {
      if (tokens.size() < 2) {
        throw ParseError("models line " + std::to_string(line_number) +
                         ": model needs a name");
      }
      DeviceModel m;
      m.name = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          throw ParseError("models line " + std::to_string(line_number) +
                           ": expected key=value");
        }
        const std::string key = tokens[i].substr(0, eq);
        const std::string value = tokens[i].substr(eq + 1);
        try {
          if (key == "type") {
            m.is_pmos = (value == "pmos");
          } else if (key == "resistance") {
            m.resistance_kohm = std::stod(value);
          } else if (key == "threshold") {
            m.threshold_v = std::stod(value);
          } else {
            throw ParseError("models line " + std::to_string(line_number) +
                             ": unknown key '" + key + "'");
          }
        } catch (const std::invalid_argument&) {
          throw ParseError("models line " + std::to_string(line_number) +
                           ": bad number '" + value + "'");
        }
      }
      lib.set_model(std::move(m));
    } else {
      throw ParseError("models line " + std::to_string(line_number) +
                       ": unknown directive '" + tokens[0] + "'");
    }
  }
  return lib;
}

DeviceModelLibrary DeviceModelLibrary::standard() {
  DeviceModelLibrary lib("standard");
  lib.set_model(DeviceModel{"nch", false, 10.0, 0.6});
  lib.set_model(DeviceModel{"pch", true, 20.0, 0.6});
  return lib;
}

}  // namespace herc::circuit
