// The schemas that appear in the paper, as reusable factories.
//
// Tests, benchmarks and examples all speak the vocabulary of Fig. 1
// (`Netlist`, `Extractor`, `Performance`, ...), so the schema definitions
// live here in one place.
#pragma once

#include "schema/task_schema.hpp"

namespace herc::schema {

/// The Fig. 1 task schema: model/circuit/layout editing, placement,
/// extraction, simulation (multi-output: `Performance` + `Statistics`),
/// verification and plotting, with the subtyped `Netlist`/`Layout` and the
/// optional-arc edit loops.
///
/// Entities:
///   tools: ModelEditor, CircuitEditor, LayoutEditor, Placer, Extractor,
///          Simulator, Verifier, Plotter
///   data : DeviceModels, Netlist(abstract){EditedNetlist, ExtractedNetlist},
///          Layout(abstract){PlacedLayout, EditedLayout}, Stimuli, SimOptions,
///          Performance, Statistics, Verification, PerformancePlot
///   composite: Circuit = (DeviceModels, Netlist)
[[nodiscard]] TaskSchema make_fig1_schema();

/// The Fig. 2 subgraph: a tool created during the design.  A
/// `SimCompiler` compiles a `Netlist` into a `CompiledSimulator` — itself a
/// tool entity — which then produces `Performance` and `Statistics` from
/// `Stimuli` (the COSMOS switch-level simulator scenario).
[[nodiscard]] TaskSchema make_fig2_schema();

/// The full Odyssey demo schema: Fig. 1 extended with the Fig. 2 compiled
/// simulator and the Fig. 7 view entities (`LogicView`, `TransistorView`,
/// `PhysicalView` are aliases onto the netlist/layout hierarchy used by the
/// views module).
[[nodiscard]] TaskSchema make_full_schema();

}  // namespace herc::schema
