// The task schema (paper §3.1).
//
// A task schema is a graph over design-entity types whose arcs express how
// entities may be constructed:
//
//   * a *functional* dependency (fd) names the tool that produces the entity
//     (at most one per type);
//   * *data* dependencies (dd) name its inputs (any number; optional dds —
//     the dashed arcs of Fig. 1 — break loops such as
//     `EditedNetlist --dd?--> Netlist`).
//
// The schema serves two purposes: it states the construction rules by which
// tasks (tool-independent design functions) may be built up into flows, and
// it *is* the data schema of the design-history database.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "schema/entity.hpp"

namespace herc::schema {

/// The resolved construction rule of an entity type.
///
/// Subtypes that declare no arcs of their own inherit the nearest ancestor's
/// arcs; `owner` names the type whose declaration was used.
struct ConstructionRule {
  EntityTypeId owner;
  /// The fd target (a tool entity); invalid when the type has no fd
  /// (sources and composite entities).
  EntityTypeId tool;
  /// The dd arcs, in declaration order.
  std::vector<Dependency> inputs;

  [[nodiscard]] bool has_tool() const { return tool.valid(); }
  [[nodiscard]] bool empty() const { return !tool.valid() && inputs.empty(); }
};

/// One place in the schema where an entity type is *used* as an input;
/// drives consumer-direction ("upward") flow expansion.
struct Usage {
  EntityTypeId consumer;  ///< the entity constructed from it
  Dependency dep;         ///< the arc of `consumer` that it satisfies
};

/// A mutable task schema.
class TaskSchema {
 public:
  /// Consistency check run when instances are grouped into a composite
  /// entity (paper: "can these device models be used with this circuit?").
  /// Receives the component payloads in dd order; on failure sets `why`.
  using ComposeCheck =
      std::function<bool(const std::vector<std::string>& parts,
                         std::string& why)>;
  /// Splits a composite payload back into component payloads.
  using Decompose =
      std::function<std::vector<std::string>(const std::string& payload)>;

  explicit TaskSchema(std::string name = "schema");

  // ---- construction -------------------------------------------------------

  EntityTypeId add_data(std::string_view name, bool abstract = false);
  EntityTypeId add_tool(std::string_view name, bool abstract = false);
  /// Composite entities have only data dependencies (paper §3.1).
  EntityTypeId add_composite(std::string_view name);
  /// Adds a subtype; kind is inherited from `parent`.
  EntityTypeId add_subtype(std::string_view name, EntityTypeId parent,
                           bool abstract = false);

  /// Declares `entity`'s fd.  Throws `SchemaError` if `entity` already
  /// declares one, is composite, or `tool` is not a tool-kind entity.
  void set_functional_dependency(EntityTypeId entity, EntityTypeId tool);

  /// Declares a dd arc.  `optional` arcs are the dashed loop-breakers.
  void add_data_dependency(EntityTypeId entity, EntityTypeId input,
                           bool optional = false, std::string_view role = "");

  void set_compose_check(EntityTypeId composite, ComposeCheck check);
  void set_decompose(EntityTypeId composite, Decompose fn);

  // ---- lookup --------------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return entities_.size(); }

  /// Id for `name`, or an invalid id when absent.
  [[nodiscard]] EntityTypeId find(std::string_view name) const;
  /// Id for `name`; throws `SchemaError` when absent.
  [[nodiscard]] EntityTypeId require(std::string_view name) const;

  [[nodiscard]] const EntityType& entity(EntityTypeId id) const;
  [[nodiscard]] const std::string& entity_name(EntityTypeId id) const;
  [[nodiscard]] bool is_tool(EntityTypeId id) const;
  [[nodiscard]] bool is_abstract(EntityTypeId id) const;
  [[nodiscard]] bool is_composite(EntityTypeId id) const;

  /// All entity-type ids in declaration order.
  [[nodiscard]] std::vector<EntityTypeId> all() const;

  // ---- subtype hierarchy ---------------------------------------------------

  /// True when `anc` equals `desc` or is one of its ancestors.
  [[nodiscard]] bool is_ancestor_or_self(EntityTypeId anc,
                                         EntityTypeId desc) const;
  /// Direct subtypes, in declaration order.
  [[nodiscard]] std::vector<EntityTypeId> subtypes(EntityTypeId id) const;
  /// All concrete (non-abstract) descendants, including `id` itself when
  /// concrete.  These are the legal *specializations* of a flow node.
  [[nodiscard]] std::vector<EntityTypeId> concrete_descendants(
      EntityTypeId id) const;

  // ---- construction rules --------------------------------------------------

  /// The effective rule for `id`, resolving inheritance.
  [[nodiscard]] ConstructionRule construction(EntityTypeId id) const;

  /// A source entity has no construction rule anywhere in its ancestry
  /// (stimuli, option sets, off-the-shelf tools): it can only be bound to an
  /// existing instance, never expanded.
  [[nodiscard]] bool is_source(EntityTypeId id) const;

  /// All arcs (across the whole schema) that an entity of type `id` can
  /// satisfy, i.e. arcs whose target is `id` or an ancestor of `id`.
  [[nodiscard]] std::vector<Usage> consumers_of(EntityTypeId id) const;

  [[nodiscard]] const ComposeCheck* compose_check(EntityTypeId id) const;
  [[nodiscard]] const Decompose* decompose(EntityTypeId id) const;

  // ---- analysis ------------------------------------------------------------

  /// True when instances of `id` can, in principle, be produced starting
  /// from source entities only.  A mandatory dependency loop with no escape
  /// (the paper's reason for optional arcs) makes a type non-groundable.
  [[nodiscard]] bool groundable(EntityTypeId id) const;

  /// Full structural validation; throws `SchemaError` with a description of
  /// the first problem found.  Checks: composites have >=1 dd; abstract
  /// types have a concrete descendant; every concrete type is groundable.
  void validate() const;

  /// Graphviz rendering in the style of Fig. 1 (fd solid, dd dashed when
  /// optional, tools as ellipses, data as boxes).
  [[nodiscard]] std::string to_dot() const;

 private:
  EntityTypeId add_entity(std::string_view name, EntityKind kind,
                          bool abstract, bool composite, EntityTypeId parent);
  /// Nearest ancestor-or-self that declares arcs; invalid id when none.
  [[nodiscard]] EntityTypeId rule_owner(EntityTypeId id) const;
  void check_id(EntityTypeId id) const;

  std::string name_;
  std::vector<EntityType> entities_;
  std::unordered_map<std::string, EntityTypeId> by_name_;
  std::unordered_map<EntityTypeId, ComposeCheck, support::IdHash> compose_;
  std::unordered_map<EntityTypeId, Decompose, support::IdHash> decompose_;
};

}  // namespace herc::schema
