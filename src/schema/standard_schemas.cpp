#include "schema/standard_schemas.hpp"

namespace herc::schema {

TaskSchema make_fig1_schema() {
  TaskSchema s("fig1");

  // Tools.
  const EntityTypeId model_editor = s.add_tool("ModelEditor");
  const EntityTypeId circuit_editor = s.add_tool("CircuitEditor");
  const EntityTypeId layout_editor = s.add_tool("LayoutEditor");
  const EntityTypeId placer = s.add_tool("Placer");
  const EntityTypeId extractor = s.add_tool("Extractor");
  const EntityTypeId simulator = s.add_tool("Simulator");
  const EntityTypeId verifier = s.add_tool("Verifier");
  const EntityTypeId plotter = s.add_tool("Plotter");

  // Data.
  const EntityTypeId device_models = s.add_data("DeviceModels");
  const EntityTypeId netlist = s.add_data("Netlist", /*abstract=*/true);
  const EntityTypeId edited_netlist = s.add_subtype("EditedNetlist", netlist);
  const EntityTypeId extracted_netlist =
      s.add_subtype("ExtractedNetlist", netlist);
  const EntityTypeId layout = s.add_data("Layout", /*abstract=*/true);
  const EntityTypeId placed_layout = s.add_subtype("PlacedLayout", layout);
  const EntityTypeId edited_layout = s.add_subtype("EditedLayout", layout);
  const EntityTypeId stimuli = s.add_data("Stimuli");
  const EntityTypeId sim_options = s.add_data("SimOptions");
  const EntityTypeId performance = s.add_data("Performance");
  const EntityTypeId statistics = s.add_data("Statistics");
  const EntityTypeId verification = s.add_data("Verification");
  const EntityTypeId plot = s.add_data("PerformancePlot");
  const EntityTypeId circuit = s.add_composite("Circuit");

  // Device models are edited, optionally starting from an existing set
  // (the edit loop broken by an optional arc, as in Fig. 1).
  s.set_functional_dependency(device_models, model_editor);
  s.add_data_dependency(device_models, device_models, /*optional=*/true,
                        "seed");

  // Two ways to make a netlist: edit one (possibly from scratch) or extract
  // it from a layout — the paper's canonical subtyping example.
  s.set_functional_dependency(edited_netlist, circuit_editor);
  s.add_data_dependency(edited_netlist, netlist, /*optional=*/true, "seed");
  s.set_functional_dependency(extracted_netlist, extractor);
  s.add_data_dependency(extracted_netlist, layout);

  // Two ways to make a layout: automatic placement from a netlist, or
  // manual editing (possibly from an existing layout).
  s.set_functional_dependency(placed_layout, placer);
  s.add_data_dependency(placed_layout, netlist);
  s.set_functional_dependency(edited_layout, layout_editor);
  s.add_data_dependency(edited_layout, layout, /*optional=*/true, "seed");

  // A circuit groups device models with a netlist (composite entity).
  s.add_data_dependency(circuit, device_models);
  s.add_data_dependency(circuit, netlist);

  // Simulation: one task produces both Performance and Statistics
  // (multi-output, Fig. 5).  Options are an entity type of their own —
  // the paper's way of handling tool arguments.
  s.set_functional_dependency(performance, simulator);
  s.add_data_dependency(performance, circuit);
  s.add_data_dependency(performance, stimuli);
  s.add_data_dependency(performance, sim_options, /*optional=*/true,
                        "options");
  s.set_functional_dependency(statistics, simulator);
  s.add_data_dependency(statistics, circuit);
  s.add_data_dependency(statistics, stimuli);
  s.add_data_dependency(statistics, sim_options, /*optional=*/true,
                        "options");

  // Verification compares a layout against a netlist (Fig. 8b).
  s.set_functional_dependency(verification, verifier);
  s.add_data_dependency(verification, layout);
  s.add_data_dependency(verification, netlist);

  // Plotting renders a performance (Fig. 1 right edge).
  s.set_functional_dependency(plot, plotter);
  s.add_data_dependency(plot, performance);

  s.validate();
  return s;
}

TaskSchema make_fig2_schema() {
  TaskSchema s("fig2");
  const EntityTypeId netlist = s.add_data("Netlist");
  const EntityTypeId stimuli = s.add_data("Stimuli");
  const EntityTypeId compiler = s.add_tool("SimCompiler");
  // The compiled simulator is a *tool* entity produced by a task — the
  // COSMOS case: compiled for a given netlist, then executed on different
  // stimuli.
  const EntityTypeId compiled = s.add_tool("CompiledSimulator");
  const EntityTypeId performance = s.add_data("Performance");
  const EntityTypeId statistics = s.add_data("Statistics");

  s.set_functional_dependency(compiled, compiler);
  s.add_data_dependency(compiled, netlist);
  s.set_functional_dependency(performance, compiled);
  s.add_data_dependency(performance, stimuli);
  s.set_functional_dependency(statistics, compiled);
  s.add_data_dependency(statistics, stimuli);

  s.validate();
  return s;
}

TaskSchema make_full_schema() {
  TaskSchema s = make_fig1_schema();
  // Rename: the full schema backs the Odyssey examples.
  // (TaskSchema keeps its name immutable; rebuilding with a different name
  // would lose registered hooks, so the fig1 name is kept as-is.)

  // Fig. 2: the compiled switch-level simulator, grafted onto Fig. 1.
  const EntityTypeId netlist = s.require("Netlist");
  const EntityTypeId stimuli = s.require("Stimuli");
  const EntityTypeId compiler = s.add_tool("SimCompiler");
  const EntityTypeId compiled = s.add_tool("CompiledSimulator");
  const EntityTypeId sw_perf = s.add_data("SwitchPerformance");
  const EntityTypeId sw_stats = s.add_data("SwitchStatistics");
  s.set_functional_dependency(compiled, compiler);
  s.add_data_dependency(compiled, netlist);
  s.set_functional_dependency(sw_perf, compiled);
  s.add_data_dependency(sw_perf, stimuli);
  s.set_functional_dependency(sw_stats, compiled);
  s.add_data_dependency(sw_stats, stimuli);

  // Fig. 7: the logic view and the synthesis path from it to the
  // transistor view (a netlist subtype).
  const EntityTypeId logic_view = s.add_data("LogicView");
  const EntityTypeId synthesizer = s.add_tool("Synthesizer");
  const EntityTypeId synthesized =
      s.add_subtype("SynthesizedNetlist", netlist);
  s.set_functional_dependency(synthesized, synthesizer);
  s.add_data_dependency(synthesized, logic_view);

  // Detail routing: a third way to make a layout, downstream of placement.
  const EntityTypeId router = s.add_tool("Router");
  const EntityTypeId routed = s.add_subtype("RoutedLayout",
                                            s.require("Layout"));
  s.set_functional_dependency(routed, router);
  s.add_data_dependency(routed, s.require("Layout"));

  // Performance regression comparison: two data inputs of the same type,
  // told apart by role — "did the retraced simulation change behaviour?".
  const EntityTypeId comparator = s.add_tool("Comparator");
  const EntityTypeId diff = s.add_data("PerformanceDiff");
  s.set_functional_dependency(diff, comparator);
  s.add_data_dependency(diff, s.require("Performance"), false, "golden");
  s.add_data_dependency(diff, s.require("Performance"), false, "candidate");

  // Statistical optimizers: three tools sharing one encapsulation (paper
  // §3.3), all turning a circuit + performance into an optimized netlist.
  const EntityTypeId opt_netlist = s.add_subtype("OptimizedNetlist", netlist);
  const EntityTypeId optimizer = s.add_tool("Optimizer", /*abstract=*/true);
  s.add_subtype("GradientOptimizer", optimizer);
  s.add_subtype("AnnealingOptimizer", optimizer);
  s.add_subtype("RandomSearchOptimizer", optimizer);
  s.set_functional_dependency(opt_netlist, optimizer);
  s.add_data_dependency(opt_netlist, s.require("Circuit"));
  s.add_data_dependency(opt_netlist, stimuli);
  s.add_data_dependency(opt_netlist, s.require("Performance"), true, "target");

  s.validate();
  return s;
}

}  // namespace herc::schema
