// Design-entity type declarations for the task schema (paper §3.1).
//
// Both *tools* and *data* are design entities; they appear as nodes of the
// task schema and are connected by functional (fd) and data (dd) dependency
// arcs.  Treating tools as entities is what lets a flow pass a tool as an
// argument to another tool, and lets a task *produce* a tool (the COSMOS
// compiled-simulator case of Fig. 2).
#pragma once

#include <string>
#include <vector>

#include "support/ids.hpp"

namespace herc::schema {

struct EntityTypeTag {};
/// Identifies an entity *type* in a task schema (e.g. `Netlist`, `Simulator`).
using EntityTypeId = support::Id<EntityTypeTag>;

/// The two classes of design entity.
enum class EntityKind {
  kData,  ///< design data (netlists, layouts, waveforms, ...)
  kTool,  ///< an executable design function (editor, simulator, ...)
};

/// The two dependency-arc labels of the task schema.
enum class DepKind {
  kFunctional,  ///< "is produced by running this tool" (at most one)
  kData,        ///< "is produced from this input" (any number)
};

/// One outgoing dependency arc of an entity type.
struct Dependency {
  EntityTypeId target;
  DepKind kind = DepKind::kData;
  /// Optional data dependencies (dashed arcs in Fig. 1) break schema loops:
  /// an `EditedNetlist` *may* start from an existing `Netlist`.
  bool optional = false;
  /// Human-readable role of the input (e.g. "stimuli"); may be empty.
  std::string role;
};

/// A node of the task schema.
struct EntityType {
  std::string name;
  EntityKind kind = EntityKind::kData;
  /// Supertype for specialization (Fig. 1: `ExtractedNetlist : Netlist`);
  /// invalid for root types.
  EntityTypeId parent;
  /// Abstract types cannot be instantiated; a flow node of this type must be
  /// *specialized* to a concrete subtype before expansion.
  bool abstract = false;
  /// Composite entities (paper §3.1) have only data dependencies and carry
  /// implicit compose/decompose functions.
  bool composite = false;
  /// Own dependency arcs.  Subtypes that declare no arcs inherit the nearest
  /// ancestor's arcs (each subtype usually declares its own construction
  /// method — that is the point of subtyping).
  std::vector<Dependency> deps;
};

/// Returns "data" or "tool".
[[nodiscard]] inline const char* to_string(EntityKind k) {
  return k == EntityKind::kData ? "data" : "tool";
}

/// Returns "fd" or "dd".
[[nodiscard]] inline const char* to_string(DepKind k) {
  return k == DepKind::kFunctional ? "fd" : "dd";
}

}  // namespace herc::schema
