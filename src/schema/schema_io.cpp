#include "schema/schema_io.hpp"

#include <optional>
#include <vector>

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::schema {

using support::ParseError;
using support::split;
using support::split_ws;
using support::trim;

namespace {

/// Strips a trailing `# comment` (not inside any quoting — the DSL has none).
std::string_view strip_comment(std::string_view line) {
  const std::size_t pos = line.find('#');
  return pos == std::string_view::npos ? line : line.substr(0, pos);
}

struct Line {
  int number;
  std::vector<std::string> tokens;
};

[[noreturn]] void fail(const Line& line, const std::string& msg) {
  throw ParseError("schema line " + std::to_string(line.number) + ": " + msg);
}

}  // namespace

namespace {

/// Applies declaration and dependency lines to `schema` (shared by
/// `parse_schema` and `extend_schema`).
void apply_lines(TaskSchema& schema, const std::vector<const Line*>& decls,
                 const std::vector<const Line*>& deps) {
  for (const Line* lp : decls) {
    const Line& line = *lp;
    const auto& t = line.tokens;
    const std::string& kind = t[0];
    if (t.size() < 2) fail(line, "expected an entity name");
    const std::string& name = t[1];
    if (kind == "composite") {
      if (t.size() != 2) fail(line, "expected: composite <name>");
      schema.add_composite(name);
      continue;
    }
    // `data Name [: Parent] [abstract]`
    std::string parent;
    bool abstract = false;
    std::size_t i = 2;
    if (i < t.size() && t[i] == ":") {
      if (i + 1 >= t.size()) fail(line, "expected a parent name after ':'");
      parent = t[i + 1];
      i += 2;
    }
    if (i < t.size() && t[i] == "abstract") {
      abstract = true;
      ++i;
    }
    if (i != t.size()) fail(line, "trailing tokens after declaration");
    if (!parent.empty()) {
      const EntityTypeId pid = schema.find(parent);
      if (!pid.valid()) {
        fail(line, "unknown parent entity '" + parent + "'");
      }
      const bool parent_is_tool = schema.is_tool(pid);
      if ((kind == "tool") != parent_is_tool) {
        fail(line, "subtype kind must match parent kind");
      }
      schema.add_subtype(name, pid, abstract);
    } else if (kind == "tool") {
      schema.add_tool(name, abstract);
    } else {
      schema.add_data(name, abstract);
    }
  }

  // Pass 2: dependency arcs.
  for (const Line* lp : deps) {
    const Line& line = *lp;
    const auto& t = line.tokens;
    // `fd A -> B` / `dd A -> B [?] [as role]`
    if (t.size() < 4 || t[2] != "->") {
      fail(line, "expected: " + t[0] + " <entity> -> <entity>");
    }
    const EntityTypeId from = schema.find(t[1]);
    if (!from.valid()) fail(line, "unknown entity '" + t[1] + "'");
    const EntityTypeId to = schema.find(t[3]);
    if (!to.valid()) fail(line, "unknown entity '" + t[3] + "'");
    if (t[0] == "fd") {
      if (t.size() != 4) fail(line, "trailing tokens after fd arc");
      schema.set_functional_dependency(from, to);
    } else {
      bool optional = false;
      std::string role;
      std::size_t i = 4;
      if (i < t.size() && t[i] == "?") {
        optional = true;
        ++i;
      }
      if (i < t.size() && t[i] == "as") {
        if (i + 1 >= t.size()) fail(line, "expected a role name after 'as'");
        role = t[i + 1];
        i += 2;
      }
      if (i != t.size()) fail(line, "trailing tokens after dd arc");
      schema.add_data_dependency(from, to, optional, role);
    }
  }
}

/// Splits `text` into classified lines.
struct ClassifiedLines {
  std::vector<Line> storage;
  std::vector<const Line*> decls;
  std::vector<const Line*> deps;
  std::string schema_name;
  bool has_schema_line = false;
};

ClassifiedLines classify(std::string_view text) {
  ClassifiedLines out;
  out.schema_name = "schema";
  {
    int number = 0;
    for (const std::string& raw : split(text, '\n')) {
      ++number;
      const std::string_view body = trim(strip_comment(raw));
      if (body.empty()) continue;
      out.storage.push_back(Line{number, split_ws(body)});
    }
  }
  for (const Line& line : out.storage) {
    const std::string& head = line.tokens.front();
    if (head == "schema") {
      if (line.tokens.size() != 2) fail(line, "expected: schema <name>");
      out.schema_name = line.tokens[1];
      out.has_schema_line = true;
    } else if (head == "data" || head == "tool" || head == "composite") {
      out.decls.push_back(&line);
    } else if (head == "fd" || head == "dd") {
      out.deps.push_back(&line);
    } else {
      fail(line, "unknown directive '" + head + "'");
    }
  }
  return out;
}

}  // namespace

TaskSchema parse_schema(std::string_view text) {
  const ClassifiedLines lines = classify(text);
  TaskSchema schema(lines.schema_name);
  apply_lines(schema, lines.decls, lines.deps);
  return schema;
}

void extend_schema(TaskSchema& schema, std::string_view fragment) {
  const ClassifiedLines lines = classify(fragment);
  if (lines.has_schema_line) {
    throw ParseError(
        "extend_schema: a fragment may not carry a 'schema <name>' line");
  }
  apply_lines(schema, lines.decls, lines.deps);
  schema.validate();
}

std::string write_schema(const TaskSchema& schema) {
  std::string out = "schema " + schema.name() + "\n";
  for (const EntityTypeId id : schema.all()) {
    const EntityType& e = schema.entity(id);
    if (e.composite) {
      out += "composite " + e.name + "\n";
      continue;
    }
    out += (e.kind == EntityKind::kTool ? "tool " : "data ") + e.name;
    if (e.parent.valid()) out += " : " + schema.entity_name(e.parent);
    if (e.abstract) out += " abstract";
    out += "\n";
  }
  for (const EntityTypeId id : schema.all()) {
    const EntityType& e = schema.entity(id);
    for (const Dependency& d : e.deps) {
      if (d.kind == DepKind::kFunctional) {
        out += "fd " + e.name + " -> " + schema.entity_name(d.target) + "\n";
      } else {
        out += "dd " + e.name + " -> " + schema.entity_name(d.target);
        if (d.optional) out += " ?";
        if (!d.role.empty()) out += " as " + d.role;
        out += "\n";
      }
    }
  }
  return out;
}

}  // namespace herc::schema
