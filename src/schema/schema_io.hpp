// Textual schema definition language.
//
// Task schemas are the one methodology artifact a site maintains (the paper:
// "only the task schema need be maintained"), so they get a human-editable
// format:
//
//   # Fig. 1 of the paper
//   schema fig1
//   tool Extractor
//   data Layout abstract
//   data PlacedLayout : Layout
//   composite Circuit
//   fd PlacedLayout -> Placer
//   dd PlacedLayout -> Netlist
//   dd EditedNetlist -> Netlist ?         # '?' marks an optional arc
//   dd Performance -> Stimuli as stimuli  # 'as' names the input role
//
// Declarations may appear in any order; dependency lines may reference
// entities declared later.
#pragma once

#include <string>
#include <string_view>

#include "schema/task_schema.hpp"

namespace herc::schema {

/// Parses a schema document.  Throws `ParseError` on malformed input and
/// `SchemaError` on rule violations (duplicate fd etc.).
[[nodiscard]] TaskSchema parse_schema(std::string_view text);

/// Applies a schema *fragment* to an existing schema — the paper's
/// "incorporation of new tools" without touching existing flows: the
/// fragment may declare new entities (subtyping existing ones) and add
/// dependency arcs whose endpoints may be pre-existing entities.  A
/// `schema <name>` line is rejected here (the schema keeps its identity).
/// The extended schema is re-validated.
void extend_schema(TaskSchema& schema, std::string_view fragment);

/// Writes a schema document that `parse_schema` round-trips.
[[nodiscard]] std::string write_schema(const TaskSchema& schema);

}  // namespace herc::schema
