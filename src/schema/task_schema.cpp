#include "schema/task_schema.hpp"

#include <algorithm>

#include "analyze/schema_lint.hpp"
#include "support/dot.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::schema {

using support::SchemaError;

TaskSchema::TaskSchema(std::string name) : name_(std::move(name)) {}

EntityTypeId TaskSchema::add_entity(std::string_view name, EntityKind kind,
                                    bool abstract, bool composite,
                                    EntityTypeId parent) {
  if (!support::is_identifier(name)) {
    throw SchemaError("'" + std::string(name) +
                      "' is not a legal entity name");
  }
  if (by_name_.contains(std::string(name))) {
    throw SchemaError("entity '" + std::string(name) + "' already declared");
  }
  EntityType e;
  e.name = std::string(name);
  e.kind = kind;
  e.abstract = abstract;
  e.composite = composite;
  e.parent = parent;
  const EntityTypeId id(static_cast<std::uint32_t>(entities_.size()));
  entities_.push_back(std::move(e));
  by_name_.emplace(std::string(name), id);
  return id;
}

EntityTypeId TaskSchema::add_data(std::string_view name, bool abstract) {
  return add_entity(name, EntityKind::kData, abstract, false, EntityTypeId());
}

EntityTypeId TaskSchema::add_tool(std::string_view name, bool abstract) {
  return add_entity(name, EntityKind::kTool, abstract, false, EntityTypeId());
}

EntityTypeId TaskSchema::add_composite(std::string_view name) {
  return add_entity(name, EntityKind::kData, false, true, EntityTypeId());
}

EntityTypeId TaskSchema::add_subtype(std::string_view name,
                                     EntityTypeId parent, bool abstract) {
  check_id(parent);
  const EntityType& p = entities_[parent.index()];
  if (p.composite) {
    throw SchemaError("composite entity '" + p.name +
                      "' cannot be subtyped");
  }
  return add_entity(name, p.kind, abstract, false, parent);
}

void TaskSchema::set_functional_dependency(EntityTypeId entity,
                                           EntityTypeId tool) {
  check_id(entity);
  check_id(tool);
  EntityType& e = entities_[entity.index()];
  if (e.composite) {
    throw SchemaError("composite entity '" + e.name +
                      "' may not have a functional dependency");
  }
  if (entities_[tool.index()].kind != EntityKind::kTool) {
    throw SchemaError("functional dependency of '" + e.name +
                      "' must target a tool entity, got '" +
                      entities_[tool.index()].name + "'");
  }
  for (const Dependency& d : e.deps) {
    if (d.kind == DepKind::kFunctional) {
      throw SchemaError("entity '" + e.name +
                        "' already has a functional dependency");
    }
  }
  e.deps.push_back(Dependency{tool, DepKind::kFunctional, false, ""});
}

void TaskSchema::add_data_dependency(EntityTypeId entity, EntityTypeId input,
                                     bool optional, std::string_view role) {
  check_id(entity);
  check_id(input);
  EntityType& e = entities_[entity.index()];
  for (const Dependency& d : e.deps) {
    if (d.kind == DepKind::kData && d.target == input && d.role == role) {
      throw SchemaError("entity '" + e.name +
                        "' already has this data dependency on '" +
                        entities_[input.index()].name + "'");
    }
  }
  e.deps.push_back(
      Dependency{input, DepKind::kData, optional, std::string(role)});
}

void TaskSchema::set_compose_check(EntityTypeId composite, ComposeCheck fn) {
  check_id(composite);
  if (!entities_[composite.index()].composite) {
    throw SchemaError("compose check requires a composite entity");
  }
  compose_[composite] = std::move(fn);
}

void TaskSchema::set_decompose(EntityTypeId composite, Decompose fn) {
  check_id(composite);
  if (!entities_[composite.index()].composite) {
    throw SchemaError("decompose requires a composite entity");
  }
  decompose_[composite] = std::move(fn);
}

EntityTypeId TaskSchema::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? EntityTypeId() : it->second;
}

EntityTypeId TaskSchema::require(std::string_view name) const {
  const EntityTypeId id = find(name);
  if (!id.valid()) {
    throw SchemaError("no entity named '" + std::string(name) +
                      "' in schema '" + name_ + "'");
  }
  return id;
}

void TaskSchema::check_id(EntityTypeId id) const {
  if (!id.valid() || id.index() >= entities_.size()) {
    throw SchemaError("invalid entity-type id in schema '" + name_ + "'");
  }
}

const EntityType& TaskSchema::entity(EntityTypeId id) const {
  check_id(id);
  return entities_[id.index()];
}

const std::string& TaskSchema::entity_name(EntityTypeId id) const {
  return entity(id).name;
}

bool TaskSchema::is_tool(EntityTypeId id) const {
  return entity(id).kind == EntityKind::kTool;
}

bool TaskSchema::is_abstract(EntityTypeId id) const {
  return entity(id).abstract;
}

bool TaskSchema::is_composite(EntityTypeId id) const {
  return entity(id).composite;
}

std::vector<EntityTypeId> TaskSchema::all() const {
  std::vector<EntityTypeId> out;
  out.reserve(entities_.size());
  for (std::uint32_t i = 0; i < entities_.size(); ++i) {
    out.push_back(EntityTypeId(i));
  }
  return out;
}

bool TaskSchema::is_ancestor_or_self(EntityTypeId anc,
                                     EntityTypeId desc) const {
  check_id(anc);
  check_id(desc);
  for (EntityTypeId cur = desc; cur.valid();
       cur = entities_[cur.index()].parent) {
    if (cur == anc) return true;
  }
  return false;
}

std::vector<EntityTypeId> TaskSchema::subtypes(EntityTypeId id) const {
  check_id(id);
  std::vector<EntityTypeId> out;
  for (std::uint32_t i = 0; i < entities_.size(); ++i) {
    if (entities_[i].parent == id) out.push_back(EntityTypeId(i));
  }
  return out;
}

std::vector<EntityTypeId> TaskSchema::concrete_descendants(
    EntityTypeId id) const {
  check_id(id);
  std::vector<EntityTypeId> out;
  for (std::uint32_t i = 0; i < entities_.size(); ++i) {
    const EntityTypeId cand(i);
    if (!entities_[i].abstract && is_ancestor_or_self(id, cand)) {
      out.push_back(cand);
    }
  }
  return out;
}

EntityTypeId TaskSchema::rule_owner(EntityTypeId id) const {
  for (EntityTypeId cur = id; cur.valid();
       cur = entities_[cur.index()].parent) {
    if (!entities_[cur.index()].deps.empty()) return cur;
  }
  return EntityTypeId();
}

ConstructionRule TaskSchema::construction(EntityTypeId id) const {
  check_id(id);
  ConstructionRule rule;
  rule.owner = rule_owner(id);
  if (!rule.owner.valid()) return rule;
  for (const Dependency& d : entities_[rule.owner.index()].deps) {
    if (d.kind == DepKind::kFunctional) {
      rule.tool = d.target;
    } else {
      rule.inputs.push_back(d);
    }
  }
  return rule;
}

bool TaskSchema::is_source(EntityTypeId id) const {
  return construction(id).empty();
}

std::vector<Usage> TaskSchema::consumers_of(EntityTypeId id) const {
  check_id(id);
  std::vector<Usage> out;
  for (std::uint32_t i = 0; i < entities_.size(); ++i) {
    for (const Dependency& d : entities_[i].deps) {
      if (is_ancestor_or_self(d.target, id)) {
        out.push_back(Usage{EntityTypeId(i), d});
      }
    }
  }
  return out;
}

const TaskSchema::ComposeCheck* TaskSchema::compose_check(
    EntityTypeId id) const {
  const auto it = compose_.find(id);
  return it == compose_.end() ? nullptr : &it->second;
}

const TaskSchema::Decompose* TaskSchema::decompose(EntityTypeId id) const {
  const auto it = decompose_.find(id);
  return it == decompose_.end() ? nullptr : &it->second;
}

bool TaskSchema::groundable(EntityTypeId id) const {
  check_id(id);
  // Least fixed point over all types: a concrete type with no rule (a
  // source) is groundable; a type with a rule is groundable when its tool
  // (if any) and every mandatory input are groundable; an abstract type is
  // groundable when some concrete descendant is.
  std::vector<char> ground(entities_.size(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t i = 0; i < entities_.size(); ++i) {
      if (ground[i]) continue;
      const EntityTypeId t(i);
      bool ok;
      if (entities_[i].abstract) {
        ok = false;
        for (const EntityTypeId d : concrete_descendants(t)) {
          if (ground[d.index()]) {
            ok = true;
            break;
          }
        }
      } else {
        const ConstructionRule rule = construction(t);
        if (rule.empty()) {
          ok = true;  // source: instances are simply provided
        } else {
          ok = !rule.has_tool() || ground[rule.tool.index()];
          for (const Dependency& d : rule.inputs) {
            if (!ok) break;
            if (d.optional) continue;
            ok = ground[d.target.index()];
          }
        }
      }
      if (ok) {
        ground[i] = 1;
        changed = true;
      }
    }
  }
  return ground[id.index()] != 0;
}

void TaskSchema::validate() const {
  // Delegates to the static analyzer so there is exactly one schema
  // checker; the first error-severity diagnostic becomes the exception
  // (warnings are advisory and only surface through `herc lint`).
  const analyze::LintReport report = analyze::lint_schema(*this);
  for (const analyze::Diagnostic& d : report.diagnostics()) {
    if (d.severity != support::Severity::kError) continue;
    std::string msg = d.location + " " + d.message;
    if (!d.fixit.empty()) msg += " (" + d.fixit + ")";
    throw SchemaError(msg);
  }
}

std::string TaskSchema::to_dot() const {
  support::DotBuilder dot(name_);
  dot.graph_attr("rankdir", "BT");
  for (const EntityType& e : entities_) {
    std::vector<std::string> attrs;
    attrs.push_back(e.kind == EntityKind::kTool ? "shape=\"ellipse\""
                                                : "shape=\"box\"");
    if (e.abstract) attrs.push_back("style=\"dotted\"");
    if (e.composite) attrs.push_back("peripheries=\"2\"");
    dot.node(e.name, e.name, attrs);
  }
  for (const EntityType& e : entities_) {
    if (e.parent.valid()) {
      dot.edge(e.name, entities_[e.parent.index()].name, "subtype",
               {"arrowhead=\"empty\"", "color=\"gray\""});
    }
    for (const Dependency& d : e.deps) {
      std::vector<std::string> attrs;
      if (d.optional) attrs.push_back("style=\"dashed\"");
      std::string label = to_string(d.kind);
      if (!d.role.empty()) label += ":" + d.role;
      dot.edge(e.name, entities_[d.target.index()].name, label, attrs);
    }
  }
  return dot.str();
}

}  // namespace herc::schema
