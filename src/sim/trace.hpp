// Seeded multi-tenant trace generation for the swarm harness.
//
// A trace is what a team of designers would type at `herc connect`,
// synthesized deterministically from (profile, clients, rounds, seed):
// per client a sequence of *rounds*, each round a short self-contained
// script mixing the paper's §3.4 approaches — goal-based flow building
// with expand/specialize, plan-based rebuilds, data-/history-side queries
// (browse, history, uses, versions), concurrent version edits, runs with
// fault seeds, and slow runs that hold the server mid-flight for the
// chaos events to land on.
//
// Rounds are the unit of abandonment: when a chaos event tears the
// connection mid-round, the driver drops the rest of the round and
// reconnects at the next one.  Because imports carry round-scoped unique
// names (`sw_c<client>_r<round>_<k>`) and the journal is strictly
// append-ordered, the survivors of any round must form a *prefix* of the
// round's issue order after any crash — the core checkable invariant the
// verifier applies after every heal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace herc::sim {

/// One wire command, plus what the verifier needs to know about it.
struct TraceOp {
  /// Interpreter command line; `{iK}` placeholders stand for the K-th
  /// instance id acked by this round's imports (resolved by the driver).
  std::string line;
  /// Heredoc payload (empty for most commands).
  std::string body;
  /// True when the op is an `import` whose acked name participates in the
  /// durability invariants (version re-imports of the same name do not).
  bool tracked_import = false;
  /// The instance name for any `import` op (set even when untracked, for
  /// the exactly-once instance-count accounting); empty otherwise.
  std::string import_name;
  /// An error result is tolerated (fault-seeded runs, plan rebuilds that
  /// race a restart) — anything else failing is a violation.
  bool may_fail = false;
};

/// Ops between two reconnect points; abandoned wholesale on a torn
/// connection.
struct TraceRound {
  std::vector<TraceOp> ops;
};

struct TraceClient {
  /// `session user` for the connection; also the browse filter the
  /// verifier uses for this client's surviving instances.
  std::string user;
  /// Position in the trace (the `<client>` of the name grammar).
  std::size_t index = 0;
  /// A read-only client: every op is read-classified, so the driver may
  /// pin it to a read replica instead of the leader ("replicas" profile).
  bool reader = false;
  std::vector<TraceRound> rounds;
};

struct Trace {
  std::string profile;
  std::uint64_t seed = 0;
  std::vector<TraceClient> clients;

  [[nodiscard]] std::size_t total_ops() const;
};

/// The named workload mixes (`--profile`): "design" (import-heavy flow
/// building and runs), "queries" (read-mostly history/browser load),
/// "versions" (concurrent version edits and annotations), "faults"
/// (fault-seeded runs exercising failure records), "mixed" (all of the
/// above — the chaos-acceptance profile), "replicas" (one writer in four
/// driving the leader, the rest read-only clients the driver pins to
/// follower replicas), "browse" (Fig. 9 listing load: keyword/date/user
/// filtered and limit-paginated browses plus one-hop chaining — the
/// workload the secondary indexes serve).
[[nodiscard]] const std::vector<std::string>& profile_names();

/// Synthesizes a trace.  Deterministic: the same four arguments always
/// yield the same trace, which is what makes a chaos failure replayable.
/// Throws `support::UsageError`-free `std::invalid_argument` on an
/// unknown profile name.
[[nodiscard]] Trace make_trace(const std::string& profile,
                               std::size_t clients, std::size_t rounds,
                               std::uint64_t seed);

/// A standalone fault-seeded round for the chaos controller's own client:
/// a simulate flow over imports named `<stem>_0..3` — a stem that must NOT
/// match the swarm grammar, keeping chaos data out of the durability
/// checks — run in continue mode under `fault_seed`.
[[nodiscard]] TraceRound make_fault_round(const std::string& stem,
                                          const std::string& flow,
                                          std::uint64_t fault_seed);

/// True when `name` matches the swarm import grammar
/// `sw_c<digits>_r<digits>_<digits>` — the filter separating harness
/// data from everything else in a shared store.
[[nodiscard]] bool is_swarm_name(const std::string& name);

/// The client index encoded in a swarm name (the `<digits>` after `sw_c`);
/// call only when `is_swarm_name(name)`.
[[nodiscard]] std::size_t swarm_name_client(const std::string& name);

}  // namespace herc::sim
