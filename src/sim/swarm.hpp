// `herc swarm`: the workload simulator and chaos harness driver.
//
// Replays a generated trace (`sim::make_trace`) against a live `herc
// serve` instance with one thread per simulated designer, injects chaos
// events mid-load — fault-seeded runs, SIGTERM (graceful wind-down),
// SIGKILL (torn-tail crash) — and after every crash asserts the invariant
// chain end to end:
//
//   1. `fsck` exits 0, or `--repair` brings it to 0;
//   2. recovery + `resume` completes every interrupted run and leaves the
//      store fsck-clean again;
//   3. post-recovery query results are consistent with the trace: per
//      (client, round) the surviving imports form a prefix of the issue
//      order (the journal is append-ordered, so a crash can only cut a
//      tail), nothing survives that was never issued, every import acked
//      before a *graceful* stop survives, and whatever one heal observed
//      every later heal still observes (heals fsync);
//   4. exactly-once: no import name ever has more store instances than
//      its client issued commands — a retried-but-deduplicated command
//      applied once, never twice (the teeth of `--net-chaos`, where
//      clients retry through `server::ResilientClient`).
//
// With `SwarmOptions::net_chaos` all traffic crosses a `sim::FaultProxy`
// and the chaos cycle gains network events — connections cut mid-frame,
// added latency, silent partitions, half-closes — mixed in with the
// process-level kills.
//
// The server under test is reached through `ServerControl`, which has an
// in-process implementation (unit tests, the scale benchmark — SIGKILL
// unsupported) and a child-process one wrapping the real `herc serve`
// binary (the CLI and CI smoke job — full kill support).
//
// With `SwarmOptions::followers > 0` (the "replicas" profile) the driver
// also runs an in-process read-replica fleet over `<dir>_f<i>` stores,
// pins the trace's read-only clients to it, and after every crash heal
// demands read-your-epoch: a sentinel write on the restarted leader must
// become readable through every follower before any reader reconnects.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "server/server.hpp"
#include "server/socket.hpp"

namespace herc::replica {
class JournalShipper;
}  // namespace herc::replica

namespace herc::sim {

/// Start/stop/kill interface over the server under test.  All methods are
/// called from the chaos controller only; clients learn the (possibly
/// changed) endpoint through the driver after each restart.
class ServerControl {
 public:
  virtual ~ServerControl() = default;
  [[nodiscard]] virtual server::Endpoint endpoint() const = 0;
  [[nodiscard]] virtual const std::string& store_dir() const = 0;
  /// Graceful stop (SIGTERM / `Server::stop`): seals and syncs the store.
  virtual void stop() = 0;
  /// Hard kill (SIGKILL): no flush, a torn journal tail is fair game.
  /// Returns false when unsupported (in-process server).
  virtual bool kill() = 0;
  /// Brings a stopped/killed server back up over the same store (the
  /// endpoint may change — ephemeral ports).
  virtual void restart() = 0;
};

/// Serves a durable store from this process.  `kill()` is unsupported —
/// SIGKILL semantics need a process boundary.
class InProcessServer final : public ServerControl {
 public:
  /// With `replicate` a `JournalShipper` is attached so followers can
  /// subscribe (what `herc serve` always does; opt-in here so the plain
  /// benchmark profiles pay nothing for it).
  explicit InProcessServer(std::string store_dir, bool replicate = false);
  ~InProcessServer() override;

  [[nodiscard]] server::Endpoint endpoint() const override {
    return endpoint_;
  }
  [[nodiscard]] const std::string& store_dir() const override { return dir_; }
  void stop() override;
  bool kill() override { return false; }
  void restart() override;

 private:
  std::string dir_;
  bool replicate_ = false;
  std::unique_ptr<core::DesignSession> session_;
  std::unique_ptr<server::Server> server_;
  std::unique_ptr<replica::JournalShipper> shipper_;
  server::Endpoint endpoint_;
  bool running_ = false;
};

/// Runs the real `herc serve` binary as a child process — the chaos
/// harness's production configuration, with true SIGKILL support.
class ChildProcessServer final : public ServerControl {
 public:
  /// `herc_binary` is the front end to exec (`herc serve <store_dir>
  /// --listen 127.0.0.1:0`).  Starts the child immediately; throws
  /// `support::NetError` when it never reports a listening address.
  ChildProcessServer(std::string herc_binary, std::string store_dir);
  ~ChildProcessServer() override;

  [[nodiscard]] server::Endpoint endpoint() const override {
    return endpoint_;
  }
  [[nodiscard]] const std::string& store_dir() const override { return dir_; }
  void stop() override;
  bool kill() override;
  void restart() override;

 private:
  void start();
  void reap(int signal);

  std::string binary_;
  std::string dir_;
  server::Endpoint endpoint_;
  int pid_ = -1;
  int out_fd_ = -1;
  std::thread drain_;
  bool running_ = false;
};

/// One offline heal pass over a store: fsck (repair if corrupt), recover,
/// resume every interrupted run, seal, close, fsck again — plus the
/// surviving swarm-import snapshot the verifier checks queries against.
struct HealReport {
  int fsck_before = 0;
  bool repaired = false;
  std::size_t runs_resumed = 0;
  /// Resumed runs that ended incomplete (failed/skipped tasks remain —
  /// expected for fault-seeded runs, still *closed*).
  std::size_t resumes_incomplete = 0;
  int fsck_after = 2;
  /// Surviving instance names matching the swarm grammar (`is_swarm_name`).
  std::set<std::string> survivors;
  /// Browse rows per surviving name (superseded versions included): the
  /// store-side half of the exactly-once check — a name can never have
  /// more instances than its client issued import commands.
  std::map<std::string, std::size_t> survivor_counts;
  /// Non-empty when the heal itself failed; a swarm violation.
  std::string error;
};

/// Heals the store in `dir`.  Never throws: failures land in `error`.
[[nodiscard]] HealReport heal_store(const std::string& dir);

struct SwarmOptions {
  std::string profile = "mixed";
  std::size_t clients = 64;
  std::size_t rounds = 2;
  std::uint64_t seed = 1;
  /// Chaos events to inject, cycling fault -> sigterm -> sigkill.
  std::size_t chaos = 0;
  /// Permit SIGKILL events (they degrade to SIGTERM when the control
  /// cannot kill, or when this is false).
  bool allow_kill = true;
  /// Read replicas to run alongside the leader (in-process followers over
  /// `<store-dir>_f<i>` replica stores).  Read-only trace clients
  /// (`TraceClient::reader`, the "replicas" profile) are pinned to them;
  /// after every crash heal the driver waits for the followers to catch
  /// up past the new leader epoch and re-checks survivors through them.
  std::size_t followers = 0;
  /// Route all traffic (clients and followers) through a fault-injecting
  /// proxy (`sim::FaultProxy`) and widen the chaos cycle with network
  /// events — net-drop (cut connections mid-frame), net-delay, net-partition
  /// (silent black hole), net-halfclose.  Clients then run over
  /// `server::ResilientClient`, and the verifier additionally asserts
  /// exactly-once: retried commands never apply twice.
  bool net_chaos = false;
  /// Progress narration (nullptr = silent).
  std::ostream* log = nullptr;
};

struct ChaosRecord {
  /// "fault" | "sigterm" | "sigkill" | "net-drop" | "net-delay" |
  /// "net-partition" | "net-halfclose"
  std::string kind;
  std::size_t at_ops = 0;  ///< acked ops when the event fired
  // Crash events only (-1 = not applicable):
  int fsck_before = -1;
  bool repaired = false;
  std::size_t runs_resumed = 0;
  int fsck_after = -1;  ///< must be 0 after every crash heal
  std::size_t survivors = 0;
  /// With followers: ms until every replica served the post-heal epoch
  /// (the read-your-epoch fence check); -1 when no followers ran.
  double catchup_ms = -1.0;
};

struct SwarmReport {
  std::string profile;
  std::size_t clients = 0;
  std::size_t rounds = 0;
  std::uint64_t seed = 0;
  std::size_t ops_acked = 0;
  std::size_t errors_tolerated = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  std::vector<ChaosRecord> events;
  std::size_t runs_resumed_total = 0;
  std::size_t final_survivors = 0;
  /// Read replicas that ran alongside the leader (0 = plain swarm).
  std::size_t followers = 0;
  /// Broken invariants; empty on a clean run.
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::string render_text() const;
  [[nodiscard]] std::string render_json() const;
};

/// Runs the whole harness: generate the trace, warm every client
/// connection, replay under chaos, final graceful stop + heal + verify.
/// The server behind `control` must be running on entry; it is stopped
/// (and healed) on exit.
[[nodiscard]] SwarmReport run_swarm(ServerControl& control,
                                    const SwarmOptions& options);

}  // namespace herc::sim
