#include "sim/netfault.hpp"

#include <cerrno>
#include <chrono>

#include <sys/socket.h>

#include "support/error.hpp"

namespace herc::sim {

using server::Endpoint;
using server::Socket;

namespace {

/// Writes all of `len`, swallowing the peer-vanished errors (the pump
/// just ends).  False = the link is dead.
bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct FaultProxy::Link {
  Socket client;  ///< the accepted (front) side
  Socket server;  ///< the dialed (target) side
  /// Cut once `forwarded_to_server` reaches this; 0 = unlimited.  Atomic:
  /// `set_drop_after` re-arms live links from the control thread.
  std::atomic<std::uint64_t> budget{0};
  std::atomic<std::uint64_t> forwarded_to_server{0};
  std::atomic<bool> dead{false};
  std::atomic<bool> stalled{false};
  std::atomic<bool> half_closed{false};
  std::atomic<int> pumps_done{0};
  std::thread up, down;

  /// Idempotent kill: both directions shut down, pumps unblock.
  void kill() {
    dead.store(true);
    client.shutdown_both();
    server.shutdown_both();
  }
};

FaultProxy::FaultProxy(Endpoint target) : target_(std::move(target)) {
  front_.kind = Endpoint::Kind::kTcp;
  front_.host = "127.0.0.1";
  front_.port = 0;
  listener_ = server::listen_on(front_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

FaultProxy::~FaultProxy() {
  stopping_.store(true);
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  close_all_links();
  std::scoped_lock lock(links_mutex_);
  for (auto& link : links_) {
    if (link->up.joinable()) link->up.join();
    if (link->down.joinable()) link->down.join();
  }
  links_.clear();
}

Endpoint FaultProxy::target() const {
  std::scoped_lock lock(target_mutex_);
  return target_;
}

void FaultProxy::set_target(Endpoint target) {
  std::scoped_lock lock(target_mutex_);
  target_ = std::move(target);
}

void FaultProxy::set_drop_after(std::uint64_t bytes) {
  drop_after_.store(bytes);
  if (bytes == 0) return;
  std::scoped_lock lock(links_mutex_);
  for (auto& link : links_) {
    if (link->pumps_done.load() >= 2 || link->dead.load()) continue;
    link->budget.store(link->forwarded_to_server.load() + bytes);
  }
}

void FaultProxy::half_close_live() {
  std::scoped_lock lock(links_mutex_);
  for (auto& link : links_) {
    if (link->pumps_done.load() >= 2 || link->dead.load()) continue;
    link->half_closed.store(true);
    // FIN toward the client only: its reads see EOF mid-reply while its
    // writes keep flowing — the asymmetric half of a real network death.
    if (link->client.valid()) ::shutdown(link->client.fd(), SHUT_WR);
  }
}

void FaultProxy::heal() {
  delay_ms_.store(0);
  drop_after_.store(0);
  partitioned_.store(false);
  std::scoped_lock lock(links_mutex_);
  for (auto& link : links_) {
    link->budget.store(0);  // disarm any pending drop
    // A stalled or half-closed link is a zombie either way — close it so
    // both endpoints finally observe the failure and can reconnect.
    if (link->stalled.load() || link->half_closed.load()) link->kill();
  }
}

std::size_t FaultProxy::live_connections() const {
  std::scoped_lock lock(links_mutex_);
  std::size_t live = 0;
  for (const auto& link : links_) {
    if (link->pumps_done.load() < 2) ++live;
  }
  return live;
}

void FaultProxy::accept_loop() {
  while (!stopping_.load()) {
    std::string peer;
    Socket client = server::accept_from(listener_, &peer);
    if (!client.valid()) break;  // listener shut down
    reap_finished();
    Socket upstream;
    try {
      upstream = server::connect_to(target(), 2'000);
    } catch (const support::NetError&) {
      continue;  // target down: the client sees an immediate close
    }
    auto link = std::make_unique<Link>();
    link->client = std::move(client);
    link->server = std::move(upstream);
    link->budget.store(drop_after_.load());
    accepted_.fetch_add(1);
    Link* raw = link.get();
    link->up = std::thread([this, raw] { pump(*raw, true); });
    link->down = std::thread([this, raw] { pump(*raw, false); });
    std::scoped_lock lock(links_mutex_);
    links_.push_back(std::move(link));
  }
}

void FaultProxy::pump(Link& link, bool toward_server) {
  const int src = toward_server ? link.client.fd() : link.server.fd();
  const int dst = toward_server ? link.server.fd() : link.client.fd();
  char buf[4096];
  while (!stopping_.load() && !link.dead.load()) {
    const ssize_t n = ::recv(src, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    // Black hole: hold the bytes (and everything after them) until the
    // partition heals or heal() kills the link.
    while (partitioned_.load() && !stopping_.load() && !link.dead.load()) {
      link.stalled.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (stopping_.load() || link.dead.load()) break;
    const int delay = delay_ms_.load();
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    std::size_t to_send = static_cast<std::size_t>(n);
    bool cut = false;
    const std::uint64_t budget = toward_server ? link.budget.load() : 0;
    if (budget > 0) {
      const std::uint64_t done = link.forwarded_to_server.load();
      const std::uint64_t left = budget > done ? budget - done : 0;
      if (static_cast<std::uint64_t>(n) >= left) {
        to_send = static_cast<std::size_t>(left);
        cut = true;  // the drop lands here — possibly mid-frame
      }
    }
    if (toward_server) link.forwarded_to_server.fetch_add(to_send);
    if (!send_all(dst, buf, to_send)) break;
    if (cut) {
      cut_.fetch_add(1);
      break;
    }
  }
  link.kill();
  link.pumps_done.fetch_add(1);
}

void FaultProxy::reap_finished() {
  std::scoped_lock lock(links_mutex_);
  for (auto it = links_.begin(); it != links_.end();) {
    if ((*it)->pumps_done.load() >= 2) {
      if ((*it)->up.joinable()) (*it)->up.join();
      if ((*it)->down.joinable()) (*it)->down.join();
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
}

void FaultProxy::close_all_links() {
  std::scoped_lock lock(links_mutex_);
  for (auto& link : links_) link->kill();
}

}  // namespace herc::sim
