#include "sim/swarm.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "replica/applier.hpp"
#include "replica/shipper.hpp"
#include "schema/schema_io.hpp"
#include "schema/standard_schemas.hpp"
#include "server/client.hpp"
#include "server/resilient.hpp"
#include "sim/netfault.hpp"
#include "sim/trace.hpp"
#include "storage/fsck.hpp"
#include "storage/store.hpp"
#include "support/error.hpp"

namespace herc::sim {

namespace {

using Clock = std::chrono::steady_clock;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// An existing store dictates its schema; a fresh one gets the full
/// standard schema (what `herc serve` defaults to).
schema::TaskSchema store_schema(const std::string& dir) {
  if (storage::DurableHistory::exists(dir)) {
    return schema::parse_schema(slurp(dir + "/schema.herc"));
  }
  return schema::make_full_schema();
}

/// The entities swarm traces import into; the heal snapshot scans them.
constexpr const char* kSourceEntities[] = {"EditedNetlist", "DeviceModels",
                                           "Stimuli", "Simulator"};

}  // namespace

// ---- InProcessServer --------------------------------------------------------

InProcessServer::InProcessServer(std::string store_dir, bool replicate)
    : dir_(std::move(store_dir)), replicate_(replicate) {
  restart();
}

InProcessServer::~InProcessServer() {
  if (running_) stop();
}

void InProcessServer::stop() {
  if (!running_) return;
  server_->stop();
  server_.reset();
  // The shipper's journal tap points into the session's store: detach
  // (destroy) it before the store goes away.
  shipper_.reset();
  session_->close_storage();
  session_.reset();
  running_ = false;
}

void InProcessServer::restart() {
  session_ = std::make_unique<core::DesignSession>(store_schema(dir_));
  (void)session_->open_storage(dir_);
  server_ = std::make_unique<server::Server>(*session_);
  if (replicate_) {
    shipper_ = std::make_unique<replica::JournalShipper>(*session_);
    server_->set_replication_hub(shipper_.get());
  }
  endpoint_ = server_->add_listener(server::Endpoint::parse("127.0.0.1:0"));
  server_->start();
  running_ = true;
}

// ---- ChildProcessServer -----------------------------------------------------

ChildProcessServer::ChildProcessServer(std::string herc_binary,
                                       std::string store_dir)
    : binary_(std::move(herc_binary)), dir_(std::move(store_dir)) {
  start();
}

ChildProcessServer::~ChildProcessServer() {
  if (running_) reap(SIGKILL);
}

void ChildProcessServer::start() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    throw support::NetError("swarm: cannot create the serve pipe");
  }
  pid_ = ::fork();
  if (pid_ < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw support::NetError("swarm: fork failed");
  }
  if (pid_ == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    ::execl(binary_.c_str(), binary_.c_str(), "serve", dir_.c_str(),
            "--listen", "127.0.0.1:0", static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(fds[1]);
  out_fd_ = fds[0];

  // The child's stdout stays pipe-buffered until `serve` flushes right
  // after `Server::start()`, so once the address line is visible the
  // server is accepting.
  std::string banner;
  std::string address;
  char chunk[512];
  while (address.empty() && banner.size() < (1u << 20)) {
    const ssize_t n = ::read(out_fd_, chunk, sizeof chunk);
    if (n <= 0) break;
    banner.append(chunk, static_cast<std::size_t>(n));
    const std::size_t pos = banner.find("listening on ");
    if (pos == std::string::npos) continue;
    const std::size_t eol = banner.find('\n', pos);
    if (eol == std::string::npos) continue;
    address = banner.substr(pos + 13, eol - pos - 13);
  }
  if (address.empty()) {
    reap(SIGKILL);
    throw support::NetError("swarm: '" + binary_ +
                            " serve' never reported a listening address:\n" +
                            banner);
  }
  endpoint_ = server::Endpoint::parse(address);
  drain_ = std::thread([fd = out_fd_] {
    char sink[4096];
    while (::read(fd, sink, sizeof sink) > 0) {
    }
  });
  running_ = true;
}

void ChildProcessServer::reap(int signal) {
  if (pid_ > 0) {
    if (signal != 0) ::kill(pid_, signal);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }
  if (drain_.joinable()) drain_.join();
  if (out_fd_ >= 0) {
    ::close(out_fd_);
    out_fd_ = -1;
  }
  running_ = false;
}

void ChildProcessServer::stop() {
  if (running_) reap(SIGTERM);
}

bool ChildProcessServer::kill() {
  if (running_) reap(SIGKILL);
  return true;
}

void ChildProcessServer::restart() { start(); }

// ---- heal_store -------------------------------------------------------------

HealReport heal_store(const std::string& dir) {
  HealReport report;
  try {
    const storage::FsckReport before = storage::fsck_store(dir);
    report.fsck_before = before.exit_code();
    if (report.fsck_before == 2) {
      const storage::FsckReport fixed =
          storage::fsck_store(dir, {.repair = true});
      report.repaired = true;
      if (fixed.exit_code() == 2) {
        report.error = "fsck --repair left corruption:\n" + fixed.render();
        return report;
      }
    }

    {
      core::DesignSession session(store_schema(dir));
      (void)session.open_storage(dir);

      std::vector<std::uint64_t> open_ids;
      for (const history::RunRecord* run : session.db().open_runs()) {
        open_ids.push_back(run->id);
      }
      for (const std::uint64_t id : open_ids) {
        try {
          const exec::ExecResult result = session.resume_run(id);
          ++report.runs_resumed;
          if (result.tasks_failed > 0 || result.tasks_skipped > 0) {
            ++report.resumes_incomplete;
          }
        } catch (const std::exception& e) {
          if (report.error.empty()) {
            report.error =
                "resume of run " + std::to_string(id) + " failed: " + e.what();
          }
        }
      }
      const std::size_t still_open = session.db().open_runs().size();
      if (still_open != 0 && report.error.empty()) {
        report.error =
            std::to_string(still_open) + " run(s) still open after resume";
      }

      for (const char* entity : kSourceEntities) {
        try {
          for (const core::BrowserRow& row : session.browse(entity).rows()) {
            if (is_swarm_name(row.name)) {
              report.survivors.insert(row.name);
              ++report.survivor_counts[row.name];
            }
          }
        } catch (const std::exception&) {
          // Entity absent from a custom schema: nothing to snapshot there.
        }
      }
      session.close_storage();
    }

    const storage::FsckReport after = storage::fsck_store(dir);
    report.fsck_after = after.exit_code();
    if (report.fsck_after != 0 && report.error.empty()) {
      report.error = "store not clean after heal:\n" + after.render();
    }
  } catch (const std::exception& e) {
    if (report.error.empty()) report.error = e.what();
  }
  return report;
}

// ---- the driver -------------------------------------------------------------

namespace {

/// What the verifier knows about one simulated designer.
struct ClientLog {
  std::mutex mutex;
  /// Tracked import names per round, in issue order (recorded *before*
  /// the send, so it is a superset of what the server executed).
  std::vector<std::vector<std::string>> issued;
  /// Tracked imports whose ack arrived.  After a SIGKILL heal, names the
  /// crash provably lost are reconciled away.
  std::set<std::string> acked;
  /// Issue/ack counts per import *name* (version re-imports issue the
  /// same name again).  A retry inside the resilient client reuses its
  /// token and is NOT a second issue — so `survivor_counts[name] >
  /// issued_counts[name]` can only mean a duplicate apply: the
  /// exactly-once invariant broke.
  std::map<std::string, std::size_t> issued_counts;
  std::map<std::string, std::size_t> acked_counts;
};

struct SwarmShared {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t ready = 0;
  bool go = false;
  /// Atomic so the resilient clients' backoff sleeps can poll it without
  /// the mutex; always *written* under the mutex before notifying.
  std::atomic<bool> abort{false};
  bool server_up = true;
  /// The swarm seed (jitter seeds for the resilient clients derive from
  /// it so runs stay reproducible).
  std::uint64_t seed = 0;
  server::Endpoint endpoint;
  /// Live follower endpoints; reader clients pin to index % size.  Empty
  /// when no followers run (readers then fall back to the leader).
  std::vector<server::Endpoint> follower_endpoints;

  std::atomic<std::size_t> ops_acked{0};
  std::atomic<std::size_t> errors_tolerated{0};
  std::atomic<std::size_t> clients_done{0};
  server::LatencyHistogram latency;

  std::mutex violations_mutex;
  std::vector<std::string> violations;

  void violation(std::string what) {
    const std::lock_guard<std::mutex> lock(violations_mutex);
    if (violations.size() < 100) violations.push_back(std::move(what));
  }
};

/// Expands `{iK}` placeholders from the round's acked import ids.  False
/// when a referenced import never acked (its round is abandoned).
bool substitute(const std::string& line, const std::vector<std::string>& ids,
                std::string& out) {
  out.clear();
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size();) {
    if (line[i] == '{' && i + 2 < line.size() && line[i + 1] == 'i') {
      std::size_t j = i + 2;
      std::size_t k = 0;
      bool digits = false;
      while (j < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[j])) != 0) {
        k = k * 10 + static_cast<std::size_t>(line[j] - '0');
        ++j;
        digits = true;
      }
      if (digits && j < line.size() && line[j] == '}') {
        if (k >= ids.size()) return false;
        out += ids[k];
        i = j + 1;
        continue;
      }
    }
    out += line[i++];
  }
  return true;
}

/// The `iN` id out of an `imported iN (...)` ack; empty for other replies.
std::string parse_import_id(const std::string& output) {
  static constexpr char kPrefix[] = "imported i";
  static constexpr std::size_t kPrefixLen = sizeof kPrefix - 1;
  if (output.rfind(kPrefix, 0) != 0) return {};
  std::string id = "i";
  std::size_t j = kPrefixLen;
  while (j < output.size() &&
         std::isdigit(static_cast<unsigned char>(output[j])) != 0) {
    id += output[j++];
  }
  return id.size() > 1 ? id : std::string{};
}

/// Errors any op may report when a stop lands on it: the queued-command
/// refusal and the cooperative run cancellation.
bool is_shutdown_error(const std::string& error) {
  return error.find("shutting down") != std::string::npos ||
         error.find("shutdown") != std::string::npos ||
         error.find("cancelled") != std::string::npos;
}

void run_client(const TraceClient& tc, ClientLog& log, SwarmShared& shared) {
  // One resilient client per designer for the whole run: the idempotency
  // identity (client id + monotone seq) must persist across rounds and
  // reconnects, or a retry could not be recognized as a duplicate.
  server::ResilientOptions ropts;
  ropts.client_id = "swc" + std::to_string(tc.index);
  ropts.seed = shared.seed * 2654435761ULL + tc.index + 1;
  ropts.connect_timeout_ms = 2'000;
  ropts.read_timeout_ms = 60'000;
  ropts.max_attempts = 6;
  ropts.backoff_base_ms = 25;
  ropts.backoff_cap_ms = 1'000;
  server::Endpoint initial;
  {
    const std::lock_guard<std::mutex> lock(shared.mutex);
    initial = shared.endpoint;
  }
  server::ResilientClient client(initial, ropts);
  client.set_abort(&shared.abort);

  auto ensure_connected = [&]() -> bool {
    if (client.connected()) return true;
    const auto deadline = Clock::now() + std::chrono::seconds(120);
    while (Clock::now() < deadline) {
      server::Endpoint ep;
      std::vector<server::Endpoint> failover;
      {
        std::unique_lock<std::mutex> lock(shared.mutex);
        shared.cv.wait_for(lock, std::chrono::milliseconds(100), [&] {
          return shared.server_up || shared.abort.load();
        });
        if (shared.abort.load()) return false;
        if (!shared.server_up) continue;
        // Read-only clients pin to a follower replica when a fleet runs,
        // with the rest of the fleet (and the leader, last) as read
        // failover; everyone else talks to the leader only — a write must
        // never be answered by anyone without the dedup window.
        if (tc.reader && !shared.follower_endpoints.empty()) {
          ep = shared.follower_endpoints[tc.index %
                                         shared.follower_endpoints.size()];
          failover = shared.follower_endpoints;
          failover.push_back(shared.endpoint);
        } else {
          ep = shared.endpoint;
        }
      }
      client.set_endpoints(ep, std::move(failover));
      try {
        if (client.call("session user " + tc.user).ok()) return true;
        client.close();
      } catch (const support::NetError&) {
        client.abandon_pending();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    shared.violation("client " + tc.user + ": could not (re)connect in 120s");
    return false;
  };

  // Warm the connection before the timed window opens: connect cost and
  // first-command cold paths must not pollute the latency percentiles.
  if (ensure_connected()) {
    try {
      (void)client.call("echo warm");
    } catch (const support::NetError&) {
      client.abandon_pending();
    }
  }
  {
    std::unique_lock<std::mutex> lock(shared.mutex);
    ++shared.ready;
    shared.cv.notify_all();
    shared.cv.wait(lock, [&] { return shared.go; });
  }

  for (std::size_t ri = 0; ri < tc.rounds.size(); ++ri) {
    if (shared.abort.load()) break;
    if (!ensure_connected()) break;
    const TraceRound& round = tc.rounds[ri];
    // The round's workspace (flows, plans) lives on this connection: if
    // the generation moves, a reconnect replaced it and the rest of the
    // round is abandoned, exactly like a torn connection used to be.
    const std::uint64_t round_generation = client.generation();
    std::vector<std::string> ids;
    for (const TraceOp& op : round.ops) {
      std::string line;
      if (!substitute(op.line, ids, line)) break;
      if (!op.import_name.empty()) {
        const std::lock_guard<std::mutex> lock(log.mutex);
        if (op.tracked_import) log.issued[ri].push_back(op.import_name);
        ++log.issued_counts[op.import_name];
      }
      server::CallResult result;
      const auto t0 = Clock::now();
      try {
        result = client.call(line, op.body);
      } catch (const support::NetError&) {
        // Retries exhausted or the outcome became unknown (restart):
        // abandon the round; the next one reconnects.
        client.abandon_pending();
        break;
      }
      shared.latency.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                t0)
              .count()));
      // A moved generation means the call crossed a reconnect: the
      // round's workspace died with the old connection, so the rest of
      // the round is abandoned — and an error from this op (e.g. a flow
      // that no longer exists) is that loss, not a violation.
      const bool reconnected = client.generation() != round_generation;
      if (result.ok()) {
        shared.ops_acked.fetch_add(1, std::memory_order_relaxed);
        const std::string id = parse_import_id(result.output);
        if (!id.empty()) ids.push_back(id);
        if (!op.import_name.empty()) {
          const std::lock_guard<std::mutex> lock(log.mutex);
          if (op.tracked_import) log.acked.insert(op.import_name);
          ++log.acked_counts[op.import_name];
        }
        if (reconnected) break;
      } else if (reconnected) {
        break;  // the workspace died with the old connection
      } else if (is_shutdown_error(result.error)) {
        client.close();
        break;
      } else if (op.may_fail) {
        shared.errors_tolerated.fetch_add(1, std::memory_order_relaxed);
      } else {
        shared.violation("client " + tc.user + " round " + std::to_string(ri) +
                         ": '" + line + "' failed: " + result.error);
        break;
      }
    }
  }
  client.close();
  shared.clients_done.fetch_add(1);
  shared.cv.notify_all();
}

/// The in-memory half of the invariant chain, applied to every heal
/// snapshot.  `graceful` distinguishes SIGTERM (every ack must survive)
/// from SIGKILL (an unflushed tail may be lost — but only as a *suffix*
/// of each round's issue order, and never anything a prior heal saw).
void verify_history(const Trace& trace,
                    std::vector<std::unique_ptr<ClientLog>>& logs,
                    const HealReport& heal, bool graceful,
                    const std::set<std::string>& prev_survivors,
                    SwarmShared& shared) {
  const std::set<std::string>& survivors = heal.survivors;
  for (const std::string& name : prev_survivors) {
    if (survivors.count(name) == 0) {
      shared.violation("import '" + name +
                       "' survived an earlier heal but vanished from this one");
    }
  }
  std::set<std::string> issued_all;
  for (std::size_t ci = 0; ci < trace.clients.size(); ++ci) {
    ClientLog& log = *logs[ci];
    const std::lock_guard<std::mutex> lock(log.mutex);
    for (const std::vector<std::string>& round : log.issued) {
      bool cut = false;
      for (const std::string& name : round) {
        issued_all.insert(name);
        const bool alive = survivors.count(name) != 0;
        if (alive && cut) {
          shared.violation(
              "non-prefix survival: '" + name +
              "' survives although an earlier import of its round was lost");
        }
        if (!alive) cut = true;
      }
    }
    if (graceful) {
      for (const std::string& name : log.acked) {
        if (survivors.count(name) == 0) {
          shared.violation("acked import '" + name +
                           "' missing after a graceful stop");
        }
      }
    } else {
      // A SIGKILL may legitimately cut acked-but-unflushed imports;
      // reconcile so later graceful checks reason from surviving facts.
      for (auto it = log.acked.begin(); it != log.acked.end();) {
        it = survivors.count(*it) == 0 ? log.acked.erase(it) : std::next(it);
      }
    }
    // Exactly-once, per name and per *instance count*: retried commands
    // are deduplicated by token, so the store can never hold more
    // instances of a name than the client issued import commands — a
    // surplus is a duplicate apply, the invariant --net-chaos exists to
    // break.  Gracefully stopped, every acked issue must also be there.
    for (const auto& [name, issued_n] : log.issued_counts) {
      const auto found = heal.survivor_counts.find(name);
      const std::size_t alive_n =
          found == heal.survivor_counts.end() ? 0 : found->second;
      if (alive_n > issued_n) {
        shared.violation("exactly-once broken: '" + name + "' has " +
                         std::to_string(alive_n) + " instance(s) but only " +
                         std::to_string(issued_n) +
                         " import(s) were ever issued");
      }
      const auto acked_it = log.acked_counts.find(name);
      if (acked_it == log.acked_counts.end()) continue;
      if (graceful) {
        if (alive_n < acked_it->second) {
          shared.violation("'" + name + "' acked " +
                           std::to_string(acked_it->second) +
                           " time(s) but only " + std::to_string(alive_n) +
                           " instance(s) survive a graceful stop");
        }
      } else if (acked_it->second > alive_n) {
        acked_it->second = alive_n;  // the crash provably cut the rest
      }
    }
  }
  for (const std::string& name : survivors) {
    if (issued_all.count(name) == 0) {
      shared.violation("survivor '" + name +
                       "' was never issued by any client");
    }
  }
}

/// The wire half: after a restart, browse the store through a fresh
/// connection and check the query results agree with the heal snapshot
/// for a few sampled designers.
void verify_queries(const Trace& trace, const std::set<std::string>& survivors,
                    SwarmShared& shared) {
  server::Endpoint ep;
  {
    const std::lock_guard<std::mutex> lock(shared.mutex);
    ep = shared.endpoint;
  }
  try {
    server::Client probe;
    for (int attempt = 0;; ++attempt) {
      try {
        probe = server::Client::connect(ep);
        break;
      } catch (const support::NetError&) {
        if (attempt >= 20) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    std::size_t checked = 0;
    for (std::size_t ci = 0; ci < trace.clients.size() && checked < 3; ++ci) {
      std::vector<const std::string*> mine;
      for (const std::string& name : survivors) {
        if (swarm_name_client(name) == ci) mine.push_back(&name);
      }
      if (mine.empty()) continue;
      ++checked;
      const std::string& user = trace.clients[ci].user;
      std::string view;
      for (const char* entity : kSourceEntities) {
        const server::CallResult r =
            probe.call(std::string("browse ") + entity + " user=" + user);
        if (!r.ok()) {
          shared.violation("post-restart browse " + std::string(entity) +
                           " failed for " + user + ": " + r.error);
          continue;
        }
        view += r.output;
      }
      for (const std::string* name : mine) {
        if (view.find(*name) == std::string::npos) {
          shared.violation("surviving import '" + *name +
                           "' missing from post-restart browse for " + user);
        }
      }
      // Everything swarm-shaped the browser shows must be a known
      // survivor — queries may not resurrect lost or foreign data.
      for (std::size_t pos = view.find("sw_c"); pos != std::string::npos;
           pos = view.find("sw_c", pos + 1)) {
        std::size_t end = pos;
        while (end < view.size() &&
               (std::isalnum(static_cast<unsigned char>(view[end])) != 0 ||
                view[end] == '_')) {
          ++end;
        }
        const std::string token = view.substr(pos, end - pos);
        if (is_swarm_name(token) && swarm_name_client(token) == ci &&
            survivors.count(token) == 0) {
          shared.violation("post-restart browse shows '" + token +
                           "' which no heal observed");
        }
      }
    }
    probe.close();
  } catch (const std::exception& e) {
    shared.violation(std::string("post-restart query verification failed: ") +
                     e.what());
  }
}

/// A "fault" chaos event: a dedicated chaos client runs a fault-seeded
/// flow mid-load and asserts the server absorbs it — the run's failure is
/// tolerated, the failure records are queryable, the server stays
/// responsive.  No stop, no heal: the store stays live.
void fire_fault_event(std::size_t index, std::uint64_t fault_seed,
                      SwarmShared& shared) {
  server::Endpoint ep;
  {
    const std::lock_guard<std::mutex> lock(shared.mutex);
    ep = shared.endpoint;
  }
  const std::string stem = "cz" + std::to_string(index);
  const TraceRound round =
      make_fault_round(stem, "fcz" + std::to_string(index), fault_seed | 1);
  try {
    server::Client chaos = server::Client::connect(ep);
    (void)chaos.call("session user chaos");
    std::vector<std::string> ids;
    for (const TraceOp& op : round.ops) {
      std::string line;
      if (!substitute(op.line, ids, line)) break;
      const server::CallResult r = chaos.call(line, op.body);
      if (r.ok()) {
        const std::string id = parse_import_id(r.output);
        if (!id.empty()) ids.push_back(id);
      } else if (!op.may_fail && !is_shutdown_error(r.error)) {
        shared.violation("chaos fault client: '" + line +
                         "' failed: " + r.error);
      }
    }
    if (!chaos.call("echo alive").ok()) {
      shared.violation("server unresponsive after a fault-seeded run");
    }
    chaos.close();
  } catch (const std::exception& e) {
    shared.violation(std::string("chaos fault event failed: ") + e.what());
  }
}

// ---- the follower fleet (replicas profile) ----------------------------------

/// The in-process read-replica fleet: each follower is `herc serve
/// --replicate-from` in miniature — a `ReplicaApplier` over the store
/// `<leader-dir>_f<i>` feeding a read-only `Server`.  Follower stores
/// persist across fleet restarts, so every post-chaos `start` exercises
/// the real local-recovery + resync path, including the epoch fence when
/// a heal checkpointed the leader.
class FollowerFleet {
 public:
  FollowerFleet(std::string leader_dir, std::size_t count)
      : base_(std::move(leader_dir)), count_(count) {}
  ~FollowerFleet() { stop(); }

  /// Starts every follower against `leader`.  A follower that cannot
  /// bootstrap is dropped with a violation; the fleet runs with whoever
  /// made it up.
  void start(const server::Endpoint& leader, SwarmShared& shared) {
    stop();
    for (std::size_t i = 0; i < count_; ++i) {
      auto f = std::make_unique<Follower>();
      f->dir = base_ + "_f" + std::to_string(i);
      try {
        f->applier =
            std::make_unique<replica::ReplicaApplier>(leader, f->dir);
        if (!f->applier->bootstrap(/*attempts=*/50)) {
          shared.violation("follower " + std::to_string(i) +
                           ": bootstrap failed: " +
                           f->applier->last_error());
          continue;
        }
        f->session =
            std::make_unique<core::DesignSession>(f->applier->schema());
        f->session->attach_replica(&f->applier->db());
        server::ServeOptions serve_options;
        serve_options.read_only = true;
        f->server =
            std::make_unique<server::Server>(*f->session, serve_options);
        replica::ReplicaApplier& applier = *f->applier;
        f->server->set_position_source([&applier] {
          const replica::StreamPosition pos = applier.position();
          return server::JournalPosition{pos.epoch, pos.seq,
                                         applier.journal_bytes()};
        });
        server::Server& server = *f->server;
        f->applier->set_gate([&server](const std::function<void()>& fn) {
          server.with_exclusive_session(fn);
        });
        f->endpoint =
            f->server->add_listener(server::Endpoint::parse("127.0.0.1:0"));
        f->server->start();
        f->applier->start();
        fleet_.push_back(std::move(f));
      } catch (const std::exception& e) {
        shared.violation("follower " + std::to_string(i) +
                         ": start failed: " + e.what());
      }
    }
  }

  /// Graceful wind-down (stream thread first, then the server), leaving
  /// the replica stores on disk for fsck and the next start.
  void stop() {
    for (std::unique_ptr<Follower>& f : fleet_) {
      if (f->applier != nullptr) f->applier->stop();
      if (f->server != nullptr) f->server->stop();
    }
    fleet_.clear();
  }

  [[nodiscard]] std::vector<server::Endpoint> endpoints() const {
    std::vector<server::Endpoint> eps;
    for (const std::unique_ptr<Follower>& f : fleet_) {
      eps.push_back(f->endpoint);
    }
    return eps;
  }

  [[nodiscard]] std::size_t size() const { return fleet_.size(); }

  /// Offline fsck of every follower store (call with the fleet stopped):
  /// a replica store must audit clean after any stop, `when` names the
  /// moment for the violation message.
  void fsck_stores(SwarmShared& shared, const std::string& when) const {
    for (std::size_t i = 0; i < count_; ++i) {
      const std::string dir = base_ + "_f" + std::to_string(i);
      if (::access(dir.c_str(), F_OK) != 0) continue;
      try {
        const storage::FsckReport report = storage::fsck_store(dir);
        if (report.exit_code() != 0) {
          shared.violation("follower store '" + dir + "' fsck exit " +
                           std::to_string(report.exit_code()) + " " + when +
                           ":\n" + report.render());
        }
      } catch (const std::exception& e) {
        shared.violation("follower store '" + dir + "' fsck failed " + when +
                         ": " + e.what());
      }
    }
  }

  /// The read-your-epoch check: imports a sentinel on the leader, then
  /// requires every follower's read path to serve it.  Proves the
  /// current leader epoch's frames cross the fence to every replica —
  /// after a heal that checkpointed, that is exactly "reads reflect the
  /// new epoch".  Returns elapsed ms, -1 on failure (violations filed).
  double await_read_your_epoch(const server::Endpoint& leader,
                               std::size_t event_index, SwarmShared& shared,
                               const std::set<std::string>& survivors) {
    const auto t0 = Clock::now();
    const std::string sentinel = "rye_" + std::to_string(event_index);
    try {
      server::Client writer = server::Client::connect(leader);
      (void)writer.call("session user chaos");
      const server::CallResult r = writer.call(
          "import Stimuli " + sentinel, "stimuli sw\nwave in 0:0 10:1 20:0\n");
      if (!r.ok()) {
        shared.violation("read-your-epoch: sentinel import '" + sentinel +
                         "' failed: " + r.error);
        writer.close();
        return -1.0;
      }
      writer.close();
    } catch (const std::exception& e) {
      shared.violation(
          std::string("read-your-epoch: cannot reach the leader: ") +
          e.what());
      return -1.0;
    }

    bool all_caught_up = true;
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
      Follower& f = *fleet_[i];
      const auto deadline = Clock::now() + std::chrono::seconds(30);
      bool seen = false;
      std::string view;
      while (!seen && Clock::now() < deadline) {
        try {
          server::Client probe = server::Client::connect(f.endpoint);
          const server::CallResult r = probe.call("browse Stimuli");
          probe.close();
          if (r.ok()) {
            view = r.output;
            seen = view.find(sentinel) != std::string::npos;
          }
        } catch (const support::NetError&) {
        }
        if (!seen) std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (!seen) {
        const replica::StreamPosition pos = f.applier->position();
        const std::string stream_error = f.applier->last_error();
        // The leader's own follower table places the stall: a follower
        // missing there never (re)subscribed; one present with lag shows
        // a shipped frame that vanished in transit.
        std::string leader_view = "unreachable";
        try {
          server::Client peek = server::Client::connect(leader);
          const server::CallResult r = peek.call("replicas");
          if (r.ok()) leader_view = r.output;
          peek.close();
        } catch (const std::exception&) {
        }
        shared.violation(
            "follower " + std::to_string(i) + " never served sentinel '" +
            sentinel + "' within 30s (position " + std::to_string(pos.epoch) +
            ":" + std::to_string(pos.seq) + ", stream " +
            f.applier->stream_state() +
            (stream_error.empty() ? std::string("")
                                  : "; last stream error: " + stream_error) +
            "; leader view: " + leader_view + ")");
        all_caught_up = false;
        continue;
      }
      // Caught up: the survivors the heal certified must be readable
      // through this replica too (sampled, same cap as verify_queries).
      std::size_t checked = 0;
      for (const std::string& name : survivors) {
        if (checked >= 5) break;
        ++checked;
        try {
          server::Client probe = server::Client::connect(f.endpoint);
          bool found = false;
          for (const char* entity : kSourceEntities) {
            const server::CallResult r =
                probe.call(std::string("browse ") + entity);
            if (r.ok() && r.output.find(name) != std::string::npos) {
              found = true;
              break;
            }
          }
          probe.close();
          if (!found) {
            shared.violation("surviving import '" + name +
                             "' missing from follower " + std::to_string(i) +
                             " after catch-up");
          }
        } catch (const std::exception& e) {
          shared.violation("follower " + std::to_string(i) +
                           " survivor check failed: " + e.what());
          break;
        }
      }
    }
    if (!all_caught_up) return -1.0;
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  }

 private:
  struct Follower {
    std::string dir;
    std::unique_ptr<replica::ReplicaApplier> applier;
    std::unique_ptr<core::DesignSession> session;
    std::unique_ptr<server::Server> server;
    server::Endpoint endpoint;
  };

  std::string base_;
  std::size_t count_;
  std::vector<std::unique_ptr<Follower>> fleet_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---- SwarmReport ------------------------------------------------------------

bool SwarmReport::ok() const {
  if (!violations.empty()) return false;
  for (const ChaosRecord& event : events) {
    // Only crash events heal the store; fault and net-* events leave the
    // server running, so their fsck fields stay at the -1 sentinel.
    if (event.kind == "fault" || event.kind.rfind("net-", 0) == 0) continue;
    if (event.fsck_after != 0) return false;
  }
  return true;
}

std::string SwarmReport::render_text() const {
  std::ostringstream out;
  out << "swarm: profile=" << profile << " clients=" << clients
      << " rounds=" << rounds << " seed=" << seed << "\n";
  out << "  ops acked " << ops_acked << " in " << static_cast<long>(wall_ms)
      << "ms (" << static_cast<long>(qps) << " qps), " << errors_tolerated
      << " tolerated error(s)\n";
  out << "  latency p50 " << p50_us << "us p95 " << p95_us << "us p99 "
      << p99_us << "us\n";
  out << "  chaos events " << events.size() << ", runs resumed "
      << runs_resumed_total << ", final survivors " << final_survivors << "\n";
  if (followers > 0) out << "  followers " << followers << "\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ChaosRecord& e = events[i];
    out << "  event " << (i + 1) << ": " << e.kind << " at " << e.at_ops
        << " ops";
    if (e.kind != "fault" && e.kind.rfind("net-", 0) != 0) {
      out << " (fsck " << e.fsck_before << (e.repaired ? " repaired" : "")
          << " -> heal -> " << e.fsck_after << ", " << e.runs_resumed
          << " resumed, " << e.survivors << " survivors";
      if (e.catchup_ms >= 0.0) {
        out << ", replicas caught up in " << static_cast<long>(e.catchup_ms)
            << "ms";
      }
      out << ")";
    }
    out << "\n";
  }
  if (violations.empty()) {
    out << "  invariants: OK\n";
  } else {
    out << "  VIOLATIONS (" << violations.size() << "):\n";
    for (const std::string& v : violations) out << "    - " << v << "\n";
  }
  return out.str();
}

std::string SwarmReport::render_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"profile\": \"" << json_escape(profile) << "\",\n";
  out << "  \"clients\": " << clients << ",\n";
  out << "  \"rounds\": " << rounds << ",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"ops_acked\": " << ops_acked << ",\n";
  out << "  \"errors_tolerated\": " << errors_tolerated << ",\n";
  out << "  \"wall_ms\": " << wall_ms << ",\n";
  out << "  \"qps\": " << qps << ",\n";
  out << "  \"p50_us\": " << p50_us << ",\n";
  out << "  \"p95_us\": " << p95_us << ",\n";
  out << "  \"p99_us\": " << p99_us << ",\n";
  out << "  \"runs_resumed\": " << runs_resumed_total << ",\n";
  out << "  \"final_survivors\": " << final_survivors << ",\n";
  out << "  \"followers\": " << followers << ",\n";
  out << "  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ChaosRecord& e = events[i];
    out << (i == 0 ? "" : ",") << "\n    {\"kind\": \"" << e.kind
        << "\", \"at_ops\": " << e.at_ops
        << ", \"fsck_before\": " << e.fsck_before << ", \"repaired\": "
        << (e.repaired ? "true" : "false")
        << ", \"runs_resumed\": " << e.runs_resumed
        << ", \"fsck_after\": " << e.fsck_after
        << ", \"survivors\": " << e.survivors
        << ", \"catchup_ms\": " << e.catchup_ms << "}";
  }
  out << (events.empty() ? "" : "\n  ") << "],\n";
  out << "  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n    \"" << json_escape(violations[i])
        << "\"";
  }
  out << (violations.empty() ? "" : "\n  ") << "],\n";
  out << "  \"ok\": " << (ok() ? "true" : "false") << "\n";
  out << "}\n";
  return out.str();
}

// ---- run_swarm --------------------------------------------------------------

SwarmReport run_swarm(ServerControl& control, const SwarmOptions& options) {
  SwarmReport report;
  report.profile = options.profile;
  report.clients = options.clients;
  report.rounds = options.rounds;
  report.seed = options.seed;

  const Trace trace =
      make_trace(options.profile, options.clients, options.rounds,
                 options.seed);
  const std::size_t total = trace.total_ops();

  SwarmShared shared;
  shared.seed = options.seed;

  // Net chaos: every connection — clients AND follower appliers — goes
  // through the fault proxy, so a network event hits the whole topology.
  // The proxy's front endpoint is stable across server restarts; only
  // its target moves.
  std::unique_ptr<FaultProxy> proxy;
  if (options.net_chaos) {
    proxy = std::make_unique<FaultProxy>(control.endpoint());
    if (options.log != nullptr) {
      *options.log << "swarm: net chaos proxy on "
                   << proxy->endpoint().describe() << " -> "
                   << control.endpoint().describe() << std::endl;
    }
  }
  const auto effective_endpoint = [&]() -> server::Endpoint {
    return proxy != nullptr ? proxy->endpoint() : control.endpoint();
  };
  shared.endpoint = effective_endpoint();

  // The follower fleet (replicas profile) comes up before any client
  // connects, so reader pinning is in place for the warmup barrier, and
  // proves replication live (read-your-epoch) before the clock starts.
  std::unique_ptr<FollowerFleet> fleet;
  std::size_t sentinel = 0;
  if (options.followers > 0) {
    fleet = std::make_unique<FollowerFleet>(control.store_dir(),
                                            options.followers);
    fleet->start(effective_endpoint(), shared);
    shared.follower_endpoints = fleet->endpoints();
    if (options.log != nullptr) {
      *options.log << "swarm: " << fleet->size() << "/" << options.followers
                   << " follower(s) up" << std::endl;
    }
    (void)fleet->await_read_your_epoch(effective_endpoint(), sentinel++,
                                       shared, {});
  }
  report.followers = fleet != nullptr ? fleet->size() : 0;

  std::vector<std::unique_ptr<ClientLog>> logs;
  logs.reserve(trace.clients.size());
  for (std::size_t ci = 0; ci < trace.clients.size(); ++ci) {
    logs.push_back(std::make_unique<ClientLog>());
    logs.back()->issued.resize(options.rounds);
  }

  std::vector<std::thread> threads;
  threads.reserve(trace.clients.size());
  for (std::size_t ci = 0; ci < trace.clients.size(); ++ci) {
    threads.emplace_back(run_client, std::cref(trace.clients[ci]),
                         std::ref(*logs[ci]), std::ref(shared));
  }

  // Warmup barrier: every client connected and warmed before the clock
  // starts, so percentiles measure steady-state service time.
  {
    std::unique_lock<std::mutex> lock(shared.mutex);
    shared.cv.wait(lock,
                   [&] { return shared.ready >= trace.clients.size(); });
    shared.go = true;
    shared.cv.notify_all();
  }
  if (options.log != nullptr) {
    *options.log << "swarm: " << trace.clients.size() << " client(s) warm, "
                 << total << " ops queued" << std::endl;
  }
  const auto t_start = Clock::now();

  std::set<std::string> prev_survivors;
  // With net chaos the cycle interleaves network faults between the
  // process-level events, so reconnect/replay paths are exercised both
  // against a live server (pure network failure) and across restarts.
  static constexpr const char* kKinds[] = {"fault", "sigterm", "sigkill"};
  static constexpr const char* kNetKinds[] = {
      "net-drop",      "sigkill", "net-delay",     "sigterm",
      "net-partition", "fault",   "net-halfclose", "sigkill"};
  for (std::size_t e = 0; e < options.chaos; ++e) {
    const std::size_t threshold = total * (e + 1) / (options.chaos + 1);
    while (shared.ops_acked.load() < threshold &&
           shared.clients_done.load() < trace.clients.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::string kind = options.net_chaos ? kNetKinds[e % 8] : kKinds[e % 3];
    if (kind == std::string("sigkill") && !options.allow_kill) {
      kind = "sigterm";
    }
    ChaosRecord record;
    record.at_ops = shared.ops_acked.load();
    if (options.log != nullptr) {
      *options.log << "swarm: chaos " << (e + 1) << "/" << options.chaos
                   << " (" << kind << ") at " << record.at_ops << " ops"
                   << std::endl;
    }
    if (kind == "fault") {
      record.kind = "fault";
      fire_fault_event(e, options.seed + e, shared);
    } else if (kind.rfind("net-", 0) == 0) {
      // Network event: the server stays up and the store stays live — no
      // heal, no fsck.  Inject, let the load grind against it, heal the
      // network, then demand the service is still reachable end to end.
      record.kind = kind;
      if (kind == "net-delay") {
        proxy->set_delay_ms(25);
        std::this_thread::sleep_for(std::chrono::milliseconds(800));
      } else if (kind == "net-drop") {
        proxy->set_drop_after(1'024 + (options.seed + e * 977) % 4'096);
        std::this_thread::sleep_for(std::chrono::milliseconds(800));
      } else if (kind == "net-halfclose") {
        proxy->half_close_live();
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
      } else {  // net-partition
        proxy->partition();
        std::this_thread::sleep_for(std::chrono::milliseconds(600));
      }
      proxy->heal();
      try {
        server::ResilientOptions popts;
        popts.client_id = "swprobe" + std::to_string(e);
        popts.seed = options.seed + e + 1;
        popts.max_attempts = 10;
        server::ResilientClient probe(effective_endpoint(), popts);
        probe.set_abort(&shared.abort);
        if (!probe.call("echo alive").ok()) {
          shared.violation("server unresponsive after " + kind);
        }
        probe.close();
      } catch (const std::exception& ex) {
        shared.violation("server unreachable after " + kind + ": " +
                         ex.what());
      }
      if (options.log != nullptr) {
        *options.log << "swarm:   network healed, "
                     << proxy->connections_cut() << " connection(s) cut, "
                     << proxy->connections_proxied() << " proxied so far"
                     << std::endl;
      }
    } else {
      {
        const std::lock_guard<std::mutex> lock(shared.mutex);
        shared.server_up = false;
      }
      if (kind == "sigkill" && !control.kill()) kind = "sigterm";
      if (kind == "sigterm") control.stop();
      record.kind = kind;

      // Wind the fleet down before the heal: the follower stores go
      // quiescent (their own fsck must pass) and nobody streams from a
      // store the heal is about to mutate.
      if (fleet != nullptr) {
        fleet->stop();
        {
          const std::lock_guard<std::mutex> lock(shared.mutex);
          shared.follower_endpoints.clear();
        }
        fleet->fsck_stores(shared, "after chaos " + std::to_string(e + 1));
      }

      const HealReport heal = heal_store(control.store_dir());
      record.fsck_before = heal.fsck_before;
      record.repaired = heal.repaired;
      record.runs_resumed = heal.runs_resumed;
      record.fsck_after = heal.fsck_after;
      record.survivors = heal.survivors.size();
      report.runs_resumed_total += heal.runs_resumed;
      if (!heal.error.empty()) {
        shared.violation("chaos " + std::to_string(e + 1) + " (" + kind +
                         ") heal: " + heal.error);
      }
      verify_history(trace, logs, heal,
                     /*graceful=*/kind != std::string("sigkill"),
                     prev_survivors, shared);
      prev_survivors = heal.survivors;
      if (options.log != nullptr) {
        *options.log << "swarm:   fsck " << heal.fsck_before
                     << (heal.repaired ? " (repaired)" : "") << " -> heal -> "
                     << heal.fsck_after << ", " << heal.runs_resumed
                     << " run(s) resumed, " << heal.survivors.size()
                     << " survivor(s)" << std::endl;
      }

      try {
        control.restart();
        // The restarted server rebinds (ephemeral port): repoint the
        // proxy; its own front endpoint — what everyone dials — stays.
        if (proxy != nullptr) proxy->set_target(control.endpoint());
        {
          const std::lock_guard<std::mutex> lock(shared.mutex);
          shared.endpoint = effective_endpoint();
        }
        // Check queries against the heal snapshot BEFORE releasing the
        // clients: once they reconnect, fresh imports would legitimately
        // diverge from the snapshot.
        verify_queries(trace, prev_survivors, shared);
        // Re-attach the fleet to the restarted leader and require
        // read-your-epoch before any reader reconnects: a replica must
        // never serve a pre-heal view once the new epoch is live.
        if (fleet != nullptr) {
          fleet->start(effective_endpoint(), shared);
          {
            const std::lock_guard<std::mutex> lock(shared.mutex);
            shared.follower_endpoints = fleet->endpoints();
          }
          record.catchup_ms = fleet->await_read_your_epoch(
              effective_endpoint(), sentinel++, shared, prev_survivors);
          if (options.log != nullptr) {
            *options.log << "swarm:   " << fleet->size()
                         << " follower(s) reattached, read-your-epoch in "
                         << static_cast<long>(record.catchup_ms) << "ms"
                         << std::endl;
          }
        }
        {
          const std::lock_guard<std::mutex> lock(shared.mutex);
          shared.server_up = true;
        }
        shared.cv.notify_all();
      } catch (const std::exception& ex) {
        shared.violation("chaos " + std::to_string(e + 1) +
                         ": restart failed: " + ex.what());
        {
          const std::lock_guard<std::mutex> lock(shared.mutex);
          shared.abort = true;
        }
        shared.cv.notify_all();
        report.events.push_back(record);
        break;
      }
    }
    report.events.push_back(record);
  }

  for (std::thread& t : threads) t.join();
  const auto t_end = Clock::now();

  // Final graceful stop: the whole invariant chain one last time, with
  // every client's full history on the table.
  bool server_was_up = false;
  {
    const std::lock_guard<std::mutex> lock(shared.mutex);
    server_was_up = shared.server_up;
    shared.server_up = false;
  }
  // One last read-your-epoch pass with the full load applied, then wind
  // the fleet down and audit every replica store offline.
  if (fleet != nullptr) {
    if (server_was_up && fleet->size() > 0) {
      (void)fleet->await_read_your_epoch(effective_endpoint(), sentinel++,
                                         shared, prev_survivors);
    }
    fleet->stop();
    {
      const std::lock_guard<std::mutex> lock(shared.mutex);
      shared.follower_endpoints.clear();
    }
    fleet->fsck_stores(shared, "at the final stop");
  }
  if (server_was_up) control.stop();
  const HealReport final_heal = heal_store(control.store_dir());
  report.runs_resumed_total += final_heal.runs_resumed;
  report.final_survivors = final_heal.survivors.size();
  if (!final_heal.error.empty()) {
    shared.violation("final heal: " + final_heal.error);
  }
  if (final_heal.fsck_after != 0) {
    shared.violation("final fsck exit " +
                     std::to_string(final_heal.fsck_after));
  }
  verify_history(trace, logs, final_heal, /*graceful=*/true, prev_survivors,
                 shared);
  if (options.log != nullptr) {
    *options.log << "swarm: final heal fsck " << final_heal.fsck_before
                 << " -> " << final_heal.fsck_after << ", "
                 << final_heal.runs_resumed << " run(s) resumed, "
                 << final_heal.survivors.size() << " survivor(s)" << std::endl;
  }

  report.ops_acked = shared.ops_acked.load();
  report.errors_tolerated = shared.errors_tolerated.load();
  report.wall_ms =
      std::chrono::duration<double, std::milli>(t_end - t_start).count();
  report.qps = report.wall_ms > 0.0
                   ? 1000.0 * static_cast<double>(report.ops_acked) /
                         report.wall_ms
                   : 0.0;
  report.p50_us = shared.latency.percentile(0.50);
  report.p95_us = shared.latency.percentile(0.95);
  report.p99_us = shared.latency.percentile(0.99);
  {
    const std::lock_guard<std::mutex> lock(shared.violations_mutex);
    report.violations = shared.violations;
  }
  return report;
}

}  // namespace herc::sim
