#include "sim/trace.hpp"

#include <cctype>
#include <stdexcept>

namespace herc::sim {

namespace {

/// The same xorshift the storage property test uses: tiny, seedable,
/// identical across platforms (std::mt19937 would also do, but this keeps
/// trace bytes stable under library changes).
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

// Known-good payloads for the full schema's Fig. 1 inputs (the same
// shapes the server smoke script imports): they parse, simulate and
// produce Performance, so a trace run exercises the real tool path.
constexpr const char* kNetlistBody =
    "netlist inverter\n"
    "input in\n"
    "output out\n"
    "nmos mn g=in d=out s=GND model=nch value=1\n"
    "pmos mp g=in d=out s=VDD model=pch value=1\n";

constexpr const char* kModelsBody =
    "models standard\n"
    "model nch type=nmos resistance=10 threshold=0.6\n"
    "model pch type=pmos resistance=20 threshold=0.6\n";

std::string waves_body(std::uint64_t& rng) {
  const std::uint64_t half = 500 + next_rand(rng) % 2000;
  return "stimuli sw\nwave in 0:0 " + std::to_string(half) + ":1 " +
         std::to_string(2 * half) + ":0\n";
}

/// The kind of one round; profiles are weighted mixes of these.
enum class RoundKind {
  kDesign,    // import Fig. 1 inputs, build the simulate flow, run, browse
  kQueries,   // one import, then history/browser/catalog reads
  kVersions,  // re-import the same name (version edits), annotate, stale
  kPlans,     // build a flow, publish it as a plan, rebuild from the plan
  kFaulty,    // a design round whose run arms a fault seed
  kSlow,      // a design round run with artificial task latency
  kBrowse,    // Fig. 9 listing load: filtered/paginated browses, chaining
};

struct Mix {
  RoundKind kind;
  unsigned weight;
};

const std::vector<Mix>& profile_mix(const std::string& profile) {
  static const std::vector<Mix> kDesignMix = {{RoundKind::kDesign, 55},
                                              {RoundKind::kQueries, 20},
                                              {RoundKind::kVersions, 10},
                                              {RoundKind::kPlans, 10},
                                              {RoundKind::kSlow, 5}};
  static const std::vector<Mix> kQueriesMix = {{RoundKind::kQueries, 70},
                                               {RoundKind::kDesign, 10},
                                               {RoundKind::kVersions, 10},
                                               {RoundKind::kPlans, 10}};
  static const std::vector<Mix> kVersionsMix = {{RoundKind::kVersions, 55},
                                                {RoundKind::kQueries, 20},
                                                {RoundKind::kDesign, 15},
                                                {RoundKind::kPlans, 10}};
  static const std::vector<Mix> kFaultsMix = {{RoundKind::kFaulty, 45},
                                              {RoundKind::kDesign, 20},
                                              {RoundKind::kQueries, 20},
                                              {RoundKind::kVersions, 10},
                                              {RoundKind::kSlow, 5}};
  static const std::vector<Mix> kMixedMix = {{RoundKind::kQueries, 35},
                                             {RoundKind::kDesign, 25},
                                             {RoundKind::kVersions, 15},
                                             {RoundKind::kPlans, 10},
                                             {RoundKind::kFaulty, 10},
                                             {RoundKind::kSlow, 5}};
  // The writer quarter of the "replicas" profile: import-heavy, no fault
  // seeds — replication lag, not failure records, is what it measures.
  static const std::vector<Mix> kReplicasMix = {{RoundKind::kDesign, 50},
                                                {RoundKind::kVersions, 20},
                                                {RoundKind::kQueries, 15},
                                                {RoundKind::kPlans, 10},
                                                {RoundKind::kSlow, 5}};
  // The "browse" profile hammers the Fig. 9 listing path the secondary
  // indexes serve: keyword/date/user filters, limit-paginated pages and
  // one-hop chaining, against data a design minority keeps growing.
  static const std::vector<Mix> kBrowseMix = {{RoundKind::kBrowse, 55},
                                              {RoundKind::kQueries, 15},
                                              {RoundKind::kDesign, 15},
                                              {RoundKind::kVersions, 10},
                                              {RoundKind::kPlans, 5}};
  if (profile == "design") return kDesignMix;
  if (profile == "queries") return kQueriesMix;
  if (profile == "versions") return kVersionsMix;
  if (profile == "faults") return kFaultsMix;
  if (profile == "mixed") return kMixedMix;
  if (profile == "replicas") return kReplicasMix;
  if (profile == "browse") return kBrowseMix;
  throw std::invalid_argument(
      "unknown trace profile '" + profile +
      "' (design|queries|versions|faults|mixed|replicas|browse)");
}

RoundKind pick_kind(const std::vector<Mix>& mix, std::uint64_t& rng) {
  unsigned total = 0;
  for (const Mix& m : mix) total += m.weight;
  auto roll = static_cast<unsigned>(next_rand(rng) % total);
  for (const Mix& m : mix) {
    if (roll < m.weight) return m.kind;
    roll -= m.weight;
  }
  return mix.front().kind;
}

TraceOp op(std::string line, std::string body = "") {
  TraceOp o;
  o.line = std::move(line);
  o.body = std::move(body);
  return o;
}

TraceOp import_op(const std::string& entity, const std::string& name,
                  std::string body, bool tracked) {
  TraceOp o;
  o.line = "import " + entity + " " + name + (body.empty() ? " \"\"" : "");
  o.body = std::move(body);
  o.tracked_import = tracked;
  // Always record the name: version re-imports are untracked for the
  // durability invariants but still count toward the exactly-once
  // instance-count check (each issue adds one browse row).
  o.import_name = name;
  return o;
}

/// Imports the four simulate-flow inputs with round-scoped names and
/// builds the Fig. 1 flow `f` over them; the node numbering (0 goal,
/// 1 Simulator, 3 Stimuli, 4 DeviceModels, 5 EditedNetlist) is fixed by
/// the full schema's expansion of Performance.
void emit_simulate_flow(TraceRound& round, const std::string& stem,
                        const std::string& flow, std::uint64_t& rng) {
  round.ops.push_back(
      import_op("EditedNetlist", stem + "_0", kNetlistBody, true));
  round.ops.push_back(
      import_op("DeviceModels", stem + "_1", kModelsBody, true));
  round.ops.push_back(import_op("Stimuli", stem + "_2", waves_body(rng), true));
  round.ops.push_back(import_op("Simulator", stem + "_3", "", true));
  round.ops.push_back(op("flow new " + flow + " goal Performance"));
  round.ops.push_back(op("flow expand " + flow + " 0"));
  round.ops.push_back(op("flow expand " + flow + " 2"));
  round.ops.push_back(op("flow bind " + flow + " 1 {i3}"));
  round.ops.push_back(op("flow bind " + flow + " 3 {i2}"));
  round.ops.push_back(op("flow bind " + flow + " 4 {i1}"));
  round.ops.push_back(op("flow bind " + flow + " 5 {i0}"));
}

TraceRound design_round(const std::string& stem, const std::string& flow,
                        const std::string& user, std::uint64_t& rng) {
  TraceRound round;
  emit_simulate_flow(round, stem, flow, rng);
  const std::uint64_t variant = next_rand(rng) % 10;
  std::string run = "run " + flow;
  if (variant < 3) run += " parallel";
  if (variant >= 8) run += " reuse";
  round.ops.push_back(op(run));
  round.ops.push_back(op("browse Performance user=" + user));
  return round;
}

TraceRound queries_round(const std::string& stem, const std::string& user,
                         std::uint64_t& rng) {
  TraceRound round;
  round.ops.push_back(import_op("Stimuli", stem + "_0", waves_body(rng), true));
  const std::vector<std::string> pool = {
      "browse Stimuli user=" + user,
      "history {i0}",
      "versions {i0}",
      "uses {i0}",
      "stale {i0}",
      "entities",
      "plans",
      "runs",
      "failures",
      "find Stimuli",
  };
  const std::size_t n = 4 + next_rand(rng) % 4;
  for (std::size_t i = 0; i < n; ++i) {
    round.ops.push_back(op(pool[next_rand(rng) % pool.size()]));
  }
  return round;
}

TraceRound versions_round(const std::string& stem, const std::string& user,
                          std::uint64_t& rng) {
  TraceRound round;
  const std::string name = stem + "_0";
  round.ops.push_back(import_op("Stimuli", name, waves_body(rng), true));
  // Version edits: re-importing the same name bumps the version chain;
  // only the first import is durability-tracked (one name, one fact).
  const std::size_t edits = 1 + next_rand(rng) % 3;
  for (std::size_t e = 0; e < edits; ++e) {
    round.ops.push_back(import_op("Stimuli", name, waves_body(rng), false));
  }
  round.ops.push_back(op("versions {i0}"));
  round.ops.push_back(op("annotate {i0} " + name + " swarm version edit"));
  round.ops.push_back(op("stale {i0}"));
  round.ops.push_back(op("browse Stimuli user=" + user));
  return round;
}

TraceRound plans_round(const std::string& flow) {
  TraceRound round;
  round.ops.push_back(op("flow new " + flow + " goal Performance"));
  round.ops.push_back(op("flow expand " + flow + " 0"));
  round.ops.push_back(op("flow expand " + flow + " 2"));
  round.ops.push_back(op("flow save-plan " + flow));
  // Plan-based start (§3.4): rebuild from the published plan.  The plan
  // catalog is process-local state, so a rebuild racing a server restart
  // may legitimately miss it.
  TraceOp rebuild = op("flow new " + flow + "p plan goal:Performance");
  rebuild.may_fail = true;
  round.ops.push_back(rebuild);
  TraceOp show = op("flow show " + flow + "p");
  show.may_fail = true;
  round.ops.push_back(show);
  round.ops.push_back(op("plans"));
  return round;
}

TraceRound faulty_round(const std::string& stem, const std::string& flow,
                        std::uint64_t seed, std::uint64_t& rng) {
  TraceRound round;
  emit_simulate_flow(round, stem, flow, rng);
  // Arm a per-run deterministic fault plan; continue+retries keeps the
  // run record closing on its own (failed tasks become failure records,
  // not an aborted run).
  TraceOp run = op("run " + flow + " continue retries=1 faults=" +
                   std::to_string(seed | 1));
  run.may_fail = true;
  round.ops.push_back(run);
  round.ops.push_back(op("failures"));
  return round;
}

/// A round for a read-only client (the "replicas" profile's follower-
/// pinned readers): catalog, browser and history sweeps with no imports,
/// so every op is read-classified and a replica will serve it.
TraceRound reader_round(const std::string& user, std::uint64_t& rng) {
  TraceRound round;
  const std::vector<std::string> pool = {
      "browse EditedNetlist",
      "browse Stimuli",
      "browse Performance",
      "browse DeviceModels user=" + user,
      "entities",
      "plans",
      "runs",
      "failures",
      "find Stimuli",
      "find EditedNetlist",
  };
  const std::size_t n = 6 + next_rand(rng) % 6;
  for (std::size_t i = 0; i < n; ++i) {
    round.ops.push_back(op(pool[next_rand(rng) % pool.size()]));
  }
  return round;
}

/// A Fig. 9 listing round: two imports to keep the browsers non-empty,
/// then filtered, date-limited and limit-paginated listings plus one-hop
/// chaining ("which Performances used this netlist").  Exercises every
/// planner access path — keyword (the round stem is one indexable token),
/// user, date, type — and the paged cursor protocol over the wire.
TraceRound browse_round(const std::string& stem, const std::string& user,
                        std::uint64_t& rng) {
  TraceRound round;
  round.ops.push_back(import_op("Stimuli", stem + "_0", waves_body(rng), true));
  round.ops.push_back(
      import_op("EditedNetlist", stem + "_1", kNetlistBody, true));
  const std::vector<std::string> pool = {
      "browse Stimuli keyword=" + stem,
      "browse Stimuli user=" + user + " limit=5",
      "browse EditedNetlist keyword=" + stem + " limit=3",
      "browse EditedNetlist limit=4",
      "browse Performance from=1 limit=8",
      "browse Stimuli from=0 limit=6",
      "browse Performance user=" + user + " limit=8",
      "browse Performance uses={i1}",
      "uses {i0}",
      "history {i1}",
  };
  const std::size_t n = 5 + next_rand(rng) % 4;
  for (std::size_t i = 0; i < n; ++i) {
    round.ops.push_back(op(pool[next_rand(rng) % pool.size()]));
  }
  return round;
}

TraceRound slow_round(const std::string& stem, const std::string& flow,
                      std::uint64_t& rng) {
  TraceRound round;
  emit_simulate_flow(round, stem, flow, rng);
  // Artificial task latency holds the run in flight so chaos events have
  // something to interrupt; cancellation mid-run is an expected outcome.
  TraceOp run = op("run " + flow + " parallel latency=" +
                   std::to_string(20 + 20 * (next_rand(rng) % 3)));
  run.may_fail = true;
  round.ops.push_back(run);
  return round;
}

}  // namespace

std::size_t Trace::total_ops() const {
  std::size_t n = 0;
  for (const TraceClient& c : clients) {
    for (const TraceRound& r : c.rounds) n += r.ops.size();
  }
  return n;
}

const std::vector<std::string>& profile_names() {
  static const std::vector<std::string> kNames = {
      "design", "queries", "versions", "faults",
      "mixed",  "replicas", "browse"};
  return kNames;
}

Trace make_trace(const std::string& profile, std::size_t clients,
                 std::size_t rounds, std::uint64_t seed) {
  const std::vector<Mix>& mix = profile_mix(profile);
  Trace trace;
  trace.profile = profile;
  trace.seed = seed;
  trace.clients.reserve(clients);
  for (std::size_t ci = 0; ci < clients; ++ci) {
    TraceClient client;
    client.user = "swarm_c" + std::to_string(ci);
    client.index = ci;
    // In the replicas profile three clients in four are read-only; the
    // driver pins them to follower replicas while the writers (every
    // fourth, including client 0) drive the leader.
    client.reader = profile == "replicas" && ci % 4 != 0;
    // Per-client stream: independent of every other client's, so a trace
    // replays identically whatever the thread interleaving.
    std::uint64_t rng = seed * 0x9e3779b97f4a7c15ULL + ci * 0xbf58476d1ce4e5b9ULL + 1;
    next_rand(rng);
    if (client.reader) {
      for (std::size_t ri = 0; ri < rounds; ++ri) {
        client.rounds.push_back(reader_round(client.user, rng));
      }
      trace.clients.push_back(std::move(client));
      continue;
    }
    for (std::size_t ri = 0; ri < rounds; ++ri) {
      const RoundKind kind = pick_kind(mix, rng);
      const std::string stem =
          "sw_c" + std::to_string(ci) + "_r" + std::to_string(ri);
      const std::string flow =
          "f" + std::to_string(ci) + "_" + std::to_string(ri);
      switch (kind) {
        case RoundKind::kDesign:
          client.rounds.push_back(design_round(stem, flow, client.user, rng));
          break;
        case RoundKind::kQueries:
          client.rounds.push_back(queries_round(stem, client.user, rng));
          break;
        case RoundKind::kVersions:
          client.rounds.push_back(versions_round(stem, client.user, rng));
          break;
        case RoundKind::kPlans:
          client.rounds.push_back(plans_round(flow));
          break;
        case RoundKind::kFaulty:
          client.rounds.push_back(
              faulty_round(stem, flow, next_rand(rng), rng));
          break;
        case RoundKind::kSlow:
          client.rounds.push_back(slow_round(stem, flow, rng));
          break;
        case RoundKind::kBrowse:
          client.rounds.push_back(browse_round(stem, client.user, rng));
          break;
      }
    }
    trace.clients.push_back(std::move(client));
  }
  return trace;
}

TraceRound make_fault_round(const std::string& stem, const std::string& flow,
                            std::uint64_t fault_seed) {
  std::uint64_t rng = fault_seed * 0x9e3779b97f4a7c15ULL + 1;
  TraceRound round = faulty_round(stem, flow, fault_seed, rng);
  // Chaos data must stay invisible to the survivor snapshot.
  for (TraceOp& op : round.ops) {
    op.tracked_import = false;
    op.import_name.clear();
  }
  return round;
}

bool is_swarm_name(const std::string& name) {
  // sw_c<digits>_r<digits>_<digits>
  std::size_t at = 0;
  const auto digits = [&]() {
    const std::size_t start = at;
    while (at < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[at])) != 0) {
      ++at;
    }
    return at > start;
  };
  if (name.rfind("sw_c", 0) != 0) return false;
  at = 4;
  if (!digits()) return false;
  if (at + 1 >= name.size() || name[at] != '_' || name[at + 1] != 'r') {
    return false;
  }
  at += 2;
  if (!digits()) return false;
  if (at >= name.size() || name[at] != '_') return false;
  ++at;
  if (!digits()) return false;
  return at == name.size();
}

std::size_t swarm_name_client(const std::string& name) {
  std::size_t value = 0;
  for (std::size_t at = 4;
       at < name.size() && std::isdigit(static_cast<unsigned char>(name[at]));
       ++at) {
    value = value * 10 + static_cast<std::size_t>(name[at] - '0');
  }
  return value;
}

}  // namespace herc::sim
