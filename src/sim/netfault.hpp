// `herc::sim::FaultProxy`: a misbehaving network in a box.
//
// A TCP forwarding proxy that sits between swarm clients (and follower
// appliers) and the server under test, injecting the failures a real
// network delivers but a loopback socket never does:
//
//   - delay:      every forwarded chunk waits a fixed latency first
//   - drop_after: each *new* connection is cut after forwarding N bytes
//                 toward the server — mid-frame, if N lands there
//   - half_close: shutdown(SHUT_WR) toward the client while still
//                 draining its requests (the asymmetric-death case)
//   - partition:  black-hole mode — established connections stall
//                 silently (nothing forwarded, no FIN, the failure
//                 detectable only by deadline), new connections are
//                 accepted and then stalled the same way; heal() closes
//                 every stalled connection so both sides finally learn
//
// Faults are set by the chaos driver between rounds and apply to traffic
// from then on; `heal()` clears them all.  `set_target` repoints the
// proxy after a leader restart picks a new port — established
// connections keep their old target (they are already dead), new ones go
// to the new.
//
// The proxy is deliberately protocol-blind: it forwards bytes, not
// frames, so a fault can land anywhere — including inside a length
// prefix — which is exactly what the server's deadline reads and the
// client's token replay are supposed to survive.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "server/socket.hpp"

namespace herc::sim {

class FaultProxy {
 public:
  /// Binds a listener on 127.0.0.1:<ephemeral> forwarding to `target`.
  /// Starts the accept thread immediately.
  explicit FaultProxy(server::Endpoint target);
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// Where clients connect instead of the real server.
  [[nodiscard]] const server::Endpoint& endpoint() const { return front_; }
  [[nodiscard]] server::Endpoint target() const;

  /// Repoints new connections (after a server restart rebinds).
  void set_target(server::Endpoint target);

  // ---- fault controls (each applies until heal) ------------------------------

  /// Adds `ms` of latency before each forwarded chunk (both directions).
  void set_delay_ms(int ms) { delay_ms_.store(ms); }
  /// Cuts every connection — live ones after `bytes` *further* bytes
  /// toward the server, new ones after `bytes` total (0 disables).  The
  /// cut is byte-positioned, not frame-positioned: it can land inside a
  /// length prefix.
  void set_drop_after(std::uint64_t bytes);
  /// Half-closes the server→client direction of every *live* connection:
  /// replies stop mid-stream, requests still flow.
  void half_close_live();
  /// Black-holes everything: live and new connections stall silently.
  void partition() { partitioned_.store(true); }

  /// Clears every fault and closes connections stalled by the partition
  /// or orphaned by half-close (their peers finally see EOF).
  void heal();

  // ---- observers -------------------------------------------------------------

  [[nodiscard]] std::uint64_t connections_proxied() const {
    return accepted_.load();
  }
  [[nodiscard]] std::uint64_t connections_cut() const { return cut_.load(); }
  [[nodiscard]] std::size_t live_connections() const;

 private:
  struct Link;

  void accept_loop();
  void pump(Link& link, bool toward_server);
  void reap_finished();
  void close_all_links();

  server::Socket listener_;
  server::Endpoint front_;
  mutable std::mutex target_mutex_;
  server::Endpoint target_;

  std::atomic<int> delay_ms_{0};
  std::atomic<std::uint64_t> drop_after_{0};
  std::atomic<bool> partitioned_{false};

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> cut_{0};

  std::thread accept_thread_;
  mutable std::mutex links_mutex_;
  std::list<std::unique_ptr<Link>> links_;
};

}  // namespace herc::sim
