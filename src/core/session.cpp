#include "core/session.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "schema/schema_io.hpp"
#include "storage/journal.hpp"
#include "support/error.hpp"
#include "support/text.hpp"
#include "tools/fault_injection.hpp"
#include "tools/standard_tools.hpp"

namespace herc::core {

using graph::NodeId;
using graph::TaskGraph;

namespace {

/// Per-invocation misbehavior probability when a run arms a fault seed
/// (`run ... faults=SEED`).  With one retry a task fails only when two
/// consecutive invocations both fault (~6%): plenty of failure records
/// under load, but most runs still complete.
constexpr double kSeededFaultProbability = 0.25;

}  // namespace

void DesignSession::require_writable(std::string_view what) const {
  if (replica_db_ != nullptr) {
    throw support::HistoryError("read-only replica: '" + std::string(what) +
                                "' mutates the design history; run it on "
                                "the leader");
  }
}

DesignSession::DesignSession(schema::TaskSchema schema, std::string user,
                             std::unique_ptr<support::Clock> clock)
    : schema_(std::move(schema)),
      user_(std::move(user)),
      clock_(clock ? std::move(clock)
                   : std::make_unique<support::SystemClock>()) {
  tools::install_standard_compose_checks(schema_);
  db_ = std::make_unique<history::HistoryDb>(schema_, *clock_);
  registry_ = std::make_unique<tools::ToolRegistry>(schema_);
  tools::register_standard_tools(*registry_);
  flow_catalog_ = std::make_unique<catalog::FlowCatalog>(schema_);
  executor_ = std::make_unique<exec::Executor>(*db_, *registry_);
}

TaskGraph DesignSession::task_from_goal(std::string_view entity) {
  return catalog::start_from_goal(schema_, schema_.require(entity));
}

catalog::ToolStart DesignSession::task_from_tool(std::string_view tool) {
  return catalog::start_from_tool(schema_, schema_.require(tool));
}

catalog::DataStart DesignSession::task_from_data(data::InstanceId instance) {
  return catalog::start_from_data(schema_, db(), instance);
}

TaskGraph DesignSession::task_from_plan(std::string_view flow_name) {
  return catalog::start_from_plan(*flow_catalog_, flow_name);
}

data::InstanceId DesignSession::import_data(std::string_view entity,
                                            std::string_view name,
                                            std::string_view payload,
                                            std::string_view comment) {
  require_writable("import");
  return db().import_instance(schema_.require(entity), name, payload, user_,
                              comment);
}

void DesignSession::extend_schema(std::string_view fragment) {
  require_writable("schema extend");
  schema::extend_schema(schema_, fragment);
}

exec::ExecResult DesignSession::run(const TaskGraph& flow,
                                    exec::ExecOptions options) {
  require_writable("run");
  if (options.user == "designer") options.user = user_;
  if (options.fault.seed != 0) {
    tools::FaultInjectingRegistry faulty(*registry_, options.fault.seed);
    faulty.inject_random(kSeededFaultProbability, tools::FaultKind::kThrow);
    exec::Executor faulted(db(), faulty);
    faulted.set_cancel_flag(cancel_);
    return faulted.run(flow, options);
  }
  return executor_->run(flow, options);
}

exec::ExecResult DesignSession::run_goal(const TaskGraph& flow, NodeId goal,
                                         exec::ExecOptions options) {
  require_writable("run");
  if (options.user == "designer") options.user = user_;
  if (options.fault.seed != 0) {
    tools::FaultInjectingRegistry faulty(*registry_, options.fault.seed);
    faulty.inject_random(kSeededFaultProbability, tools::FaultKind::kThrow);
    exec::Executor faulted(db(), faulty);
    faulted.set_cancel_flag(cancel_);
    return faulted.run_goal(flow, goal, options);
  }
  return executor_->run_goal(flow, goal, options);
}

exec::ExecResult DesignSession::resume_run(std::uint64_t run_id) {
  require_writable("resume");
  // A run that armed a fault seed resumes under the same plan (the seed is
  // in the run record), so its failure semantics — not just its task list —
  // replay deterministically.
  const history::RunRecord* run = db().find_run(run_id);
  if (run != nullptr && run->seed != 0) {
    tools::FaultInjectingRegistry faulty(*registry_, run->seed);
    faulty.inject_random(kSeededFaultProbability, tools::FaultKind::kThrow);
    exec::Executor faulted(db(), faulty);
    faulted.set_cancel_flag(cancel_);
    return faulted.resume(run_id);
  }
  return executor_->resume(run_id);
}

void DesignSession::set_cancel_flag(const std::atomic<bool>* cancel) {
  cancel_ = cancel;
  executor_->set_cancel_flag(cancel);
}

history::HistoryDb::SealSweep DesignSession::seal_open_runs(
    std::string_view reason) {
  // A replica's open runs mirror the leader's live runs; sealing them
  // locally would diverge the replicated history.
  if (replica_db_ != nullptr) return {};
  const history::HistoryDb::SealSweep sweep = db().seal_open_runs(reason);
  if (storage_) storage_->sync();
  return sweep;
}

DesignSession::~DesignSession() {
  // Best-effort index save for teardown paths that skip `close_storage`
  // (a serving process exiting): a failure just costs a rebuild next open.
  if (storage_ && indexes_) {
    try {
      indexes_->save(storage_->dir(), storage_->epoch(),
                     storage_->journal_seq());
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
}

InstanceBrowser DesignSession::browse(std::string_view entity) const {
  return InstanceBrowser(db(), schema_.require(entity), indexes_.get());
}

void DesignSession::annotate(data::InstanceId id, std::string_view name,
                             std::string_view comment) {
  require_writable("annotate");
  db().annotate(id, name, comment);
}

std::string DesignSession::render_task_window(const TaskGraph& flow) const {
  std::string out =
      "Task window: flow '" + flow.name() + "' (schema " +
      schema_.name() + ")\n";
  for (const NodeId n : flow.nodes()) {
    const graph::Node& node = flow.node(n);
    std::string line = "  [" + std::to_string(n.value()) + "] ";
    line += schema_.entity_name(node.type);
    if (!node.label.empty()) line += " '" + node.label + "'";
    if (!node.bound.empty()) {
      line += " {";
      for (std::size_t i = 0; i < node.bound.size(); ++i) {
        if (i != 0) line += ",";
        const data::InstanceId inst = node.bound[i];
        const std::string& name = db().contains(inst)
                                      ? db().instance(inst).name
                                      : std::string();
        line += name.empty() ? "i" + std::to_string(inst.value()) : name;
      }
      line += "}";
    }
    const auto& deps = flow.deps(n);
    if (!deps.empty()) {
      line += " <-";
      for (const graph::DepEdge& e : deps) {
        line += " ";
        line += schema::to_string(e.kind);
        line += ":" + std::to_string(e.target.value());
        if (e.optional) line += "?";
      }
    } else if (node.bound.empty()) {
      line += "  (unbound leaf)";
    }
    out += line + "\n";
  }
  const auto unbound = flow.unbound_leaves();
  out += unbound.empty() ? "  status: runnable\n"
                         : "  status: " + std::to_string(unbound.size()) +
                               " unbound leaves\n";
  return out;
}

namespace {
constexpr std::string_view kSectionPrefix = "@section ";
}  // namespace

std::string DesignSession::save() const {
  std::string out;
  out += "@section user\n" + user_ + "\n";
  out += "@section schema\n" + schema::write_schema(schema_);
  out += "@section history\n" + db().save();
  out += "@section flows\n" + flow_catalog_->save_all();
  return out;
}

namespace {

/// The current journal's record payloads, for index catch-up.  Any problem
/// (no file, foreign epoch) reads as "no records": the index then rebuilds
/// or, if its seq claims otherwise, falls back to a rebuild too.
std::vector<std::string> journal_records_for(const std::string& dir,
                                             std::uint64_t epoch) {
  const std::filesystem::path path =
      std::filesystem::path(dir) / "journal.wal";
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const storage::ScanResult scan = storage::scan_journal(buffer.str());
  if (!scan.header_valid || scan.epoch != epoch) return {};
  return scan.records;
}

}  // namespace

storage::RecoveryReport DesignSession::open_storage(
    const std::string& dir, storage::StoreOptions options) {
  require_writable("open");
  indexes_.reset();  // detach from the database we are about to replace
  auto store = std::make_unique<storage::DurableHistory>(schema_, *clock_,
                                                         dir, options);
  history::HistoryDb& current = db();
  if (store->db().size() == 0 && current.size() > 0) {
    store->adopt(std::move(current));
  } else if (store->db().size() > 0 && current.size() > 0) {
    throw support::HistoryError(
        "store '" + dir + "' already holds a history and so does this "
        "session; open the store from a fresh session");
  }
  storage_ = std::move(store);
  db_.reset();
  executor_ = std::make_unique<exec::Executor>(storage_->db(), *registry_);
  executor_->set_cancel_flag(cancel_);
  indexes_ = std::make_unique<index::HistoryIndexes>(storage_->db());
  indexes_->open(dir, storage_->epoch(),
                 journal_records_for(dir, storage_->epoch()));
  indexes_->attach();
  return storage_->recovery();
}

void DesignSession::checkpoint_storage() {
  require_writable("checkpoint");
  if (!storage_) {
    throw support::HistoryError("no durable store is open");
  }
  storage_->checkpoint();
  if (indexes_) {
    indexes_->save(storage_->dir(), storage_->epoch(),
                   storage_->journal_seq());
  }
}

void DesignSession::close_storage() {
  if (!storage_) return;
  if (indexes_) {
    try {
      indexes_->save(storage_->dir(), storage_->epoch(),
                     storage_->journal_seq());
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // Closing must not fail for an unsaveable index; next open rebuilds.
    }
  }
  // `release` hands back the same HistoryDb object the store owned, so the
  // indexes' observer registration stays valid across the detach.
  db_ = storage_->release();
  storage_.reset();
  executor_ = std::make_unique<exec::Executor>(*db_, *registry_);
  executor_->set_cancel_flag(cancel_);
}

void DesignSession::attach_replica(history::HistoryDb* db) {
  indexes_.reset();
  replica_db_ = db;
  if (db != nullptr) {
    indexes_ = std::make_unique<index::HistoryIndexes>(*db);
    indexes_->rebuild();
    indexes_->attach();
  }
}

std::unique_ptr<DesignSession> DesignSession::load(
    std::string_view text, std::unique_ptr<support::Clock> clock) {
  std::string user = "designer";
  std::string schema_text;
  std::string history_text;
  std::string flows_text;
  std::string* current = nullptr;
  for (const std::string& line : support::split(text, '\n')) {
    if (line.rfind(kSectionPrefix, 0) == 0) {
      const std::string_view section =
          support::trim(std::string_view(line).substr(kSectionPrefix.size()));
      if (section == "user") {
        current = &user;
        user.clear();
      } else if (section == "schema") {
        current = &schema_text;
      } else if (section == "history") {
        current = &history_text;
      } else if (section == "flows") {
        current = &flows_text;
      } else {
        throw support::ParseError("session file: unknown section '" +
                                  std::string(section) + "'");
      }
      continue;
    }
    if (current == nullptr) {
      if (support::trim(line).empty()) continue;
      throw support::ParseError("session file: content before any section");
    }
    *current += line + "\n";
  }

  auto session = std::make_unique<DesignSession>(
      schema::parse_schema(schema_text),
      std::string(support::trim(user)), std::move(clock));
  session->db_ = std::make_unique<history::HistoryDb>(
      history::HistoryDb::load(session->schema_, *session->clock_,
                               history_text));
  session->flow_catalog_ = std::make_unique<catalog::FlowCatalog>(
      catalog::FlowCatalog::load_all(session->schema_, flows_text));
  session->executor_ =
      std::make_unique<exec::Executor>(*session->db_, *session->registry_);
  return session;
}

}  // namespace herc::core
