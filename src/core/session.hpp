// `DesignSession`: the Hercules Task Manager facade (paper §4).
//
// One object owning the whole framework state — schema, history database,
// tool registry, flow catalog — with the operations a designer performs in
// the task window: start a task from any of the four approaches (§3.4),
// run flows, browse and annotate instances, save/restore the session.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "catalog/catalogs.hpp"
#include "core/browser.hpp"
#include "exec/executor.hpp"
#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "index/indexes.hpp"
#include "schema/task_schema.hpp"
#include "storage/store.hpp"
#include "support/clock.hpp"
#include "tools/registry.hpp"

namespace herc::core {

class DesignSession {
 public:
  /// Builds a session around `schema`.  When `clock` is null, wall-clock
  /// time stamps instances (pass a `ManualClock` for reproducible runs).
  explicit DesignSession(schema::TaskSchema schema,
                         std::string user = "designer",
                         std::unique_ptr<support::Clock> clock = nullptr);

  DesignSession(const DesignSession&) = delete;
  DesignSession& operator=(const DesignSession&) = delete;

  ~DesignSession();

  // ---- components -----------------------------------------------------------

  [[nodiscard]] schema::TaskSchema& schema() { return schema_; }
  [[nodiscard]] const schema::TaskSchema& schema() const { return schema_; }
  [[nodiscard]] history::HistoryDb& db() {
    if (replica_db_ != nullptr) return *replica_db_;
    return storage_ ? storage_->db() : *db_;
  }
  [[nodiscard]] const history::HistoryDb& db() const {
    if (replica_db_ != nullptr) return *replica_db_;
    return storage_ ? storage_->db() : *db_;
  }
  [[nodiscard]] tools::ToolRegistry& tools() { return *registry_; }
  [[nodiscard]] catalog::FlowCatalog& flows() { return *flow_catalog_; }
  [[nodiscard]] const catalog::FlowCatalog& flows() const {
    return *flow_catalog_;
  }

  [[nodiscard]] const std::string& user() const { return user_; }
  void set_user(std::string user) { user_ = std::move(user); }

  // ---- the four design approaches (§3.4) -------------------------------------

  [[nodiscard]] graph::TaskGraph task_from_goal(std::string_view entity);
  [[nodiscard]] catalog::ToolStart task_from_tool(std::string_view tool);
  [[nodiscard]] catalog::DataStart task_from_data(data::InstanceId instance);
  [[nodiscard]] graph::TaskGraph task_from_plan(std::string_view flow_name);

  // ---- data and execution ----------------------------------------------------

  /// Imports designer-supplied data (a source-entity instance).
  data::InstanceId import_data(std::string_view entity, std::string_view name,
                               std::string_view payload,
                               std::string_view comment = "");

  /// Incorporates new tools/entities mid-session by applying a schema DSL
  /// fragment (see `schema::extend_schema`).  Existing flows, instances
  /// and encapsulations are untouched; standard encapsulations for any
  /// newly added standard tool names are registered.
  void extend_schema(std::string_view fragment);

  /// Runs a flow with this session's user stamped on the products.  When
  /// `options.fault.seed` is nonzero the run executes through a seeded
  /// `tools::FaultInjectingRegistry` (deterministic pseudo-random tool
  /// failures — the chaos harness's per-run fault plan); the seed lands in
  /// the run record, so `resume_run` replays the same plan.
  exec::ExecResult run(const graph::TaskGraph& flow,
                       exec::ExecOptions options = {});
  /// Runs only the sub-flow rooted at `goal`.
  exec::ExecResult run_goal(const graph::TaskGraph& flow, graph::NodeId goal,
                            exec::ExecOptions options = {});

  /// Resumes an interrupted run (see `Executor::resume`): reloads the
  /// journaled flow, closes the old run record and re-runs with
  /// memoization, so only tasks that never finished execute again.
  exec::ExecResult resume_run(std::uint64_t run_id);

  /// Installs a cooperative cancellation flag on the execution engine
  /// (nullptr detaches).  While the flag reads true every `run`/
  /// `run_goal`/`resume_run` stops launching task groups and throws
  /// `exec::RunCancelled`, leaving the run record open and resumable.
  /// Survives `open_storage`/`close_storage` (which rebuild the executor).
  /// The flag must outlive this session or be detached first.
  void set_cancel_flag(const std::atomic<bool>* cancel);

  /// Winds the session down for a graceful stop: quarantines partial
  /// products of every still-open run, seals each run's sweep window and
  /// syncs the journal (when a store is attached), so the store on disk is
  /// fsck-clean and every interrupted run resumable.  Safe with no open
  /// runs (reports zeros).
  history::HistoryDb::SealSweep seal_open_runs(std::string_view reason);

  [[nodiscard]] InstanceBrowser browse(std::string_view entity) const;
  void annotate(data::InstanceId id, std::string_view name,
                std::string_view comment);

  /// ASCII rendering of the task window (Fig. 9, left panel).
  [[nodiscard]] std::string render_task_window(
      const graph::TaskGraph& flow) const;

  // ---- persistence -----------------------------------------------------------

  /// Serializes schema + history + flow catalog + user to one document.
  [[nodiscard]] std::string save() const;
  /// Restores a session saved with `save`.
  [[nodiscard]] static std::unique_ptr<DesignSession> load(
      std::string_view text, std::unique_ptr<support::Clock> clock = nullptr);

  // ---- durable storage (src/storage) -----------------------------------------

  /// Attaches a durable store in `dir`.  A store that already holds data
  /// replaces this session's (empty) history; a fresh store absorbs and
  /// checkpoints whatever the session has recorded so far.  From then on
  /// every mutation — imports, task products, failure records,
  /// annotations — is journaled (autosave-on-record).  Throws when both
  /// the store and the session already hold instances.
  storage::RecoveryReport open_storage(const std::string& dir,
                                       storage::StoreOptions options = {});

  /// Snapshot compaction of the attached store.  Throws when none is open.
  void checkpoint_storage();

  /// Detaches the store (flushing the journal); the history stays
  /// in-memory.  No-op when none is open.
  void close_storage();

  /// The attached store, or nullptr.
  [[nodiscard]] storage::DurableHistory* storage() { return storage_.get(); }

  // ---- secondary indexes (src/index) -----------------------------------------

  /// The secondary indexes maintained alongside the attached store or
  /// replica view, or nullptr for a plain in-memory session (whose
  /// listings stay verified table scans).
  [[nodiscard]] index::HistoryIndexes* indexes() { return indexes_.get(); }
  [[nodiscard]] const index::HistoryIndexes* indexes() const {
    return indexes_.get();
  }

  // ---- replication (src/replica) ---------------------------------------------

  /// Turns this session into a read-only replica view over `db` (owned by
  /// a `ReplicaApplier`, which must outlive the session and keep the
  /// address stable across resyncs).  Queries read `db`; every mutating
  /// operation throws `HistoryError` — the follower's history changes only
  /// through replicated journal frames.  `seal_open_runs` becomes a no-op:
  /// open runs on a replica are the leader's live runs, not crashes.
  /// Also builds and attaches in-memory secondary indexes over `db`: they
  /// follow the applied frame stream, and a resync's move-assignment fires
  /// their rebuild.  Followers never persist indexes — the leader owns the
  /// store directory.
  void attach_replica(history::HistoryDb* db);
  [[nodiscard]] bool read_only() const { return replica_db_ != nullptr; }

 private:
  /// Throws `HistoryError` when this session is a read-only replica.
  void require_writable(std::string_view what) const;

  schema::TaskSchema schema_;
  std::string user_;
  std::unique_ptr<support::Clock> clock_;
  std::unique_ptr<history::HistoryDb> db_;
  std::unique_ptr<storage::DurableHistory> storage_;
  std::unique_ptr<tools::ToolRegistry> registry_;
  std::unique_ptr<catalog::FlowCatalog> flow_catalog_;
  std::unique_ptr<exec::Executor> executor_;
  /// Re-applied whenever the executor is rebuilt (storage open/close).
  const std::atomic<bool>* cancel_ = nullptr;
  /// Non-null when this session is a read-only replica view.
  history::HistoryDb* replica_db_ = nullptr;
  /// Declared last: destroyed first, so it detaches from the database
  /// while the database (storage_/db_/replica view) is still alive.
  std::unique_ptr<index::HistoryIndexes> indexes_;
};

}  // namespace herc::core
