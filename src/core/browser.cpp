#include "core/browser.hpp"

#include <limits>

namespace herc::core {

using data::InstanceId;

InstanceBrowser::InstanceBrowser(const history::HistoryDb& db,
                                 schema::EntityTypeId type,
                                 const history::SecondaryIndex* index)
    : db_(&db), type_(type), index_(index) {}

history::QueryFilter InstanceBrowser::to_query(
    const BrowserFilter& filter) const {
  history::QueryFilter q;
  q.type = type_;
  q.keyword = filter.keyword;
  q.user = filter.user;
  q.from = filter.from;
  q.to = filter.to;
  q.uses = filter.uses;
  return q;
}

BrowserRow InstanceBrowser::make_row(InstanceId id) const {
  const history::Instance& inst = db_->instance(id);
  BrowserRow row;
  row.id = id;
  row.type_name = db_->schema().entity_name(inst.type);
  row.name = inst.name;
  row.user = inst.user;
  row.created = inst.created;
  row.comment = inst.comment;
  row.version = inst.version;
  row.superseded = db_->superseded(id);
  return row;
}

std::vector<BrowserRow> InstanceBrowser::rows(
    const BrowserFilter& filter) const {
  const history::QueryPage page =
      history::run_page(*db_, to_query(filter), index_,
                        std::numeric_limits<std::size_t>::max());
  std::vector<BrowserRow> out;
  out.reserve(page.ids.size());
  for (const InstanceId id : page.ids) out.push_back(make_row(id));
  return out;
}

BrowserPage InstanceBrowser::page(
    const BrowserFilter& filter, std::size_t limit,
    const std::optional<history::PageCursor>& after) const {
  const history::QueryPage executed =
      history::run_page(*db_, to_query(filter), index_, limit, after);
  BrowserPage out;
  out.rows.reserve(executed.ids.size());
  for (const InstanceId id : executed.ids) out.rows.push_back(make_row(id));
  out.next = executed.next;
  out.plan = executed.plan.describe();
  return out;
}

std::vector<InstanceId> InstanceBrowser::select(
    const BrowserFilter& filter) const {
  const history::QueryPage page =
      history::run_page(*db_, to_query(filter), index_,
                        std::numeric_limits<std::size_t>::max());
  return page.ids;
}

std::string InstanceBrowser::render_rows(
    const std::vector<BrowserRow>& rows) const {
  std::string out = "  user          date                        name\n";
  for (const BrowserRow& row : rows) {
    std::string line = "  ";
    std::string user = row.user;
    user.resize(14, ' ');
    line += user;
    line += row.created.to_string();
    line += "  ";
    line += row.name.empty() ? "i" + std::to_string(row.id.value())
                             : row.name;
    if (row.version > 1) line += " (v" + std::to_string(row.version) + ")";
    if (row.superseded) line += " [superseded]";
    if (row.type_name != db_->schema().entity_name(type_)) {
      line += " <" + row.type_name + ">";
    }
    out += line + "\n";
  }
  return out;
}

std::string InstanceBrowser::render(const BrowserFilter& filter) const {
  return "Browser: " + db_->schema().entity_name(type_) + "\n" +
         render_rows(rows(filter));
}

std::string InstanceBrowser::render_page(const BrowserPage& page) const {
  std::string out = "Browser: " + db_->schema().entity_name(type_) +
                    " [" + page.plan + "]\n";
  out += render_rows(page.rows);
  if (page.next) out += "  next: " + page.next->encode() + "\n";
  return out;
}

}  // namespace herc::core
