#include "core/browser.hpp"

#include <algorithm>

#include "support/text.hpp"

namespace herc::core {

using data::InstanceId;

InstanceBrowser::InstanceBrowser(const history::HistoryDb& db,
                                 schema::EntityTypeId type)
    : db_(&db), type_(type) {}

std::vector<BrowserRow> InstanceBrowser::rows(
    const BrowserFilter& filter) const {
  std::vector<BrowserRow> out;
  for (const InstanceId id : db_->instances_of(type_)) {
    const history::Instance& inst = db_->instance(id);
    if (!filter.keyword.empty() &&
        !support::icontains(inst.name, filter.keyword) &&
        !support::icontains(inst.comment, filter.keyword)) {
      continue;
    }
    if (filter.from && inst.created < *filter.from) continue;
    if (filter.to && *filter.to < inst.created) continue;
    if (!filter.user.empty() && inst.user != filter.user) continue;
    if (filter.uses) {
      const auto deps = db_->derived_from(id);
      if (std::find(deps.begin(), deps.end(), *filter.uses) == deps.end()) {
        continue;
      }
    }
    BrowserRow row;
    row.id = id;
    row.type_name = db_->schema().entity_name(inst.type);
    row.name = inst.name;
    row.user = inst.user;
    row.created = inst.created;
    row.comment = inst.comment;
    row.version = inst.version;
    row.superseded = db_->superseded(id);
    out.push_back(std::move(row));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const BrowserRow& a, const BrowserRow& b) {
                     return b.created < a.created;
                   });
  return out;
}

std::vector<InstanceId> InstanceBrowser::select(
    const BrowserFilter& filter) const {
  std::vector<InstanceId> out;
  for (const BrowserRow& row : rows(filter)) out.push_back(row.id);
  return out;
}

std::string InstanceBrowser::render(const BrowserFilter& filter) const {
  std::string out = "Browser: " + db_->schema().entity_name(type_) + "\n";
  out += "  user          date                        name\n";
  for (const BrowserRow& row : rows(filter)) {
    std::string line = "  ";
    std::string user = row.user;
    user.resize(14, ' ');
    line += user;
    line += row.created.to_string();
    line += "  ";
    line += row.name.empty() ? "i" + std::to_string(row.id.value())
                             : row.name;
    if (row.version > 1) line += " (v" + std::to_string(row.version) + ")";
    if (row.superseded) line += " [superseded]";
    if (row.type_name != db_->schema().entity_name(type_)) {
      line += " <" + row.type_name + ">";
    }
    out += line + "\n";
  }
  return out;
}

}  // namespace herc::core
