// The entity-instance browser (Fig. 9, right panel).
//
// Each leaf entity of a flow gets a browser listing its instances; the
// designer filters by keyword, date limits and user limits, optionally
// restricted to instances that *use* a given instance (the "Use
// Dependencies" toggle — a one-step forward-chaining query), then selects
// one or more instances to bind.
//
// Listings execute through the query planner (history/query_planner.hpp):
// when the session has secondary indexes attached the browser picks the
// cheapest access path per filter, and `page` streams a listing cursor by
// cursor so a 10M-instance history never materializes in one reply.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "history/history_db.hpp"
#include "history/query_planner.hpp"

namespace herc::core {

/// Fig. 9's filter controls.
struct BrowserFilter {
  /// Case-insensitive substring over instance name and comment.
  std::string keyword;
  /// Date limits (inclusive).
  std::optional<support::Timestamp> from;
  std::optional<support::Timestamp> to;
  /// Exact creating-user match; empty = everyone.
  std::string user;
  /// Only instances whose derivation used this one ("Use Dependencies").
  std::optional<data::InstanceId> uses;
};

/// One listing row.
struct BrowserRow {
  data::InstanceId id;
  std::string type_name;
  std::string name;
  std::string user;
  support::Timestamp created;
  std::string comment;
  std::uint32_t version = 1;
  bool superseded = false;
};

/// One cursor page of a listing.
struct BrowserPage {
  std::vector<BrowserRow> rows;
  /// Cursor resuming after the last examined row; nullopt = listing done.
  std::optional<history::PageCursor> next;
  /// The access path the planner chose, rendered for EXPLAIN output.
  std::string plan;
};

/// A browser over one entity type (subtypes included).
class InstanceBrowser {
 public:
  /// `index` (the session's secondary indexes) may be null: every listing
  /// then runs as a verified table scan, same answers, scan speed.
  InstanceBrowser(const history::HistoryDb& db, schema::EntityTypeId type,
                  const history::SecondaryIndex* index = nullptr);

  [[nodiscard]] schema::EntityTypeId type() const { return type_; }

  /// Matching rows, newest first.
  [[nodiscard]] std::vector<BrowserRow> rows(
      const BrowserFilter& filter = {}) const;

  /// One page of at most `limit` rows starting after `after` (or at the
  /// newest row).
  [[nodiscard]] BrowserPage page(
      const BrowserFilter& filter, std::size_t limit,
      const std::optional<history::PageCursor>& after = std::nullopt) const;

  /// Instance ids of `rows(filter)` — handy for `bind_set`.
  [[nodiscard]] std::vector<data::InstanceId> select(
      const BrowserFilter& filter = {}) const;

  /// ASCII rendering of the browser pane.
  [[nodiscard]] std::string render(const BrowserFilter& filter = {}) const;

  /// ASCII rendering of one page, with the plan in the header and a
  /// trailing "next" cursor line when more rows remain.
  [[nodiscard]] std::string render_page(const BrowserPage& page) const;

 private:
  [[nodiscard]] history::QueryFilter to_query(
      const BrowserFilter& filter) const;
  [[nodiscard]] BrowserRow make_row(data::InstanceId id) const;
  [[nodiscard]] std::string render_rows(
      const std::vector<BrowserRow>& rows) const;

  const history::HistoryDb* db_;
  schema::EntityTypeId type_;
  const history::SecondaryIndex* index_;
};

}  // namespace herc::core
