// The entity-instance browser (Fig. 9, right panel).
//
// Each leaf entity of a flow gets a browser listing its instances; the
// designer filters by keyword, date limits and user limits, optionally
// restricted to instances that *use* a given instance (the "Use
// Dependencies" toggle — a one-step forward-chaining query), then selects
// one or more instances to bind.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "history/history_db.hpp"

namespace herc::core {

/// Fig. 9's filter controls.
struct BrowserFilter {
  /// Case-insensitive substring over instance name and comment.
  std::string keyword;
  /// Date limits (inclusive).
  std::optional<support::Timestamp> from;
  std::optional<support::Timestamp> to;
  /// Exact creating-user match; empty = everyone.
  std::string user;
  /// Only instances whose derivation used this one ("Use Dependencies").
  std::optional<data::InstanceId> uses;
};

/// One listing row.
struct BrowserRow {
  data::InstanceId id;
  std::string type_name;
  std::string name;
  std::string user;
  support::Timestamp created;
  std::string comment;
  std::uint32_t version = 1;
  bool superseded = false;
};

/// A browser over one entity type (subtypes included).
class InstanceBrowser {
 public:
  InstanceBrowser(const history::HistoryDb& db, schema::EntityTypeId type);

  [[nodiscard]] schema::EntityTypeId type() const { return type_; }

  /// Matching rows, newest first.
  [[nodiscard]] std::vector<BrowserRow> rows(
      const BrowserFilter& filter = {}) const;

  /// Instance ids of `rows(filter)` — handy for `bind_set`.
  [[nodiscard]] std::vector<data::InstanceId> select(
      const BrowserFilter& filter = {}) const;

  /// ASCII rendering of the browser pane.
  [[nodiscard]] std::string render(const BrowserFilter& filter = {}) const;

 private:
  const history::HistoryDb* db_;
  schema::EntityTypeId type_;
};

}  // namespace herc::core
