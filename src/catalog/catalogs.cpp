#include "catalog/catalogs.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/record.hpp"
#include "support/text.hpp"

namespace herc::catalog {

using support::FlowError;

std::vector<EntityEntry> entity_catalog(const schema::TaskSchema& schema) {
  std::vector<EntityEntry> out;
  for (const schema::EntityTypeId id : schema.all()) {
    EntityEntry entry;
    entry.type = id;
    entry.name = schema.entity_name(id);
    entry.is_tool = schema.is_tool(id);
    entry.is_abstract = schema.is_abstract(id);
    entry.is_composite = schema.is_composite(id);
    entry.is_source = schema.is_source(id);
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<ToolEntry> tool_catalog(const tools::ToolRegistry& registry) {
  const schema::TaskSchema& schema = registry.schema();
  std::vector<ToolEntry> out;
  for (const schema::EntityTypeId id : schema.all()) {
    if (!schema.is_tool(id)) continue;
    ToolEntry entry;
    entry.type = id;
    entry.name = schema.entity_name(id);
    for (const tools::Encapsulation* enc : registry.variants(id)) {
      entry.encapsulations.push_back(enc->name);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<DataEntry> data_catalog(
    const history::HistoryDb& db,
    std::optional<schema::EntityTypeId> type) {
  std::vector<DataEntry> out;
  const std::vector<data::InstanceId> ids =
      type ? db.instances_of(*type) : db.all();
  for (const data::InstanceId id : ids) {
    const history::Instance& inst = db.instance(id);
    DataEntry entry;
    entry.instance = id;
    entry.type = inst.type;
    entry.type_name = db.schema().entity_name(inst.type);
    entry.name = inst.name;
    entry.user = inst.user;
    entry.created = inst.created;
    out.push_back(std::move(entry));
  }
  return out;
}

FlowCatalog::FlowCatalog(const schema::TaskSchema& schema)
    : schema_(&schema) {}

void FlowCatalog::save(const graph::TaskGraph& flow) {
  if (contains(flow.name())) {
    throw FlowError("flow catalog already holds a flow named '" +
                    flow.name() + "'");
  }
  flows_.emplace_back(flow.name(), flow.save());
}

void FlowCatalog::save_or_replace(const graph::TaskGraph& flow) {
  for (auto& [name, text] : flows_) {
    if (name == flow.name()) {
      text = flow.save();
      return;
    }
  }
  flows_.emplace_back(flow.name(), flow.save());
}

void FlowCatalog::remove(std::string_view name) {
  const auto it = std::find_if(
      flows_.begin(), flows_.end(),
      [&](const auto& entry) { return entry.first == name; });
  if (it == flows_.end()) {
    throw FlowError("flow catalog has no flow named '" + std::string(name) +
                    "'");
  }
  flows_.erase(it);
}

bool FlowCatalog::contains(std::string_view name) const {
  return std::any_of(flows_.begin(), flows_.end(), [&](const auto& entry) {
    return entry.first == name;
  });
}

std::vector<std::string> FlowCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(flows_.size());
  for (const auto& [name, text] : flows_) out.push_back(name);
  return out;
}

graph::TaskGraph FlowCatalog::instantiate_with_bindings(
    std::string_view name) const {
  for (const auto& [flow_name, text] : flows_) {
    if (flow_name == name) {
      return graph::TaskGraph::load(*schema_, text);
    }
  }
  throw FlowError("flow catalog has no flow named '" + std::string(name) +
                  "'");
}

graph::TaskGraph FlowCatalog::instantiate(std::string_view name) const {
  graph::TaskGraph flow = instantiate_with_bindings(name);
  for (const graph::NodeId n : flow.nodes()) {
    if (!flow.bindings(n).empty()) flow.unbind(n);
  }
  return flow;
}

std::string FlowCatalog::save_all() const {
  std::string out;
  for (const auto& [name, text] : flows_) {
    out += support::RecordWriter("catalogflow").field(name).field(text).str();
    out += "\n";
  }
  return out;
}

FlowCatalog FlowCatalog::load_all(const schema::TaskSchema& schema,
                                  std::string_view text) {
  FlowCatalog catalog(schema);
  for (const std::string& line : support::split(text, '\n')) {
    if (support::trim(line).empty()) continue;
    support::RecordReader rec(line);
    if (rec.kind() != "catalogflow") {
      throw support::ParseError("flow catalog: unknown record '" +
                                rec.kind() + "'");
    }
    const std::string name = rec.next_string();
    std::string body = rec.next_string();
    // Validate eagerly so a corrupt catalog fails at load, not at use.
    (void)graph::TaskGraph::load(schema, body);
    catalog.flows_.emplace_back(name, std::move(body));
  }
  return catalog;
}

graph::TaskGraph start_from_goal(const schema::TaskSchema& schema,
                                 schema::EntityTypeId goal) {
  graph::TaskGraph flow(schema, "goal:" + schema.entity_name(goal));
  flow.add_node(goal);
  return flow;
}

ToolStart start_from_tool(const schema::TaskSchema& schema,
                          schema::EntityTypeId tool) {
  if (!schema.is_tool(tool)) {
    throw FlowError("'" + schema.entity_name(tool) + "' is not a tool");
  }
  ToolStart start{graph::TaskGraph(schema, "tool:" +
                                               schema.entity_name(tool)),
                  graph::NodeId(), {}};
  start.tool_node = start.flow.add_node(tool);
  for (const schema::EntityTypeId id : schema.all()) {
    const schema::ConstructionRule rule = schema.construction(id);
    if (rule.has_tool() && schema.is_ancestor_or_self(rule.tool, tool) &&
        rule.owner == id) {
      start.producible.push_back(id);
    }
  }
  return start;
}

DataStart start_from_data(const schema::TaskSchema& schema,
                          const history::HistoryDb& db,
                          data::InstanceId instance) {
  const history::Instance& inst = db.instance(instance);
  DataStart start{graph::TaskGraph(schema, "data:" +
                                               (inst.name.empty()
                                                    ? std::string("instance")
                                                    : inst.name)),
                  graph::NodeId(), {}};
  start.data_node = start.flow.add_node(inst.type);
  start.flow.bind(start.data_node, instance);
  for (const schema::Usage& use : schema.consumers_of(inst.type)) {
    if (std::find(start.consumers.begin(), start.consumers.end(),
                  use.consumer) == start.consumers.end()) {
      start.consumers.push_back(use.consumer);
    }
  }
  return start;
}

graph::TaskGraph start_from_plan(const FlowCatalog& catalog,
                                 std::string_view name) {
  return catalog.instantiate(name);
}

}  // namespace herc::catalog
