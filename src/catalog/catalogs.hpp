// The four catalogs behind the Hercules "New Task..." dialog (§3.4, §4.1).
//
// A designer starts a task from any of four viewpoints, each backed by a
// catalog:
//   goal-based  — pick an entity type from the *entity catalog*;
//   tool-based  — pick a tool (entity or encapsulation) from the
//                 *tool catalog*;
//   data-based  — pick an existing instance from the *data catalog*;
//   plan-based  — pick a previously saved flow from the *flow catalog*.
//
// All four converge on the same mechanism: a task graph seeded with one
// node (or a whole saved flow) that the designer grows with expand
// operations.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "tools/registry.hpp"

namespace herc::catalog {

/// One row of the entity catalog.
struct EntityEntry {
  schema::EntityTypeId type;
  std::string name;
  bool is_tool = false;
  bool is_abstract = false;
  bool is_composite = false;
  /// Source entities cannot be expanded, only bound.
  bool is_source = false;
};

/// Lists every entity type of the schema (the entity-catalog pane).
[[nodiscard]] std::vector<EntityEntry> entity_catalog(
    const schema::TaskSchema& schema);

/// One row of the tool catalog: a tool entity with its encapsulations.
struct ToolEntry {
  schema::EntityTypeId type;
  std::string name;
  std::vector<std::string> encapsulations;
};

/// Lists every tool entity with its registered encapsulations.
[[nodiscard]] std::vector<ToolEntry> tool_catalog(
    const tools::ToolRegistry& registry);

/// One row of the data catalog: an instance grouped under its entity type.
struct DataEntry {
  data::InstanceId instance;
  schema::EntityTypeId type;
  std::string type_name;
  std::string name;
  std::string user;
  support::Timestamp created;
};

/// Lists instances, optionally restricted to one entity type (with
/// subtypes).
[[nodiscard]] std::vector<DataEntry> data_catalog(
    const history::HistoryDb& db,
    std::optional<schema::EntityTypeId> type = std::nullopt);

/// The flow catalog: a persistent library of saved flows (the plan-based
/// approach; "normally used when repeating a common design activity").
class FlowCatalog {
 public:
  explicit FlowCatalog(const schema::TaskSchema& schema);

  /// Saves a flow under its own name.  Throws `FlowError` on a duplicate.
  void save(const graph::TaskGraph& flow);
  /// Replaces or adds.
  void save_or_replace(const graph::TaskGraph& flow);
  void remove(std::string_view name);

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  /// Instantiates a fresh copy of the saved flow (bindings cleared so the
  /// designer selects instances for the new run).
  [[nodiscard]] graph::TaskGraph instantiate(std::string_view name) const;
  /// Instantiates with the saved bindings kept.
  [[nodiscard]] graph::TaskGraph instantiate_with_bindings(
      std::string_view name) const;

  /// Whole-catalog persistence.
  [[nodiscard]] std::string save_all() const;
  [[nodiscard]] static FlowCatalog load_all(const schema::TaskSchema& schema,
                                            std::string_view text);

 private:
  const schema::TaskSchema* schema_;
  std::vector<std::pair<std::string, std::string>> flows_;  // name -> saved
};

// ---- the four approaches ----------------------------------------------------

/// Goal-based: a flow seeded with the goal entity type.
[[nodiscard]] graph::TaskGraph start_from_goal(
    const schema::TaskSchema& schema, schema::EntityTypeId goal);

/// Tool-based: a flow seeded with the tool entity; `producible` lists the
/// entity types this tool can construct (so the designer can pick one and
/// expand upward).
struct ToolStart {
  graph::TaskGraph flow;
  graph::NodeId tool_node;
  std::vector<schema::EntityTypeId> producible;
};
[[nodiscard]] ToolStart start_from_tool(const schema::TaskSchema& schema,
                                        schema::EntityTypeId tool);

/// Data-based: a flow seeded with (and bound to) an existing instance.
struct DataStart {
  graph::TaskGraph flow;
  graph::NodeId data_node;
  /// Entity types that can consume this instance (expansion targets).
  std::vector<schema::EntityTypeId> consumers;
};
[[nodiscard]] DataStart start_from_data(const schema::TaskSchema& schema,
                                        const history::HistoryDb& db,
                                        data::InstanceId instance);

/// Plan-based: a fresh copy of a saved flow.
[[nodiscard]] graph::TaskGraph start_from_plan(const FlowCatalog& catalog,
                                               std::string_view name);

}  // namespace herc::catalog
