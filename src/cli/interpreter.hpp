// A scriptable command interpreter over a DesignSession.
//
// The 1993 system drove everything from an X11 task window (Fig. 9); this
// reproduction's equivalent is a line-oriented command language covering
// the same operations: starting tasks from any of the four approaches,
// expand/specialize/bind on flows, execution, history browsing and
// queries, consistency maintenance, and session persistence.  The
// `hercules_shell` example wraps it as an interactive REPL / script
// runner; tests drive it directly.
//
// Command summary (the `help` command prints the same):
//   session new <fig1|fig2|full> [user]     session user <name>
//   session save <file>                     session load <file>
//   open <dir> [sync=..] [every=N]          checkpoint
//   store [close|sync]                      runs
//   resume [<run#>]                         fsck <dir> [--repair] [--json]
//   lint schema | flow <f> [goal <node>] [parallel] [continue] | store <dir>
//   import <Entity> <name> <<END ... END    import <Entity> <name> ""
//   flow new <f> goal <Entity> | plan <name>
//   flow expand <f> <node> [optional]       flow expandup <f> <node> <Entity>
//   flow specialize <f> <node> <Subtype>    flow connect <f> <node> <node>
//   flow cooutput <f> <node> <Entity>       flow unexpand <f> <node>
//   flow bind <f> <node> <iN...>            flow unbind <f> <node>
//   flow show <f> | lisp <f> | dot <f> | bipartite <f>
//   flow save-plan <f>                      plans
//   run <f> [parallel] [reuse]              auto <Entity> [run]
//   browse <Entity> [keyword=..] [user=..] [uses=iN]
//   history <iN>   uses <iN>   trace <iN> backward|forward
//   versions <iN>  payload <iN>  annotate <iN> <name> [comment...]
//   stale <iN>     retrace <iN>  decompose <iN>
//   entities   tools   echo <text>   help   quit
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/session.hpp"
#include "graph/task_graph.hpp"
#include "support/severity.hpp"

namespace herc::cli {

/// Result of executing one command.
enum class CommandStatus {
  kOk,
  kError,  ///< the command failed; the message was printed and recorded
  kQuit,   ///< a `quit` command was issued
};

/// Whether a command only reads the session (safe to execute under a
/// shared lock, many at once) or may mutate it (needs exclusive access).
/// The server's reader-writer access layer schedules with this; the
/// classification is by command name, and anything unrecognized is
/// conservatively a write.
enum class CommandAccess { kRead, kWrite };

/// Classifies one command line.  Flow-building commands are reads: each
/// interpreter keeps its own flow workspace, so `flow expand`/`bind` touch
/// only connection-local state (they read the shared schema and history).
/// `flow save-plan` publishes into the shared catalog and is a write, as
/// is anything that records, recovers or reconfigures.
[[nodiscard]] CommandAccess command_access(std::string_view line);

class Interpreter {
 public:
  /// Output (listings, renderings) goes to `out`.  A default session over
  /// the full schema with user "designer" is created; `session new`
  /// replaces it.
  explicit Interpreter(std::ostream& out);

  /// Shares an externally owned session (the server's): this interpreter
  /// keeps its own flow workspace but runs every command against
  /// `session`.  Commands that would swap or detach state other clients
  /// are using — `session new`, `session load`, `open`, `store close` —
  /// are refused.  `session` must outlive the interpreter.
  Interpreter(std::ostream& out, core::DesignSession& session);

  /// Executes one command.  `payload` supplies the body for commands that
  /// take one (`import`); scripts provide it via heredocs.
  CommandStatus execute(std::string_view line, std::string payload = "");

  /// Executes a script: one command per line, `#` comments, and
  /// `<<TOKEN ... TOKEN` heredoc payloads.  Stops at `quit` or, when
  /// `stop_on_error` is set, at the first failure.  Returns the number of
  /// failed commands.
  std::size_t run_script(std::string_view text, bool stop_on_error = false);

  [[nodiscard]] core::DesignSession& session() { return *session_; }
  /// The flows built so far in this session, by name (the shell's --lint
  /// mode replays a script and then lints every flow it created).
  [[nodiscard]] const std::map<std::string, graph::TaskGraph>& named_flows()
      const {
    return flows_;
  }
  /// The message of the most recent failed command ("" when none).
  [[nodiscard]] const std::string& last_error() const { return last_error_; }
  /// Severity of the most recent command, in the shared fsck/lint exit
  /// convention: kClean on success, kWarning when the command succeeded
  /// but its report carried warnings (fsck, lint), kError on failure —
  /// including a `run`/`resume` that finished with failed or skipped
  /// tasks.  Shells and the server map this straight onto exit codes and
  /// the wire's result frame.
  [[nodiscard]] support::Severity last_severity() const {
    return last_severity_;
  }

 private:
  using Args = std::vector<std::string>;

  void dispatch(const Args& args, const std::string& payload);

  // Command families.
  void cmd_session(const Args& args);
  void cmd_open(const Args& args);
  void cmd_store(const Args& args);
  void cmd_import(const Args& args, const std::string& payload);
  void cmd_flow(const Args& args);
  void cmd_run(const Args& args);
  void cmd_runs(const Args& args);
  void cmd_resume(const Args& args);
  void cmd_fsck(const Args& args);
  void cmd_lint(const Args& args);
  void cmd_auto(const Args& args);
  void cmd_browse(const Args& args);
  void cmd_history_query(const Args& args);
  void cmd_help();

  // Argument resolution.
  [[nodiscard]] graph::TaskGraph& flow_ref(const std::string& name);
  [[nodiscard]] graph::NodeId node_ref(const graph::TaskGraph& flow,
                                       const std::string& token) const;
  [[nodiscard]] data::InstanceId instance_ref(const std::string& token) const;

  void print_instance_line(data::InstanceId id);

  /// Throws when this interpreter shares its session (see the two-arg
  /// constructor) and `what` names a command that must not run there.
  void refuse_when_shared(const std::string& what) const;

  std::ostream* out_;
  std::unique_ptr<core::DesignSession> owned_;
  /// `owned_.get()`, or the externally owned shared session.
  core::DesignSession* session_;
  bool shared_session_ = false;
  std::map<std::string, graph::TaskGraph> flows_;
  std::string last_error_;
  support::Severity last_severity_ = support::Severity::kClean;
};

}  // namespace herc::cli
