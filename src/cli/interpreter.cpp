#include "cli/interpreter.hpp"

#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "analyze/flow_lint.hpp"
#include "analyze/plan_check.hpp"
#include "analyze/schema_lint.hpp"
#include "exec/automation.hpp"
#include "exec/consistency.hpp"
#include "graph/bipartite.hpp"
#include "history/flow_trace.hpp"
#include "history/query_language.hpp"
#include "schema/schema_io.hpp"
#include "schema/standard_schemas.hpp"
#include "storage/fsck.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::cli {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;
using support::HercError;

namespace {

/// Errors raised for malformed commands (as opposed to framework errors
/// raised by the operations themselves).
class UsageError : public HercError {
 public:
  using HercError::HercError;
};

[[noreturn]] void usage(const std::string& message) {
  throw UsageError("usage: " + message);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw UsageError("cannot read file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw UsageError("cannot write file '" + path + "'");
  out << content;
}

schema::TaskSchema builtin_schema(const std::string& name) {
  if (name == "fig1") return schema::make_fig1_schema();
  if (name == "fig2") return schema::make_fig2_schema();
  if (name == "full") return schema::make_full_schema();
  usage("session new <fig1|fig2|full> [user]");
}

}  // namespace

CommandAccess command_access(std::string_view line) {
  const std::vector<std::string> args =
      support::split_ws(support::trim(line));
  if (args.empty() || args[0][0] == '#') return CommandAccess::kRead;
  const std::string& cmd = args[0];
  // Pure queries and renderings over shared state.
  if (cmd == "echo" || cmd == "help" || cmd == "quit" || cmd == "exit" ||
      cmd == "entities" || cmd == "tools" || cmd == "plans" ||
      cmd == "runs" || cmd == "failures" || cmd == "browse" ||
      cmd == "find" || cmd == "history" || cmd == "uses" || cmd == "trace" ||
      cmd == "versions" || cmd == "payload" || cmd == "stale") {
    return CommandAccess::kRead;
  }
  if (cmd == "schema") {
    return args.size() > 1 && args[1] == "show" ? CommandAccess::kRead
                                                : CommandAccess::kWrite;
  }
  // Flow building mutates only the interpreter's own workspace;
  // `save-plan` publishes into the session's shared flow catalog.
  if (cmd == "flow") {
    return args.size() > 1 && args[1] == "save-plan" ? CommandAccess::kWrite
                                                     : CommandAccess::kRead;
  }
  if (cmd == "lint") {
    // `lint store` syncs the open store's journal first; the others only
    // read the schema / a workspace flow.
    return args.size() > 1 && args[1] == "store" ? CommandAccess::kWrite
                                                 : CommandAccess::kRead;
  }
  if (cmd == "session") {
    return args.size() > 1 && args[1] == "save" ? CommandAccess::kRead
                                                : CommandAccess::kWrite;
  }
  // Everything else — import, run, resume, auto, annotate, retrace,
  // decompose, open, store, checkpoint, fsck (journal sync) — mutates, and
  // so does any command this classifier has never heard of.
  return CommandAccess::kWrite;
}

Interpreter::Interpreter(std::ostream& out)
    : out_(&out),
      owned_(std::make_unique<core::DesignSession>(
          schema::make_full_schema())),
      session_(owned_.get()) {}

Interpreter::Interpreter(std::ostream& out, core::DesignSession& session)
    : out_(&out), session_(&session), shared_session_(true) {}

void Interpreter::refuse_when_shared(const std::string& what) const {
  if (!shared_session_) return;
  throw UsageError("'" + what + "' is not available on a shared session: "
                   "it would replace or detach state other clients are "
                   "using");
}

CommandStatus Interpreter::execute(std::string_view line,
                                   std::string payload) {
  std::string_view body = support::trim(line);
  if (!body.empty() && body[0] == '#') return CommandStatus::kOk;
  const Args args = support::split_ws(body);
  if (args.empty()) return CommandStatus::kOk;
  if (args[0] == "quit" || args[0] == "exit") return CommandStatus::kQuit;
  last_severity_ = support::Severity::kClean;
  try {
    dispatch(args, payload);
    return last_severity_ == support::Severity::kError ? CommandStatus::kError
                                                       : CommandStatus::kOk;
  } catch (const std::exception& e) {
    last_error_ = e.what();
    last_severity_ = support::Severity::kError;
    *out_ << "error: " << e.what() << "\n";
    return CommandStatus::kError;
  }
}

std::size_t Interpreter::run_script(std::string_view text,
                                    bool stop_on_error) {
  const auto lines = support::split(text, '\n');
  std::size_t failures = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    std::string payload;
    // Heredoc: `... <<TOKEN` followed by payload lines until TOKEN.
    const std::size_t marker = line.rfind("<<");
    if (marker != std::string::npos &&
        support::trim(line.substr(marker + 2)).find(' ') ==
            std::string::npos &&
        !support::trim(line.substr(marker + 2)).empty()) {
      const std::string token(support::trim(line.substr(marker + 2)));
      line = line.substr(0, marker);
      bool closed = false;
      for (++i; i < lines.size(); ++i) {
        if (support::trim(lines[i]) == token) {
          closed = true;
          break;
        }
        payload += lines[i];
        payload += '\n';
      }
      if (!closed) {
        last_error_ = "unterminated heredoc <<" + token;
        *out_ << "error: " << last_error_ << "\n";
        return failures + 1;
      }
    }
    const CommandStatus status = execute(line, std::move(payload));
    if (status == CommandStatus::kQuit) break;
    if (status == CommandStatus::kError) {
      ++failures;
      if (stop_on_error) break;
    }
  }
  return failures;
}

void Interpreter::dispatch(const Args& args, const std::string& payload) {
  const std::string& cmd = args[0];
  if (cmd == "session") {
    cmd_session(args);
  } else if (cmd == "schema") {
    if (args.size() == 2 && args[1] == "show") {
      *out_ << schema::write_schema(session_->schema());
    } else if (args.size() == 2 && args[1] == "extend") {
      session_->extend_schema(payload);
      *out_ << "schema extended: now " << session_->schema().size()
            << " entities\n";
    } else {
      usage("schema show | schema extend <<END ... END");
    }
  } else if (cmd == "open") {
    cmd_open(args);
  } else if (cmd == "checkpoint") {
    if (args.size() != 1) usage("checkpoint");
    session_->checkpoint_storage();
    const storage::DurableHistory& store = *session_->storage();
    *out_ << "checkpoint: epoch " << store.epoch() << ", "
          << session_->db().size() << " instances snapshotted, journal reset\n";
  } else if (cmd == "store") {
    cmd_store(args);
  } else if (cmd == "import") {
    cmd_import(args, payload);
  } else if (cmd == "flow") {
    cmd_flow(args);
  } else if (cmd == "run") {
    cmd_run(args);
  } else if (cmd == "runs") {
    cmd_runs(args);
  } else if (cmd == "resume") {
    cmd_resume(args);
  } else if (cmd == "fsck") {
    cmd_fsck(args);
  } else if (cmd == "lint") {
    cmd_lint(args);
  } else if (cmd == "auto") {
    cmd_auto(args);
  } else if (cmd == "browse") {
    cmd_browse(args);
  } else if (cmd == "find") {
    // Pass the original token sequence through to the query language.
    std::string query;
    for (const std::string& token : args) {
      if (!query.empty()) query += ' ';
      query += token;
    }
    for (const InstanceId id :
         history::run_query(session_->db(), query, session_->indexes())) {
      *out_ << "  ";
      print_instance_line(id);
    }
  } else if (cmd == "history" || cmd == "uses" || cmd == "trace" ||
             cmd == "versions" || cmd == "payload" || cmd == "annotate" ||
             cmd == "stale" || cmd == "retrace" || cmd == "decompose") {
    cmd_history_query(args);
  } else if (cmd == "failures") {
    // §4.2-style failure query: which tasks failed, with what inputs?
    for (const InstanceId id : session_->db().failures()) {
      const history::Instance& inst = session_->db().instance(id);
      const char* label =
          inst.status == history::InstanceStatus::kFailed        ? "failed "
          : inst.status == history::InstanceStatus::kQuarantined ? "quarantined"
                                                                 : "skipped";
      *out_ << "  " << label
            << " " << session_->schema().entity_name(inst.type) << " i"
            << id.value() << " (task '" << inst.derivation.task << "'";
      if (!inst.derivation.inputs.empty()) {
        *out_ << ", inputs:";
        for (const InstanceId in : inst.derivation.inputs) {
          *out_ << " i" << in.value();
        }
      }
      *out_ << "): " << inst.comment << "\n";
    }
  } else if (cmd == "entities") {
    for (const auto& entry : catalog::entity_catalog(session_->schema())) {
      *out_ << "  " << entry.name << (entry.is_tool ? " [tool]" : "")
            << (entry.is_abstract ? " [abstract]" : "")
            << (entry.is_composite ? " [composite]" : "")
            << (entry.is_source ? " [source]" : "") << "\n";
    }
  } else if (cmd == "tools") {
    for (const auto& entry : catalog::tool_catalog(session_->tools())) {
      *out_ << "  " << entry.name << ":";
      for (const std::string& enc : entry.encapsulations) {
        *out_ << " " << enc;
      }
      *out_ << "\n";
    }
  } else if (cmd == "plans") {
    for (const std::string& name : session_->flows().names()) {
      *out_ << "  " << name << "\n";
    }
  } else if (cmd == "echo") {
    for (std::size_t i = 1; i < args.size(); ++i) {
      *out_ << (i > 1 ? " " : "") << args[i];
    }
    *out_ << "\n";
  } else if (cmd == "help") {
    cmd_help();
  } else {
    usage("unknown command '" + cmd + "'; try 'help'");
  }
}

void Interpreter::cmd_session(const Args& args) {
  if (args.size() >= 3 && args[1] == "new") {
    refuse_when_shared("session new");
    const std::string user = args.size() > 3 ? args[3] : "designer";
    owned_ = std::make_unique<core::DesignSession>(builtin_schema(args[2]),
                                                   user);
    session_ = owned_.get();
    flows_.clear();
    *out_ << "session over schema '" << session_->schema().name()
          << "' for user '" << user << "'\n";
  } else if (args.size() == 3 && args[1] == "user") {
    session_->set_user(args[2]);
  } else if (args.size() == 3 && args[1] == "save") {
    write_file(args[2], session_->save());
    *out_ << "session saved to " << args[2] << "\n";
  } else if (args.size() == 3 && args[1] == "load") {
    refuse_when_shared("session load");
    owned_ = core::DesignSession::load(read_file(args[2]));
    session_ = owned_.get();
    flows_.clear();
    *out_ << "session loaded: " << session_->db().size() << " instances\n";
  } else {
    usage("session new <fig1|fig2|full> [user] | user <name> | "
          "save <file> | load <file>");
  }
}

void Interpreter::cmd_open(const Args& args) {
  static const char* kUsage =
      "open <dir> [sync=none|interval|commit] [every=N]";
  refuse_when_shared("open");
  if (args.size() < 2) usage(kUsage);
  storage::StoreOptions options;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "sync=none") {
      options.journal.sync = storage::SyncPolicy::kNone;
    } else if (args[i] == "sync=interval") {
      options.journal.sync = storage::SyncPolicy::kInterval;
    } else if (args[i] == "sync=commit") {
      options.journal.sync = storage::SyncPolicy::kCommit;
    } else if (args[i].rfind("every=", 0) == 0) {
      try {
        options.checkpoint_every = std::stoul(args[i].substr(6));
      } catch (const std::exception&) {
        usage(kUsage);
      }
    } else {
      usage(kUsage);
    }
  }
  const storage::RecoveryReport report =
      session_->open_storage(args[1], options);
  if (report.created) {
    *out_ << "store created at " << args[1];
    if (session_->db().size() > 0) {
      *out_ << " (" << session_->db().size()
            << " existing instances checkpointed)";
    }
    *out_ << "\n";
  } else {
    *out_ << "store opened at " << args[1] << ": epoch " << report.epoch
          << ", " << report.snapshot_instances << " snapshot + "
          << report.journal_records_applied << " journal records";
    if (report.journal_records_discarded > 0) {
      *out_ << " (" << report.journal_records_discarded
            << " pre-checkpoint records discarded)";
    }
    if (report.torn_tail) *out_ << " (torn tail truncated)";
    *out_ << "\n";
  }
  if (report.interrupted_runs > 0) {
    *out_ << "  recovery: " << report.interrupted_runs
          << " interrupted run(s), " << report.quarantined
          << " partial product(s) quarantined ('runs' lists them, "
             "'resume' re-runs)\n";
  }
}

void Interpreter::cmd_runs(const Args& args) {
  if (args.size() != 1) usage("runs");
  const auto& runs = session_->db().runs();
  if (runs.empty()) {
    *out_ << "no runs recorded\n";
    return;
  }
  for (const history::RunRecord& run : runs) {
    *out_ << "  run #" << run.id << "  flow '" << run.flow_name << "'";
    if (!run.goal.empty()) *out_ << " goal " << run.goal;
    *out_ << " by " << run.user << ": ";
    if (run.open()) {
      *out_ << "OPEN (" << run.tasks_finished() << "/" << run.tasks.size()
            << " started tasks finished; resumable)";
    } else {
      *out_ << run.outcome << " (" << run.tasks_finished() << "/"
            << run.tasks.size() << " tasks finished)";
    }
    *out_ << "\n";
  }
}

void Interpreter::cmd_resume(const Args& args) {
  if (args.size() > 2) usage("resume [<run#>]");
  std::uint64_t run_id = 0;
  if (args.size() == 2) {
    std::string token = args[1];
    if (!token.empty() && token[0] == '#') token = token.substr(1);
    try {
      std::size_t pos = 0;
      run_id = std::stoull(token, &pos);
      if (pos != token.size()) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      usage("resume [<run#>]");
    }
  } else {
    const auto open = session_->db().open_runs();
    if (open.empty()) {
      *out_ << "no interrupted runs; nothing to resume\n";
      return;
    }
    run_id = open.back()->id;
  }
  const exec::ExecResult result = session_->resume_run(run_id);
  *out_ << "resumed run #" << run_id << ": ran " << result.tasks_run
        << " tasks (" << result.tasks_reused << " reused";
  if (result.tasks_failed > 0 || result.tasks_skipped > 0) {
    *out_ << ", " << result.tasks_failed << " failed, "
          << result.tasks_skipped << " skipped";
  }
  *out_ << ")\n";
  if (!result.complete()) {
    last_error_ = "resume incomplete: " +
                  std::to_string(result.tasks_failed) + " failed, " +
                  std::to_string(result.tasks_skipped) + " skipped";
    last_severity_ = support::Severity::kError;
  }
}

void Interpreter::cmd_fsck(const Args& args) {
  static const char* kUsage = "fsck <dir> [--repair] [--json]";
  storage::FsckOptions options;
  bool json = false;
  std::string dir;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--repair") {
      options.repair = true;
    } else if (args[i] == "--json") {
      json = true;
    } else if (dir.empty()) {
      dir = args[i];
    } else {
      usage(kUsage);
    }
  }
  if (dir.empty()) usage(kUsage);
  // fsck reads the on-disk state; when auditing the store this session has
  // open, flush its journal buffer first so the audit sees every record.
  // Repair, however, rewrites the snapshot and replaces the journal — doing
  // that under the live handle would leave the open store's in-memory image
  // and journal handle stale, clobbering the repaired files on the next
  // append or checkpoint.
  if (session_->storage() != nullptr) {
    std::error_code ec;
    if (std::filesystem::equivalent(session_->storage()->dir(), dir, ec)) {
      if (options.repair) {
        throw support::HistoryError(
            "fsck --repair: '" + dir +
            "' is the store this session has open; run 'store close' "
            "first, then repair and reopen");
      }
      session_->storage()->sync();
    }
  }
  const storage::FsckReport report = storage::fsck_store(dir, options);
  *out_ << (json ? report.render_json() : report.render());
  if (report.severity() == storage::FsckSeverity::kCorruption) {
    throw support::HistoryError("fsck: corruption detected in '" + dir +
                                "' (see report above)");
  }
  if (report.severity() == storage::FsckSeverity::kWarning) {
    last_severity_ = support::Severity::kWarning;
  }
}

void Interpreter::cmd_lint(const Args& args) {
  static const char* kUsage =
      "lint schema [--json] | lint flow <f> [goal <node>] [parallel] "
      "[continue|besteffort] [--json] | lint store <dir> [--json]";
  bool json = false;
  Args rest;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--json") {
      json = true;
    } else {
      rest.push_back(args[i]);
    }
  }
  if (rest.empty()) usage(kUsage);
  analyze::LintReport report;
  if (rest[0] == "schema") {
    if (rest.size() != 1) usage(kUsage);
    report = analyze::lint_schema(session_->schema());
  } else if (rest[0] == "flow") {
    if (rest.size() < 2) usage(kUsage);
    TaskGraph& flow = flow_ref(rest[1]);
    analyze::FlowLintOptions flow_opts;
    flow_opts.db = &session_->db();
    flow_opts.tools = &session_->tools();
    // The plan pass simulates the schedule the designer intends, so its
    // toggles mirror `run`'s; without `parallel` or `continue` it has
    // nothing to check (a serial fail-fast run has no races).
    analyze::PlanCheckOptions plan_opts;
    plan_opts.parallel = false;
    for (std::size_t i = 2; i < rest.size(); ++i) {
      if (rest[i] == "goal") {
        if (i + 1 >= rest.size()) usage(kUsage);
        flow_opts.goal = node_ref(flow, rest[++i]);
      } else if (rest[i] == "parallel") {
        plan_opts.parallel = true;
      } else if (rest[i] == "continue" || rest[i] == "besteffort") {
        plan_opts.continue_on_failure = true;
      } else {
        usage(kUsage);
      }
    }
    report = analyze::lint_flow(flow, flow_opts);
    report.merge(analyze::lint_plan(flow, plan_opts));
  } else if (rest[0] == "store") {
    if (rest.size() != 2) usage(kUsage);
    report = analyze::LintReport("store '" + rest[1] + "'");
    // Cross-call into fsck for the on-disk checks: fsck reads raw store
    // files (it is deliberately schema-less), so lint wraps it rather than
    // the other way round.  Sync first so the audit sees this session's
    // buffered records (same rule as `fsck`).
    const bool own_store =
        session_->storage() != nullptr && [&] {
          std::error_code ec;
          return std::filesystem::equivalent(session_->storage()->dir(),
                                             rest[1], ec);
        }();
    if (own_store) session_->storage()->sync();
    const storage::FsckReport fsck = storage::fsck_store(rest[1]);
    for (const storage::FsckFinding& f : fsck.findings) {
      report.add(f.severity == support::Severity::kError ? "HL302" : "HL301",
                 f.severity, "store '" + rest[1] + "'",
                 f.code + ": " + f.detail,
                 "run 'fsck " + rest[1] + " --repair' to fix what is "
                 "repairable");
    }
    // The store-only checks fsck cannot do: each interrupted run journals
    // its bound flow, which this session *can* interpret against its
    // schema — lint them so a resume's defects surface before re-running.
    if (own_store) {
      for (const history::RunRecord* run : session_->db().open_runs()) {
        if (run->flow_text.empty()) continue;
        try {
          TaskGraph flow =
              TaskGraph::load(session_->schema(), run->flow_text);
          analyze::FlowLintOptions flow_opts;
          flow_opts.db = &session_->db();
          flow_opts.tools = &session_->tools();
          analyze::LintReport flow_report = analyze::lint_flow(flow,
                                                               flow_opts);
          for (analyze::Diagnostic d : flow_report.diagnostics()) {
            d.location = "run #" + std::to_string(run->id) + ", " +
                         d.location;
            report.add(std::move(d));
          }
        } catch (const HercError& e) {
          report.add("HL303", support::Severity::kError,
                     "run #" + std::to_string(run->id),
                     std::string("journaled flow does not load against the "
                                 "session schema: ") + e.what(),
                     "the run cannot be resumed in this session");
        }
      }
    }
  } else {
    usage(kUsage);
  }
  *out_ << (json ? report.render_json() : report.render());
  // Mirror cmd_fsck: error severity becomes a command failure so scripts
  // (and `run_script(stop_on_error)`) propagate it.
  if (report.severity() == support::Severity::kError) {
    throw HercError("lint: errors in " + report.subject() +
                    " (see report above)");
  }
  if (report.severity() == support::Severity::kWarning) {
    last_severity_ = support::Severity::kWarning;
  }
}

void Interpreter::cmd_store(const Args& args) {
  if (args.size() == 2 && args[1] == "close") {
    refuse_when_shared("store close");
    if (session_->storage() == nullptr) {
      *out_ << "no store open\n";
      return;
    }
    session_->close_storage();
    *out_ << "store closed (history stays in memory)\n";
    return;
  }
  if (args.size() == 2 && args[1] == "sync") {
    if (session_->storage() == nullptr) usage("store sync (no store open)");
    session_->storage()->sync();
    *out_ << "journal synced\n";
    return;
  }
  if (args.size() != 1) usage("store [close|sync]");
  const storage::DurableHistory* store = session_->storage();
  if (store == nullptr) {
    *out_ << "no store open\n";
    return;
  }
  *out_ << "store " << store->dir() << ": epoch " << store->epoch() << ", "
        << session_->db().size() << " instances, "
        << store->records_journaled() << " records / "
        << store->bytes_journaled() << " bytes journaled this session\n";
}

void Interpreter::cmd_import(const Args& args, const std::string& payload) {
  if (args.size() < 3) usage("import <Entity> <name> [\"\"] [<<END ...]");
  std::string body = payload;
  if (args.size() >= 4 && args[3] == "\"\"") body.clear();
  const InstanceId id = session_->import_data(args[1], args[2], body);
  *out_ << "imported i" << id.value() << " (" << args[1] << " '" << args[2]
        << "', " << body.size() << " bytes)\n";
}

TaskGraph& Interpreter::flow_ref(const std::string& name) {
  const auto it = flows_.find(name);
  if (it == flows_.end()) {
    throw UsageError("no flow named '" + name + "'; create one with "
                     "'flow new " + name + " goal <Entity>'");
  }
  return it->second;
}

NodeId Interpreter::node_ref(const TaskGraph& flow,
                             const std::string& token) const {
  try {
    std::size_t pos = 0;
    const unsigned long v = std::stoul(token, &pos);
    if (pos != token.size()) throw std::invalid_argument("trailing");
    const NodeId id(static_cast<std::uint32_t>(v));
    (void)flow.node(id);  // validates
    return id;
  } catch (const std::invalid_argument&) {
    throw UsageError("'" + token + "' is not a node id (use the numbers "
                     "from 'flow show')");
  }
}

InstanceId Interpreter::instance_ref(const std::string& token) const {
  if (token.size() < 2 || token[0] != 'i') {
    throw UsageError("'" + token + "' is not an instance ref (expected iN)");
  }
  try {
    std::size_t pos = 0;
    const unsigned long v = std::stoul(token.substr(1), &pos);
    if (pos + 1 != token.size()) throw std::invalid_argument("trailing");
    const InstanceId id(static_cast<std::uint32_t>(v));
    (void)session_->db().instance(id);  // validates
    return id;
  } catch (const std::invalid_argument&) {
    throw UsageError("'" + token + "' is not an instance ref (expected iN)");
  }
}

void Interpreter::cmd_flow(const Args& args) {
  if (args.size() < 3) usage("flow <op> <flow> ...");
  const std::string& op = args[1];
  const std::string& name = args[2];
  if (op == "new") {
    if (args.size() != 5) usage("flow new <f> goal <Entity> | plan <name>");
    if (flows_.contains(name)) {
      throw UsageError("flow '" + name + "' already exists");
    }
    if (args[3] == "goal") {
      flows_.emplace(name, session_->task_from_goal(args[4]));
    } else if (args[3] == "plan") {
      flows_.emplace(name, session_->task_from_plan(args[4]));
    } else {
      usage("flow new <f> goal <Entity> | plan <name>");
    }
    *out_ << "flow '" << name << "' created\n";
    return;
  }
  TaskGraph& flow = flow_ref(name);
  if (op == "expand") {
    if (args.size() < 4) usage("flow expand <f> <node> [optional]");
    graph::ExpandOptions options;
    options.include_optional = args.size() > 4 && args[4] == "optional";
    const auto created = flow.expand(node_ref(flow, args[3]), options);
    *out_ << "expanded: " << created.size() << " nodes created\n";
  } else if (op == "expandup") {
    if (args.size() != 5) usage("flow expandup <f> <node> <Entity>");
    const NodeId consumer = flow.expand_up(
        node_ref(flow, args[3]), session_->schema().require(args[4]));
    *out_ << "consumer node " << consumer.value() << " created\n";
  } else if (op == "specialize") {
    if (args.size() != 5) usage("flow specialize <f> <node> <Subtype>");
    flow.specialize(node_ref(flow, args[3]),
                    session_->schema().require(args[4]));
  } else if (op == "connect") {
    if (args.size() != 5) usage("flow connect <f> <consumer> <input>");
    flow.connect(node_ref(flow, args[3]), node_ref(flow, args[4]));
  } else if (op == "cooutput") {
    if (args.size() != 5) usage("flow cooutput <f> <node> <Entity>");
    const NodeId out_node = flow.add_co_output(
        node_ref(flow, args[3]), session_->schema().require(args[4]));
    *out_ << "co-output node " << out_node.value() << " created\n";
  } else if (op == "unexpand") {
    if (args.size() != 4) usage("flow unexpand <f> <node>");
    flow.unexpand(node_ref(flow, args[3]));
  } else if (op == "bind") {
    if (args.size() < 5) usage("flow bind <f> <node> <iN...>");
    std::vector<InstanceId> instances;
    for (std::size_t i = 4; i < args.size(); ++i) {
      instances.push_back(instance_ref(args[i]));
    }
    flow.bind_set(node_ref(flow, args[3]), std::move(instances));
  } else if (op == "unbind") {
    if (args.size() != 4) usage("flow unbind <f> <node>");
    flow.unbind(node_ref(flow, args[3]));
  } else if (op == "show") {
    *out_ << session_->render_task_window(flow);
  } else if (op == "lisp") {
    for (const NodeId goal : flow.goals()) {
      *out_ << flow.to_lisp(goal) << "\n";
    }
  } else if (op == "dot") {
    *out_ << flow.to_dot();
  } else if (op == "bipartite") {
    *out_ << graph::to_bipartite(flow).render_text();
  } else if (op == "save-plan") {
    session_->flows().save_or_replace(flow);
    *out_ << "plan '" << flow.name() << "' saved\n";
  } else {
    usage("unknown flow operation '" + op + "'");
  }
}

void Interpreter::cmd_run(const Args& args) {
  static const char* kUsage =
      "run <f> [parallel] [reuse] [continue|besteffort] [retries=N] "
      "[timeout=MS] [backoff=MS] [latency=MS] [faults=SEED]";
  if (args.size() < 2) usage(kUsage);
  TaskGraph& flow = flow_ref(args[1]);
  exec::ExecOptions options;
  const auto uint_arg = [&](const std::string& token, std::size_t prefix) {
    try {
      std::size_t pos = 0;
      const unsigned long v = std::stoul(token.substr(prefix), &pos);
      if (prefix + pos != token.size()) throw std::invalid_argument("trail");
      return v;
    } catch (const std::invalid_argument&) {
      usage(kUsage);
    }
  };
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "parallel") {
      options.parallel = true;
    } else if (args[i] == "reuse") {
      options.reuse_existing = true;
    } else if (args[i] == "continue") {
      options.fault.mode = exec::FailureMode::kContinueBranches;
    } else if (args[i] == "besteffort") {
      options.fault.mode = exec::FailureMode::kBestEffort;
    } else if (args[i].rfind("retries=", 0) == 0) {
      options.fault.max_retries = uint_arg(args[i], 8);
    } else if (args[i].rfind("timeout=", 0) == 0) {
      options.fault.timeout = std::chrono::milliseconds(uint_arg(args[i], 8));
    } else if (args[i].rfind("backoff=", 0) == 0) {
      options.fault.backoff = std::chrono::milliseconds(uint_arg(args[i], 8));
    } else if (args[i].rfind("latency=", 0) == 0) {
      // Artificial per-task latency: emulates slow external tools, which
      // is how tests and the server smoke script hold a run in flight long
      // enough to interrupt it.
      options.task_latency = std::chrono::milliseconds(uint_arg(args[i], 8));
    } else if (args[i].rfind("faults=", 0) == 0) {
      // Deterministic pseudo-random tool failures for this run (the chaos
      // harness's fault plan); 0 disables.  Pair with continue/besteffort
      // and retries, or the first exhausted task aborts the run.
      options.fault.seed = uint_arg(args[i], 7);
    } else {
      usage(kUsage);
    }
  }
  const exec::ExecResult result = session_->run(flow, options);
  *out_ << "ran " << result.tasks_run << " tasks ("
        << result.tasks_reused << " reused";
  if (result.tasks_failed > 0 || result.tasks_skipped > 0) {
    *out_ << ", " << result.tasks_failed << " failed, "
          << result.tasks_skipped << " skipped";
  }
  *out_ << ")\n";
  for (const NodeId goal : flow.goals()) {
    for (const InstanceId id : result.of(goal)) {
      *out_ << "  produced ";
      print_instance_line(id);
    }
  }
  if (!result.complete()) {
    for (const auto& [node, outcome] : result.outcomes) {
      if (outcome.status == exec::TaskStatus::kOk) continue;
      const char* verdict =
          outcome.status == exec::TaskStatus::kSkipped  ? "skipped"
          : outcome.status == exec::TaskStatus::kPartial ? "partial"
                                                         : "FAILED";
      *out_ << "  " << verdict << " "
            << session_->schema().entity_name(flow.node(node).type);
      if (!outcome.errors.empty()) *out_ << ": " << outcome.errors.front();
      *out_ << "\n";
    }
    // The details are already printed; the command itself still failed —
    // scripts and the shell's exit code must see an incomplete run as an
    // error, not a success with sad output.
    last_error_ = "run incomplete: " + std::to_string(result.tasks_failed) +
                  " failed, " + std::to_string(result.tasks_skipped) +
                  " skipped";
    last_severity_ = support::Severity::kError;
  }
}

void Interpreter::cmd_auto(const Args& args) {
  if (args.size() < 2) usage("auto <Entity> [run]");
  const TaskGraph flow =
      exec::auto_flow(session_->db(), session_->schema().require(args[1]));
  *out_ << session_->render_task_window(flow);
  if (args.size() > 2 && args[2] == "run") {
    const exec::ExecResult result = session_->run(flow);
    *out_ << "ran " << result.tasks_run << " tasks\n";
    for (const InstanceId id : result.of(flow.goals().front())) {
      *out_ << "  produced ";
      print_instance_line(id);
    }
  }
}

void Interpreter::cmd_browse(const Args& args) {
  if (args.size() < 2) {
    usage("browse <Entity> [keyword=..] [user=..] [uses=iN] [from=MICROS]"
          " [to=MICROS] [limit=N] [after=CURSOR]");
  }
  core::BrowserFilter filter;
  std::optional<std::size_t> limit;
  std::optional<history::PageCursor> after;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::size_t eq = args[i].find('=');
    if (eq == std::string::npos) {
      usage("browse filters are key=value");
    }
    const std::string key = args[i].substr(0, eq);
    const std::string value = args[i].substr(eq + 1);
    if (key == "keyword") {
      filter.keyword = value;
    } else if (key == "user") {
      filter.user = value;
    } else if (key == "uses") {
      filter.uses = instance_ref(value);
    } else if (key == "from") {
      filter.from = support::Timestamp(std::stoll(value));
    } else if (key == "to") {
      filter.to = support::Timestamp(std::stoll(value));
    } else if (key == "limit") {
      limit = static_cast<std::size_t>(std::stoull(value));
    } else if (key == "after") {
      after = history::PageCursor::decode(value);
    } else {
      usage("unknown browse filter '" + key + "'");
    }
  }
  const core::InstanceBrowser browser = session_->browse(args[1]);
  if (limit || after) {
    // Paged mode: the header names the access path the planner chose and
    // a trailing "next:" cursor resumes the listing where it stopped.
    const core::BrowserPage page =
        browser.page(filter, limit.value_or(50), after);
    *out_ << browser.render_page(page);
  } else {
    *out_ << browser.render(filter);
  }
}

void Interpreter::print_instance_line(InstanceId id) {
  const history::Instance& inst = session_->db().instance(id);
  *out_ << "i" << id.value() << "  "
        << session_->schema().entity_name(inst.type) << "  '" << inst.name
        << "' v" << inst.version << " by " << inst.user << "\n";
}

void Interpreter::cmd_history_query(const Args& args) {
  const std::string& cmd = args[0];
  if (args.size() < 2) usage(cmd + " <iN> ...");
  const InstanceId id = instance_ref(args[1]);
  history::HistoryDb& db = session_->db();
  if (cmd == "history") {
    for (const InstanceId anc : db.derivation_closure(id)) {
      *out_ << "  ";
      print_instance_line(anc);
    }
  } else if (cmd == "uses") {
    for (const InstanceId dep : db.dependent_closure(id)) {
      *out_ << "  ";
      print_instance_line(dep);
    }
  } else if (cmd == "trace") {
    const std::string direction = args.size() > 2 ? args[2] : "backward";
    if (direction == "backward") {
      *out_ << history::backward_trace(db, id).to_dot();
    } else if (direction == "forward") {
      *out_ << history::forward_trace(db, id).to_dot();
    } else {
      usage("trace <iN> backward|forward");
    }
  } else if (cmd == "versions") {
    const auto tree = history::version_tree(db, id);
    for (const auto& entry : tree.entries) {
      *out_ << "  i" << entry.instance.value() << " v" << entry.version;
      if (entry.parent.valid()) {
        *out_ << " (edited from i" << entry.parent.value() << ")";
      }
      *out_ << "\n";
    }
  } else if (cmd == "payload") {
    *out_ << db.payload(id);
  } else if (cmd == "annotate") {
    if (args.size() < 3) usage("annotate <iN> <name> [comment...]");
    std::string comment;
    for (std::size_t i = 3; i < args.size(); ++i) {
      if (i > 3) comment += ' ';
      comment += args[i];
    }
    session_->annotate(id, args[2], comment);
  } else if (cmd == "stale") {
    const auto report = exec::check_consistency(db, id);
    if (report.fresh) {
      *out_ << "i" << id.value() << " is up to date\n";
    } else {
      *out_ << "i" << id.value() << " is STALE:\n";
      for (const auto& r : report.replacements) {
        *out_ << "  i" << r.superseded.value() << " superseded by i"
              << r.latest.value() << "\n";
      }
    }
  } else if (cmd == "retrace") {
    // A fresh instance is a no-op, not a failure (the library-level
    // `retrace` throws here; in the shell that would abort scripts that
    // retrace defensively).
    if (exec::check_consistency(db, id).fresh) {
      *out_ << "i" << id.value() << " is up to date; nothing to retrace\n";
      return;
    }
    const auto fresh = exec::retrace(db, session_->tools(), id);
    for (const InstanceId f : fresh) {
      *out_ << "  retraced -> ";
      print_instance_line(f);
    }
  } else {  // decompose
    for (const InstanceId part :
         exec::decompose_instance(db, id, session_->user())) {
      *out_ << "  component ";
      print_instance_line(part);
    }
  }
}

void Interpreter::cmd_help() {
  *out_ <<
      "session new <fig1|fig2|full> [user] | user <n> | save <f> | load <f>\n"
      "open <dir> [sync=none|interval|commit] [every=N]   (durable store;\n"
      "    recovers snapshot+journal, then autosaves every record)\n"
      "checkpoint   (snapshot compaction)    store [close|sync]\n"
      "runs   (execution log)    resume [<run#>]   (re-run interrupted run;\n"
      "    finished tasks are skipped via memoization)\n"
      "fsck <dir> [--repair] [--json]   (offline history audit: exit 0\n"
      "    clean, 1 warnings, 2 corruption; clean-severity notes, e.g.\n"
      "    replica-store on a read replica, never raise the exit code;\n"
      "    --repair quarantines/tombstones and rebuilds indexes)\n"
      "lint schema | flow <f> [goal <node>] [parallel] [continue|besteffort]\n"
      "    | store <dir>   [--json]   (static analysis: HLxxx diagnostics,\n"
      "    same 0/1/2 severity convention as fsck)\n"
      "schema show | schema extend <<END ... END\n"
      "import <Entity> <name> <<END ... END   (or \"\" for empty payload)\n"
      "flow new <f> goal <Entity> | plan <name>\n"
      "flow expand|expandup|specialize|connect|cooutput|unexpand <f> ...\n"
      "flow bind <f> <node> <iN...> | unbind <f> <node>\n"
      "flow show|lisp|dot|bipartite|save-plan <f>\n"
      "run <f> [parallel] [reuse] [continue|besteffort] [retries=N]\n"
      "    [timeout=MS] [backoff=MS] [latency=MS] [faults=SEED]\n"
      "    auto <Entity> [run]\n"
      "browse <Entity> [keyword=..] [user=..] [uses=iN] [from=MICROS]\n"
      "    [to=MICROS] [limit=N] [after=CURSOR]   (limit/after page through\n"
      "    the listing via the secondary indexes when a store is open)\n"
      "find <Entity> [where <path> = iN|\"name\" [and ...]]\n"
      "failures   (failed/skipped/quarantined tasks, with their inputs)\n"
      "history|uses|versions|payload|stale|retrace|decompose <iN>\n"
      "trace <iN> backward|forward     annotate <iN> <name> [comment]\n"
      "entities  tools  plans  echo <text>  help  quit\n";
}

}  // namespace herc::cli
