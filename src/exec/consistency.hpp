// Design-consistency maintenance (paper §3.3).
//
// "Automatic retracing of a flow to update derived design data": when an
// instance's derivation ancestry contains superseded versions, `retrace`
// rebuilds the instance's backward flow trace, rebinds every superseded
// leaf to the latest version in its edit lineage, and re-executes the
// trace — producing an up-to-date instance without the designer redefining
// the flow.  `check_consistency` is the query-only half ("has this
// extraction been performed yet? is it out of date?").
#pragma once

#include <vector>

#include "exec/executor.hpp"
#include "history/flow_trace.hpp"
#include "history/history_db.hpp"

namespace herc::exec {

/// The answer to "does this derived object need retracing?".
struct ConsistencyReport {
  bool fresh = true;
  /// Superseded ancestors (with their replacements) making it stale.
  struct Replacement {
    data::InstanceId superseded;
    data::InstanceId latest;
  };
  std::vector<Replacement> replacements;
};

/// The newest version in `id`'s edit lineage (repeatedly follows edit
/// children; on a branched tree picks the newest timestamp at each step).
[[nodiscard]] data::InstanceId latest_version(const history::HistoryDb& db,
                                              data::InstanceId id);

/// Checks whether `id` is up to date with respect to everything it was
/// derived from.
[[nodiscard]] ConsistencyReport check_consistency(
    const history::HistoryDb& db, data::InstanceId id);

/// Re-derives `id` against the latest versions of its stale ancestry.
/// Returns the instances produced for the retraced goal (normally one).
/// Throws `ExecError` when `id` is already fresh.
std::vector<data::InstanceId> retrace(history::HistoryDb& db,
                                      const tools::ToolRegistry& tools,
                                      data::InstanceId id,
                                      const ExecOptions& options = {});

}  // namespace herc::exec
