// Flow automation and decomposition services (paper §3.1, §3.3).
//
// "Dynamically defined flows easily allow for automatic task sequencing
// (flow automation) because tool and data dependencies are specified in
// the task schema."  `auto_flow` builds a complete runnable flow for a
// goal entity without designer interaction: it expands recursively until
// every leaf is a source (or an entity the history can supply) and binds
// each leaf to the newest matching instance.
//
// `decompose_instance` is the implicit decomposition function of composite
// entities: it splits a composite instance back into component instances,
// recorded in the history with a "decompose" derivation.
#pragma once

#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "graph/task_graph.hpp"
#include "history/history_db.hpp"

namespace herc::exec {

struct AutoFlowOptions {
  /// Stop expanding a node early when the history already holds an
  /// instance of its type (bind it instead of deriving it anew).
  bool prefer_existing = true;
  /// Safety cap on created nodes.
  std::size_t max_nodes = 512;
  /// Preferred concrete subtype per abstract entity name; when absent the
  /// first concrete descendant with bindable/expandable support is used.
  std::unordered_map<std::string, std::string> specializations;
};

/// Builds a fully bound flow that derives one `goal` instance.  Leaves are
/// bound to the newest instance of their type in `db`; abstract nodes are
/// specialized per `options` (or to the first satisfiable subtype).
/// Throws `FlowError` when some required source entity has no instance.
[[nodiscard]] graph::TaskGraph auto_flow(const history::HistoryDb& db,
                                         schema::EntityTypeId goal,
                                         const AutoFlowOptions& options = {});

/// Splits a composite instance into its components using the schema's
/// decompose hook, recording one instance per component with a
/// "decompose" derivation.  Throws `ExecError` when the instance is not
/// composite or no hook is installed.
std::vector<data::InstanceId> decompose_instance(history::HistoryDb& db,
                                                 data::InstanceId composite,
                                                 const std::string& user);

}  // namespace herc::exec
