#include "exec/automation.hpp"

#include "support/error.hpp"

namespace herc::exec {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;
using schema::EntityTypeId;
using support::ExecError;
using support::FlowError;

namespace {

/// Newest instance of `type` (ids are assigned in time order).
InstanceId newest_of(const history::HistoryDb& db, EntityTypeId type) {
  const auto candidates = db.instances_of(type);
  return candidates.empty() ? InstanceId() : candidates.back();
}

class AutoBuilder {
 public:
  AutoBuilder(const history::HistoryDb& db, const AutoFlowOptions& options,
              TaskGraph& flow)
      : db_(db), schema_(db.schema()), options_(options), flow_(flow) {}

  void build(NodeId node, bool is_root) {
    if (flow_.node_count() > options_.max_nodes) {
      throw FlowError("auto_flow: node budget exceeded (" +
                      std::to_string(options_.max_nodes) +
                      "); the schema likely loops through optional-free "
                      "paths");
    }
    EntityTypeId type = flow_.node(node).type;
    if (schema_.is_abstract(type)) {
      type = choose_subtype(type);
      flow_.specialize(node, type);
    }
    // Prefer an existing instance over re-deriving (except for the goal,
    // which the designer asked to produce).
    if (!is_root && options_.prefer_existing) {
      const InstanceId existing = newest_of(db_, type);
      if (existing.valid()) {
        flow_.bind(node, existing);
        return;
      }
    }
    if (schema_.is_source(type)) {
      const InstanceId existing = newest_of(db_, type);
      if (!existing.valid()) {
        throw FlowError("auto_flow: no instance of source entity '" +
                        schema_.entity_name(type) +
                        "' exists in the history");
      }
      flow_.bind(node, existing);
      return;
    }
    for (const NodeId created : flow_.expand(node)) {
      build(created, /*is_root=*/false);
    }
  }

 private:
  EntityTypeId choose_subtype(EntityTypeId abstract_type) const {
    const auto it = options_.specializations.find(
        schema_.entity_name(abstract_type));
    if (it != options_.specializations.end()) {
      const EntityTypeId chosen = schema_.require(it->second);
      if (!schema_.is_ancestor_or_self(abstract_type, chosen)) {
        throw FlowError("auto_flow: '" + it->second +
                        "' is not a subtype of '" +
                        schema_.entity_name(abstract_type) + "'");
      }
      return chosen;
    }
    const auto choices = schema_.concrete_descendants(abstract_type);
    if (choices.empty()) {
      throw FlowError("auto_flow: abstract entity '" +
                      schema_.entity_name(abstract_type) +
                      "' has no concrete subtype");
    }
    // Prefer a subtype the history can already supply.
    if (options_.prefer_existing) {
      for (const EntityTypeId c : choices) {
        if (newest_of(db_, c).valid()) return c;
      }
    }
    return choices.front();
  }

  const history::HistoryDb& db_;
  const schema::TaskSchema& schema_;
  const AutoFlowOptions& options_;
  TaskGraph& flow_;
};

}  // namespace

TaskGraph auto_flow(const history::HistoryDb& db, EntityTypeId goal,
                    const AutoFlowOptions& options) {
  TaskGraph flow(db.schema(), "auto:" + db.schema().entity_name(goal));
  const NodeId root = flow.add_node(goal);
  AutoBuilder builder(db, options, flow);
  builder.build(root, /*is_root=*/true);
  flow.check();
  return flow;
}

std::vector<InstanceId> decompose_instance(history::HistoryDb& db,
                                           InstanceId composite,
                                           const std::string& user) {
  const history::Instance& inst = db.instance(composite);
  const schema::TaskSchema& schema = db.schema();
  if (!schema.is_composite(inst.type)) {
    throw ExecError("decompose: instance is not of a composite entity");
  }
  const auto* hook = schema.decompose(inst.type);
  if (hook == nullptr) {
    throw ExecError("decompose: no decomposition function installed for '" +
                    schema.entity_name(inst.type) + "'");
  }
  const std::vector<std::string> parts = (*hook)(db.payload(composite));
  const schema::ConstructionRule rule = schema.construction(inst.type);
  if (parts.size() != rule.inputs.size()) {
    throw ExecError("decompose: payload split into " +
                    std::to_string(parts.size()) + " parts but '" +
                    schema.entity_name(inst.type) + "' declares " +
                    std::to_string(rule.inputs.size()) + " components");
  }
  // Component types: prefer the concrete types recorded in the composite's
  // own derivation (the arc targets may be abstract, e.g. `Netlist`).
  const bool derivation_matches =
      inst.derivation.inputs.size() == parts.size();
  std::vector<InstanceId> out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EntityTypeId type = rule.inputs[i].target;
    if (derivation_matches) {
      type = db.instance(inst.derivation.inputs[i]).type;
    } else if (schema.is_abstract(type)) {
      throw ExecError(
          "decompose: component " + std::to_string(i) + " of '" +
          schema.entity_name(inst.type) +
          "' has abstract type and the composite has no derivation to "
          "recover the concrete type from");
    }
    history::RecordRequest request;
    request.type = type;
    request.name = inst.name.empty()
                       ? schema.entity_name(type) + "(decomposed)"
                       : inst.name + "." + schema.entity_name(type);
    request.user = user;
    request.comment = "decomposed from composite";
    request.payload = parts[i];
    request.derivation.inputs = {composite};
    request.derivation.input_roles = {rule.inputs[i].role};
    request.derivation.task = "decompose";
    out.push_back(db.record(request));
  }
  return out;
}

}  // namespace herc::exec
