// The flow execution engine (paper §3.3 and Fig. 6).
//
// Executes a dynamically defined flow: tasks are grouped (a shared tool
// node + input set with several outputs runs once), ordered by dependency,
// and run serially or in parallel — "disjoint branches in the flow can be
// executed in parallel, possibly on different machines" maps here onto a
// thread pool.  Every produced design object is recorded in the history
// database with its derivation meta-data, which is what makes all of §4.2's
// queries possible.
//
// Instance-set bindings fan a task out over each member (§4.1): binding
// three stimuli to the Stimuli leaf runs the simulation three times and
// records three Performance instances (unless the encapsulation accepts
// sets, in which case it gets all payloads in one call).
//
// With `reuse_existing` set, the engine asks the history database whether
// an identical, non-stale task result already exists and skips the run —
// the paper's "queries into the design history can quickly determine
// whether such retracing need occur".
#pragma once

#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "tools/registry.hpp"

namespace herc::exec {

struct ExecOptions {
  /// Run independent task groups concurrently on a thread pool.
  bool parallel = false;
  std::size_t max_threads = 4;
  /// Reuse fresh existing results instead of re-running tasks.
  bool reuse_existing = false;
  /// Recorded as the creating user of produced instances.
  std::string user = "designer";
  /// Artificial per-task latency, emulating slow external tools (used by
  /// the Fig. 6 parallel-speedup benchmark).
  std::chrono::milliseconds task_latency{0};
};

/// What one `run` produced, keyed by flow node.
struct ExecResult {
  std::unordered_map<graph::NodeId, std::vector<data::InstanceId>,
                     support::IdHash>
      produced;
  std::size_t tasks_run = 0;
  std::size_t tasks_reused = 0;

  /// Instances produced for `node` (empty when the node was a bound leaf).
  [[nodiscard]] const std::vector<data::InstanceId>& of(
      graph::NodeId node) const;
  /// The single instance produced for `node`; throws `ExecError` when the
  /// task fanned out or produced nothing.
  [[nodiscard]] data::InstanceId single(graph::NodeId node) const;
};

class Executor {
 public:
  /// `db` and `tools` must share the flow's schema and outlive the executor.
  Executor(history::HistoryDb& db, const tools::ToolRegistry& tools);

  /// Executes every task of `flow`.  Preconditions: the flow checks
  /// against its schema and every leaf is bound (`FlowError` otherwise).
  ExecResult run(const graph::TaskGraph& flow, const ExecOptions& options = {});

  /// Executes only the sub-flow rooted at `goal` — "a subflow may be run
  /// at any stage as long as its dependencies are satisfied" (§4.1).
  ExecResult run_goal(const graph::TaskGraph& flow, graph::NodeId goal,
                      const ExecOptions& options = {});

 private:
  history::HistoryDb* db_;
  const tools::ToolRegistry* tools_;
};

}  // namespace herc::exec
