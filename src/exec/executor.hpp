// The flow execution engine (paper §3.3 and Fig. 6).
//
// Executes a dynamically defined flow: tasks are grouped (a shared tool
// node + input set with several outputs runs once), ordered by dependency,
// and run serially or in parallel — "disjoint branches in the flow can be
// executed in parallel, possibly on different machines" maps here onto a
// thread pool.  Every produced design object is recorded in the history
// database with its derivation meta-data, which is what makes all of §4.2's
// queries possible.
//
// Instance-set bindings fan a task out over each member (§4.1): binding
// three stimuli to the Stimuli leaf runs the simulation three times and
// records three Performance instances (unless the encapsulation accepts
// sets, in which case it gets all payloads in one call).
//
// With `reuse_existing` set, the engine asks the history database whether
// an identical, non-stale task result already exists and skips the run —
// the paper's "queries into the design history can quickly determine
// whether such retracing need occur".
#pragma once

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "support/clock.hpp"
#include "support/error.hpp"
#include "tools/registry.hpp"

namespace herc::exec {

/// What the engine does when a task keeps failing after its retries.
enum class FailureMode {
  /// Abort the whole run on the first exhausted task (the classic
  /// behavior); every failure observed before the abort is still recorded
  /// and aggregated into the thrown `ExecError`.
  kFailFast,
  /// Record the failure, skip every task that (transitively) depends on
  /// it, and run everything else — disjoint branches always complete.
  kContinueBranches,
  /// Like `kContinueBranches`, but a failure inside a fanned-out task only
  /// kills that combination: the task keeps its surviving products and
  /// dependents run as long as every input still has at least one instance.
  kBestEffort,
};

/// Per-task failure handling: retries with exponential backoff, a timeout,
/// and the run-level failure mode.  Backoff waits go through `clock` so
/// tests driven by a `support::ManualClock` observe the waits virtually.
struct FaultPolicy {
  FailureMode mode = FailureMode::kFailFast;
  /// Extra attempts after the first failure (0 = no retry).
  std::size_t max_retries = 0;
  /// Wait before retry `k` is `backoff * backoff_multiplier^k`.
  std::chrono::milliseconds backoff{0};
  double backoff_multiplier = 2.0;
  /// Per-attempt wall-clock limit for a tool invocation; 0 = unlimited.
  /// A timed-out invocation is abandoned (its thread keeps running
  /// detached) and counts as a failed attempt.
  std::chrono::milliseconds timeout{0};
  /// Waits backoff through this clock; defaults to a real sleep.
  support::Clock* clock = nullptr;
  /// Identifies the deterministic fault-injection plan in effect for the
  /// run (see `tools::FaultInjectingRegistry`); recorded in the run-begin
  /// journal frame so a resumed run reports the same plan.  Not
  /// interpreted by the executor itself (0 = none).
  std::uint64_t seed = 0;
};

struct ExecOptions {
  /// Run independent task groups concurrently on a thread pool.
  bool parallel = false;
  std::size_t max_threads = 4;
  /// Reuse fresh existing results instead of re-running tasks.
  bool reuse_existing = false;
  /// Recorded as the creating user of produced instances.
  std::string user = "designer";
  /// Artificial per-task latency, emulating slow external tools (used by
  /// the Fig. 6 parallel-speedup benchmark).
  std::chrono::milliseconds task_latency{0};
  /// Failure semantics (retries, timeout, failure mode).
  FaultPolicy fault;
  /// Journal execution intents (run-begin, task-started/-finished and
  /// run-end frames) into the history database.  With a durable store
  /// attached this makes the run crash-resumable: recovery quarantines
  /// partial products and `Executor::resume` re-runs only unfinished
  /// tasks.  Disable for throwaway executions that should leave no run
  /// log.
  bool journal_run = true;
};

/// Per-task execution verdict.
enum class TaskStatus {
  kOk,       ///< every combination produced its outputs (or was reused)
  kPartial,  ///< best-effort: some combinations produced, some failed
  kFailed,   ///< no combination produced outputs
  kSkipped,  ///< never ran: an upstream task failed or was skipped
};

/// What happened to one task group, keyed by its output nodes.
struct TaskOutcome {
  TaskStatus status = TaskStatus::kOk;
  /// Tool invocations, including retries, across all combinations.
  std::size_t attempts = 0;
  /// Fan-out combinations that produced / failed.
  std::size_t combinations_ok = 0;
  std::size_t combinations_failed = 0;
  /// The failure messages (one per failed combination; for a skipped task,
  /// the skip reason).
  std::vector<std::string> errors;
};

/// What one `run` produced, keyed by flow node.
struct ExecResult {
  std::unordered_map<graph::NodeId, std::vector<data::InstanceId>,
                     support::IdHash>
      produced;
  std::size_t tasks_run = 0;
  std::size_t tasks_reused = 0;
  /// Fan-out combinations whose retries were exhausted.
  std::size_t tasks_failed = 0;
  /// Task groups skipped because an upstream task failed.
  std::size_t tasks_skipped = 0;
  /// Per-node verdicts: every output node of a task group maps to the
  /// group's outcome.  Populated for every executed/failed/skipped group.
  std::unordered_map<graph::NodeId, TaskOutcome, support::IdHash> outcomes;

  /// Instances produced for `node` (empty when the node was a bound leaf).
  [[nodiscard]] const std::vector<data::InstanceId>& of(
      graph::NodeId node) const;
  /// The single instance produced for `node`; throws `ExecError` when the
  /// task fanned out or produced nothing.
  [[nodiscard]] data::InstanceId single(graph::NodeId node) const;
  /// The outcome recorded for `node`, or null for bound leaves / nodes
  /// outside the run.
  [[nodiscard]] const TaskOutcome* outcome(graph::NodeId node) const;
  /// True when every task produced everything it should have.
  [[nodiscard]] bool complete() const {
    return tasks_failed == 0 && tasks_skipped == 0;
  }
};

/// Thrown when the cooperative cancellation flag (`set_cancel_flag`) stops
/// a run before every task group was scheduled.  The run record is left
/// OPEN: a cancelled run is an interrupted run, resumable via
/// `Executor::resume` exactly like a crash — which is how a serving
/// process winds down an in-flight flow on SIGTERM without losing it.
class RunCancelled : public support::ExecError {
 public:
  using support::ExecError::ExecError;
};

class Executor {
 public:
  /// `db` and `tools` must share the flow's schema and outlive the executor.
  Executor(history::HistoryDb& db, const tools::ToolRegistry& tools);

  /// Installs a cooperative cancellation flag (nullptr detaches).  While
  /// the flag reads true, `run`/`run_goal`/`resume` stop launching task
  /// groups: tool invocations already in flight finish and journal
  /// normally, unstarted groups never start, and the call throws
  /// `RunCancelled` leaving the run record open (resumable).  The flag
  /// must outlive the executor or be detached first.
  void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Executes every task of `flow`.  Preconditions: the flow checks
  /// against its schema and every leaf is bound (`FlowError` otherwise).
  ///
  /// Failure semantics follow `options.fault`: under `kFailFast` (default)
  /// the first task whose retries are exhausted aborts the run with an
  /// `ExecError` aggregating every failure observed; under
  /// `kContinueBranches`/`kBestEffort` the run returns normally and the
  /// result carries per-task outcomes.  Failed and skipped attempts are
  /// recorded in the history database as failure records in every mode.
  ExecResult run(const graph::TaskGraph& flow, const ExecOptions& options = {});

  /// Executes only the sub-flow rooted at `goal` — "a subflow may be run
  /// at any stage as long as its dependencies are satisfied" (§4.1).
  ExecResult run_goal(const graph::TaskGraph& flow, graph::NodeId goal,
                      const ExecOptions& options = {});

  /// Resumes an interrupted (still-open) run: reloads the bound flow and
  /// options from the run-begin frame and re-executes with memoization
  /// forced on — completed tasks are skipped via their recorded products,
  /// so an N-task flow killed after task k re-executes only the remaining
  /// N-k tasks (quarantined partial products never satisfy memoization and
  /// are re-derived).  The old run is closed as "resumed" only once the
  /// replacement run's begin frame is journaled; if resume throws before
  /// then, the run stays open and resumable.  Throws `ExecError` for an
  /// unknown or already-ended run.
  ExecResult resume(std::uint64_t run_id);

 private:
  /// The shared run paths; `replaces` is the interrupted run a resume
  /// supersedes (closed "resumed" after the new run-begin frame lands).
  ExecResult run_impl(const graph::TaskGraph& flow, const ExecOptions& options,
                      std::optional<std::uint64_t> replaces);
  ExecResult run_goal_impl(const graph::TaskGraph& flow, graph::NodeId goal,
                           const ExecOptions& options,
                           std::optional<std::uint64_t> replaces);

  history::HistoryDb* db_;
  const tools::ToolRegistry* tools_;
  const std::atomic<bool>* cancel_ = nullptr;
};

/// Serializes the options a resumed run must reproduce (everything except
/// the backoff clock, which cannot persist) into one record line.
[[nodiscard]] std::string encode_exec_options(const ExecOptions& options);
/// Inverse of `encode_exec_options`; `fault.clock` is left null.
[[nodiscard]] ExecOptions decode_exec_options(std::string_view text);

}  // namespace herc::exec
