#include "exec/executor.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>

#include "support/error.hpp"
#include "support/record.hpp"
#include "tools/composite.hpp"

namespace herc::exec {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;
using graph::TaskGroup;
using support::ExecError;
using support::FlowError;

const std::vector<InstanceId>& ExecResult::of(NodeId node) const {
  static const std::vector<InstanceId> kEmpty;
  const auto it = produced.find(node);
  return it == produced.end() ? kEmpty : it->second;
}

InstanceId ExecResult::single(NodeId node) const {
  const auto& vec = of(node);
  if (vec.size() != 1) {
    throw ExecError("expected exactly one instance for flow node, found " +
                    std::to_string(vec.size()));
  }
  return vec.front();
}

const TaskOutcome* ExecResult::outcome(NodeId node) const {
  const auto it = outcomes.find(node);
  return it == outcomes.end() ? nullptr : &it->second;
}

Executor::Executor(history::HistoryDb& db, const tools::ToolRegistry& tools)
    : db_(&db), tools_(&tools) {}

namespace {

/// Mutable state shared by the serial and parallel paths.  `mutex` guards
/// `env`, the result counters and all history-database access; tool
/// functions run outside the lock.
struct RunState {
  const TaskGraph* flow;
  history::HistoryDb* db;
  const tools::ToolRegistry* tools;
  const ExecOptions* options;
  std::mutex mutex;
  std::unordered_map<std::uint32_t, std::vector<InstanceId>> env;
  ExecResult result;
  /// Run-intent journaling (crash-resumable runs); `journal` is false when
  /// `options.journal_run` is off.
  bool journal = false;
  std::uint64_t run_id = 0;
  /// Live node id -> the dense id `TaskGraph::save()` assigns, so task
  /// keys journaled now match the flow text a resume reloads.
  std::unordered_map<std::uint32_t, std::uint32_t> compact;
  /// Cooperative cancellation flag (`Executor::set_cancel_flag`); null
  /// when cancellation is not wired up.
  const std::atomic<bool>* cancel = nullptr;
};

/// True once the installed cancellation flag requests a stop.  Relaxed is
/// enough: the flag is a pure go/no-go signal and every durable effect the
/// scheduler produces is ordered by `state.mutex` / the journal anyway.
bool cancel_requested(const RunState& state) {
  return state.cancel != nullptr &&
         state.cancel->load(std::memory_order_relaxed);
}

/// Stable identity of a task group inside the run's saved flow: compact id
/// plus entity name of the primary output.  The compact map covers every
/// flow node, so a miss is a logic error; falling back to the live node id
/// could journal a tstart/tfin pair under different keys, which would make
/// the store unloadable at replay ("finished without starting").
std::string group_key(const RunState& state, const TaskGroup& group) {
  const NodeId primary = group.outputs.front();
  const auto it = state.compact.find(primary.value());
  if (it == state.compact.end()) {
    throw ExecError("internal: flow node " +
                    std::to_string(primary.value()) +
                    " missing from the run's compact id map");
  }
  return std::to_string(it->second) + ":" +
         state.flow->schema().entity_name(state.flow->node(primary).type);
}

const char* task_status_name(TaskStatus status) {
  switch (status) {
    case TaskStatus::kOk: return "ok";
    case TaskStatus::kPartial: return "partial";
    case TaskStatus::kFailed: return "failed";
    case TaskStatus::kSkipped: return "skipped";
  }
  return "unknown";
}

/// Cartesian-product odometer over input instance choices.
class Odometer {
 public:
  explicit Odometer(std::vector<std::size_t> sizes)
      : sizes_(std::move(sizes)), digits_(sizes_.size(), 0) {
    for (const std::size_t s : sizes_) {
      if (s == 0) exhausted_ = true;
    }
  }

  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] const std::vector<std::size_t>& digits() const {
    return digits_;
  }

  void advance() {
    for (std::size_t i = 0; i < digits_.size(); ++i) {
      if (++digits_[i] < sizes_[i]) return;
      digits_[i] = 0;
    }
    exhausted_ = true;
  }

 private:
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> digits_;
  bool exhausted_ = false;
};

/// Auto-name for a produced instance: the node's label when the designer
/// set one, otherwise `<Type>#<ordinal>`.
std::string instance_name(const TaskGraph& flow, NodeId node,
                          std::size_t ordinal) {
  const graph::Node& n = flow.node(node);
  if (!n.label.empty()) return n.label;
  return flow.schema().entity_name(n.type) + "#" + std::to_string(ordinal);
}

/// Waits `backoff * multiplier^attempt` through the policy's clock (a real
/// sleep by default; virtual when tests install a `ManualClock`).
void backoff_wait(const FaultPolicy& policy, std::size_t attempt) {
  if (policy.backoff.count() <= 0) return;
  const double millis =
      static_cast<double>(policy.backoff.count()) *
      std::pow(policy.backoff_multiplier, static_cast<double>(attempt));
  const auto micros = static_cast<std::int64_t>(millis * 1000.0);
  if (policy.clock != nullptr) {
    policy.clock->sleep_for(micros);
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

/// Reusable workers for timeout-guarded tool invocations.  Spawning a
/// fresh thread per attempt costs ~10us even when the tool is instant,
/// which alone would blow the <5% fault-machinery overhead budget; parking
/// idle workers on a queue makes the fault-free timeout path nearly free.
/// A worker stuck inside a hung tool is simply abandoned — it rejoins the
/// idle pool whenever the tool returns, and a replacement is spawned if a
/// job arrives while no worker is idle.  The singleton is leaked so
/// abandoned workers never race process teardown.
class TimeoutRunner {
 public:
  static TimeoutRunner& instance() {
    static TimeoutRunner* runner = new TimeoutRunner();
    return *runner;
  }

  tools::ToolOutput run(const tools::ToolFunction& fn,
                        const std::shared_ptr<tools::ToolContext>& ctx,
                        std::chrono::milliseconds timeout,
                        const std::string& label) {
    auto task = std::make_shared<std::packaged_task<tools::ToolOutput()>>(
        [fn, ctx]() { return fn(*ctx); });
    std::future<tools::ToolOutput> result = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      jobs_.emplace_back([task]() { (*task)(); });
      if (idle_ == 0) {
        spawn();
      } else {
        cv_.notify_one();
      }
    }
    if (result.wait_for(timeout) != std::future_status::ready) {
      throw ExecError("task '" + label + "' timed out after " +
                      std::to_string(timeout.count()) + "ms");
    }
    return result.get();
  }

 private:
  TimeoutRunner() = default;

  /// Caller holds `mutex_`.
  void spawn() {
    std::thread([this]() {
      std::unique_lock lock(mutex_);
      while (true) {
        ++idle_;
        cv_.wait(lock, [&] { return !jobs_.empty(); });
        --idle_;
        auto job = std::move(jobs_.front());
        jobs_.pop_front();
        lock.unlock();
        job();  // may block indefinitely: the worker is abandoned meanwhile
        lock.lock();
      }
    }).detach();
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  std::size_t idle_ = 0;
};

/// Runs the encapsulation, enforcing the per-attempt timeout.  A timed-out
/// invocation is abandoned: its worker keeps running (holding shared
/// ownership of the context), and the attempt counts as failed.
tools::ToolOutput invoke_tool(const tools::ToolFunction& fn,
                              const std::shared_ptr<tools::ToolContext>& ctx,
                              const FaultPolicy& policy,
                              const std::string& label) {
  if (policy.timeout.count() <= 0) return fn(*ctx);
  return TimeoutRunner::instance().run(fn, ctx, policy.timeout, label);
}

/// Registers one failure record per output node of `group`: type and name
/// of the output that was *not* produced, the attempt's derivation
/// meta-data, and the error message as the comment.
void record_failure(RunState& state, const TaskGroup& group,
                    history::InstanceStatus status, InstanceId tool_inst,
                    const std::vector<InstanceId>& inputs,
                    const std::vector<std::string>& roles,
                    const std::string& task_label,
                    const std::string& message) {
  const TaskGraph& flow = *state.flow;
  std::scoped_lock lock(state.mutex);
  for (const NodeId out_node : group.outputs) {
    history::RecordRequest request;
    request.type = flow.node(out_node).type;
    request.name = instance_name(flow, out_node, state.db->size());
    request.user = state.options->user;
    request.comment = message;
    request.status = status;
    request.derivation.tool = tool_inst;
    request.derivation.inputs = inputs;
    request.derivation.input_roles = roles;
    request.derivation.task = task_label;
    state.db->record(request);
  }
}

/// A group-level verdict that must not abort the run in continue modes.
struct SkipGroup {
  std::string reason;
};

/// Executes one task group, honoring the fault policy.  Never throws in
/// the continue modes; in fail-fast mode structural errors (missing
/// inputs) propagate as before.  Throws `SkipGroup` (internal) when the
/// group's inputs are unavailable in a continue mode.
TaskOutcome execute_group(RunState& state, const TaskGroup& group) {
  const TaskGraph& flow = *state.flow;
  const schema::TaskSchema& schema = flow.schema();
  const ExecOptions& options = *state.options;
  const FaultPolicy& policy = options.fault;
  const bool fail_fast = policy.mode == FailureMode::kFailFast;
  const NodeId primary = group.outputs.front();
  TaskOutcome outcome;

  // Inputs in edge order of the primary output (compose order matters).
  const std::vector<NodeId> ordered_inputs = flow.inputs_of(primary);
  std::vector<std::string> roles;
  roles.reserve(ordered_inputs.size());
  for (const graph::DepEdge& e : flow.deps(primary)) {
    if (e.kind == schema::DepKind::kData) roles.push_back(e.role);
  }

  // Snapshot the instance choices under the lock.  In fail-fast mode a
  // missing input aborts the run (classic behavior); in the continue modes
  // it means an upstream task failed, so the group is skipped.
  std::vector<std::vector<InstanceId>> choices(ordered_inputs.size());
  std::vector<InstanceId> tool_choices;
  {
    std::scoped_lock lock(state.mutex);
    for (std::size_t i = 0; i < ordered_inputs.size(); ++i) {
      const auto it = state.env.find(ordered_inputs[i].value());
      if (it == state.env.end() || it->second.empty()) {
        const std::string why =
            "flow '" + flow.name() + "': input node '" +
            schema.entity_name(flow.node(ordered_inputs[i]).type) +
            "' has no instances";
        if (fail_fast) throw ExecError(why);
        throw SkipGroup{why};
      }
      choices[i] = it->second;
    }
    if (group.tool.valid()) {
      const auto it = state.env.find(group.tool.value());
      if (it == state.env.end() || it->second.empty()) {
        const std::string why =
            "flow '" + flow.name() + "': tool node '" +
            schema.entity_name(flow.node(group.tool).type) +
            "' has no instance bound or produced";
        if (fail_fast) throw ExecError(why);
        throw SkipGroup{why};
      }
      tool_choices = it->second;
    }
  }

  // Set-accepting encapsulations consume whole instance sets in one call.
  // Resolution failure (no encapsulation registered) is a task failure.
  bool accepts_sets = false;
  if (group.tool.valid()) {
    try {
      std::scoped_lock lock(state.mutex);
      const schema::EntityTypeId tool_type =
          state.db->instance(tool_choices.front()).type;
      accepts_sets = state.tools->resolve(tool_type).accepts_instance_sets;
    } catch (const std::exception& e) {
      if (fail_fast) throw;
      record_failure(state, group, history::InstanceStatus::kFailed,
                     InstanceId(), {}, {},
                     schema.entity_name(flow.node(group.tool).type),
                     e.what());
      outcome.status = TaskStatus::kFailed;
      ++outcome.combinations_failed;
      outcome.errors.emplace_back(e.what());
      return outcome;
    }
  }

  std::vector<std::size_t> sizes;
  sizes.push_back(group.tool.valid() ? tool_choices.size() : 1);
  for (const auto& c : choices) {
    sizes.push_back(accepts_sets ? 1 : c.size());
  }

  for (Odometer odo(sizes); !odo.exhausted(); odo.advance()) {
    const auto& digits = odo.digits();
    const InstanceId tool_inst =
        group.tool.valid() ? tool_choices[digits[0]] : InstanceId();
    std::vector<std::vector<InstanceId>> combo(ordered_inputs.size());
    for (std::size_t i = 0; i < ordered_inputs.size(); ++i) {
      if (accepts_sets) {
        combo[i] = choices[i];
      } else {
        combo[i] = {choices[i][digits[i + 1]]};
      }
    }
    // Flat input list for derivation records and memoization.
    std::vector<InstanceId> flat_inputs;
    std::vector<std::string> flat_roles;
    for (std::size_t i = 0; i < combo.size(); ++i) {
      for (const InstanceId inst : combo[i]) {
        flat_inputs.push_back(inst);
        flat_roles.push_back(roles[i]);
      }
    }

    // Consistency memoization: skip the run when every output already has
    // a fresh instance derived the same way.
    if (state.options->reuse_existing) {
      std::scoped_lock lock(state.mutex);
      std::vector<InstanceId> found;
      bool all = true;
      for (const NodeId out : group.outputs) {
        const auto existing = state.db->find_existing(
            flow.node(out).type, tool_inst, flat_inputs);
        if (existing && !state.db->is_stale(*existing)) {
          found.push_back(*existing);
        } else {
          all = false;
          break;
        }
      }
      if (all) {
        for (std::size_t o = 0; o < group.outputs.size(); ++o) {
          state.env[group.outputs[o].value()].push_back(found[o]);
          state.result.produced[group.outputs[o]].push_back(found[o]);
        }
        ++state.result.tasks_reused;
        ++outcome.combinations_ok;
        continue;
      }
    }

    // One attempt: build the context, run the tool, record the products.
    // Throws on failure; retried per the fault policy.
    std::string task_label = "compose";
    const auto attempt_once = [&]() {
      auto ctx = std::make_shared<tools::ToolContext>();
      ctx->schema = &schema;
      const tools::Encapsulation* enc = nullptr;
      {
        std::scoped_lock lock(state.mutex);
        for (std::size_t i = 0; i < ordered_inputs.size(); ++i) {
          tools::ToolInput in;
          in.type = flow.node(ordered_inputs[i]).type;
          in.type_name = schema.entity_name(in.type);
          in.role = roles[i];
          for (const InstanceId inst : combo[i]) {
            // The history instance's actual type can be narrower than the
            // flow node's; report the actual one.
            in.type = state.db->instance(inst).type;
            in.type_name = schema.entity_name(in.type);
            in.instances.push_back(inst);
            in.payloads.push_back(state.db->payload(inst));
          }
          ctx->inputs.push_back(std::move(in));
        }
        if (group.tool.valid()) {
          ctx->tool_instance = tool_inst;
          ctx->tool_type = state.db->instance(tool_inst).type;
          ctx->tool_type_name = schema.entity_name(ctx->tool_type);
          ctx->tool_payload = state.db->payload(tool_inst);
          enc = &state.tools->resolve(ctx->tool_type);
          ctx->args = enc->args;
          task_label = enc->name;
        }
        // A set-accepting encapsulation sees one ToolInput per role: inputs
        // arriving through several trace edges of the same arc (recorded
        // set consumption) are merged back into one set.
        if (enc != nullptr && enc->accepts_instance_sets) {
          std::vector<tools::ToolInput> merged;
          for (tools::ToolInput& in : ctx->inputs) {
            bool appended = false;
            for (tools::ToolInput& m : merged) {
              if (m.role == in.role && m.type_name == in.type_name) {
                m.instances.insert(m.instances.end(), in.instances.begin(),
                                   in.instances.end());
                m.payloads.insert(m.payloads.end(),
                                  std::make_move_iterator(in.payloads.begin()),
                                  std::make_move_iterator(in.payloads.end()));
                appended = true;
                break;
              }
            }
            if (!appended) merged.push_back(std::move(in));
          }
          ctx->inputs = std::move(merged);
        }
      }

      // Run the tool outside the lock (this is the expensive part).
      if (state.options->task_latency.count() > 0) {
        std::this_thread::sleep_for(state.options->task_latency);
      }
      tools::ToolOutput out;
      if (enc != nullptr) {
        out = invoke_tool(enc->fn, ctx, policy, task_label);
      } else {
        // Compose task: consistency check, then pack the components.
        std::vector<std::string> parts;
        for (const tools::ToolInput& in : ctx->inputs) {
          for (const std::string& p : in.payloads) parts.push_back(p);
        }
        const NodeId out_node = primary;
        if (const auto* check =
                schema.compose_check(flow.node(out_node).type)) {
          std::string why;
          if (!(*check)(parts, why)) {
            throw ExecError("compose of '" +
                            schema.entity_name(flow.node(out_node).type) +
                            "' failed its consistency check: " + why);
          }
        }
        out.set(schema.entity_name(flow.node(out_node).type),
                tools::join_composite(parts));
      }

      // Record the products.
      {
        std::scoped_lock lock(state.mutex);
        std::vector<std::pair<NodeId, history::RecordRequest>> records;
        for (const NodeId out_node : group.outputs) {
          const std::string& type_name =
              schema.entity_name(flow.node(out_node).type);
          const std::string* payload = out.find(type_name);
          if (payload == nullptr) {
            throw ExecError("task '" + task_label +
                            "' did not produce a '" + type_name + "'");
          }
          history::RecordRequest request;
          request.type = flow.node(out_node).type;
          request.name = instance_name(flow, out_node,
                                       state.db->size() + records.size());
          request.user = state.options->user;
          request.comment = "produced by " + task_label + " in flow '" +
                            flow.name() + "'";
          request.payload = *payload;
          request.derivation.tool = tool_inst;
          request.derivation.inputs = flat_inputs;
          request.derivation.input_roles = flat_roles;
          request.derivation.task = task_label;
          records.emplace_back(out_node, std::move(request));
        }
        // All outputs validated before any is recorded: a failed
        // combination leaves no partial products behind.
        std::vector<InstanceId> produced_ids;
        produced_ids.reserve(records.size());
        for (auto& [out_node, request] : records) {
          const InstanceId id = state.db->record(request);
          state.env[out_node.value()].push_back(id);
          state.result.produced[out_node].push_back(id);
          produced_ids.push_back(id);
        }
        // The coverage frame lands after the product frames: a crash in
        // between leaves uncovered instances, which recovery quarantines.
        if (state.journal) {
          state.db->run_task_covered(state.run_id, produced_ids);
        }
        ++state.result.tasks_run;
      }
    };

    // Retry loop with exponential backoff.
    const std::size_t max_attempts = policy.max_retries + 1;
    std::string last_error;
    bool combination_ok = false;
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      ++outcome.attempts;
      try {
        attempt_once();
        combination_ok = true;
        break;
      } catch (const std::exception& e) {
        last_error = e.what();
      } catch (...) {
        last_error = "unknown error";
      }
      if (attempt + 1 < max_attempts) backoff_wait(policy, attempt);
    }

    if (combination_ok) {
      ++outcome.combinations_ok;
      continue;
    }
    ++outcome.combinations_failed;
    outcome.errors.push_back(last_error);
    record_failure(state, group, history::InstanceStatus::kFailed, tool_inst,
                   flat_inputs, flat_roles, task_label, last_error);
    // Best-effort keeps running the remaining combinations; the other
    // modes abandon the group on its first exhausted combination.
    if (policy.mode != FailureMode::kBestEffort) break;
  }

  if (outcome.combinations_failed == 0) {
    outcome.status = TaskStatus::kOk;
  } else if (policy.mode == FailureMode::kBestEffort &&
             outcome.combinations_ok > 0) {
    outcome.status = TaskStatus::kPartial;
  } else {
    outcome.status = TaskStatus::kFailed;
  }
  return outcome;
}

/// The label used for skip records of a group that never ran.
std::string group_label(const RunState& state, const TaskGroup& group) {
  if (!group.tool.valid()) return "compose";
  return state.flow->schema().entity_name(
      state.flow->node(group.tool).type);
}

/// Stores the outcome under every output node and bumps the run counters.
/// Caller must NOT hold `state.mutex`.
void finalize_outcome(RunState& state, const TaskGroup& group,
                      const TaskOutcome& outcome) {
  std::scoped_lock lock(state.mutex);
  state.result.tasks_failed += outcome.combinations_failed;
  if (outcome.status == TaskStatus::kSkipped) ++state.result.tasks_skipped;
  for (const NodeId out : group.outputs) {
    state.result.outcomes[out] = outcome;
  }
  if (state.journal) {
    state.db->run_task_finished(state.run_id, group_key(state, group),
                                task_status_name(outcome.status));
  }
}

/// Journals the task-started frame for `group` (no-op when run intents are
/// off).  Caller must NOT hold `state.mutex`.
void journal_task_started(RunState& state, const TaskGroup& group) {
  if (!state.journal) return;
  std::scoped_lock lock(state.mutex);
  state.db->run_task_started(state.run_id, group_key(state, group));
}

/// Marks `group` skipped: records skip records and the outcome.
void skip_group(RunState& state, const TaskGroup& group,
                const std::string& reason) {
  record_failure(state, group, history::InstanceStatus::kSkipped,
                 InstanceId(), {}, {}, group_label(state, group),
                 "skipped: " + reason);
  TaskOutcome outcome;
  outcome.status = TaskStatus::kSkipped;
  outcome.errors.push_back(reason);
  finalize_outcome(state, group, outcome);
}

/// Dependency structure over task groups: group `g` depends on every group
/// producing one of its inputs or its tool.
struct GroupDag {
  std::vector<std::vector<std::size_t>> preds;
  std::vector<std::vector<std::size_t>> succs;
  std::vector<std::size_t> indeg;

  explicit GroupDag(const std::vector<TaskGroup>& groups)
      : preds(groups.size()), succs(groups.size()), indeg(groups.size(), 0) {
    std::unordered_map<std::uint32_t, std::size_t> producer;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (const NodeId out : groups[g].outputs) {
        producer[out.value()] = g;
      }
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      auto feeds = groups[g].inputs;
      if (groups[g].tool.valid()) feeds.push_back(groups[g].tool);
      std::unordered_set<std::size_t> seen;
      for (const NodeId in : feeds) {
        const auto it = producer.find(in.value());
        if (it != producer.end() && it->second != g &&
            seen.insert(it->second).second) {
          preds[g].push_back(it->second);
          succs[it->second].push_back(g);
          ++indeg[g];
        }
      }
    }
  }
};

/// Decides whether `g` must be skipped before running, given the statuses
/// of its completed predecessors.  Returns the reason, or empty to run.
std::string skip_reason(RunState& state, const std::vector<TaskGroup>& groups,
                        const GroupDag& dag,
                        const std::vector<TaskStatus>& status,
                        std::size_t g) {
  const FailureMode mode = state.options->fault.mode;
  if (mode == FailureMode::kContinueBranches) {
    // Skip when any dependency did not fully succeed.
    for (const std::size_t p : dag.preds[g]) {
      if (status[p] == TaskStatus::kFailed ||
          status[p] == TaskStatus::kSkipped ||
          status[p] == TaskStatus::kPartial) {
        return "task producing '" +
               state.flow->schema().entity_name(
                   state.flow->node(groups[p].outputs.front()).type) +
               "' " +
               (status[p] == TaskStatus::kSkipped ? "was skipped" : "failed");
      }
    }
  } else if (mode == FailureMode::kBestEffort) {
    // Skip only when some produced input ended up with no instances at all.
    bool upstream_trouble = false;
    for (const std::size_t p : dag.preds[g]) {
      if (status[p] != TaskStatus::kOk) upstream_trouble = true;
    }
    if (upstream_trouble) {
      std::scoped_lock lock(state.mutex);
      auto feeds = groups[g].inputs;
      if (groups[g].tool.valid()) feeds.push_back(groups[g].tool);
      for (const NodeId in : feeds) {
        const auto it = state.env.find(in.value());
        if (it == state.env.end() || it->second.empty()) {
          return "input '" +
                 state.flow->schema().entity_name(state.flow->node(in).type) +
                 "' has no surviving instances";
        }
      }
    }
  }
  return "";
}

/// Builds the aggregated fail-fast error out of every observed failure.
[[noreturn]] void throw_aggregated(const std::vector<std::string>& errors) {
  if (errors.size() == 1) throw ExecError(errors.front());
  std::string message =
      std::to_string(errors.size()) + " tasks failed: ";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) message += "; ";
    message += "[" + std::to_string(i + 1) + "] " + errors[i];
  }
  throw ExecError(message);
}

ExecResult run_filtered(RunState& state, const std::vector<TaskGroup>& groups) {
  const ExecOptions& options = *state.options;
  const FailureMode mode = options.fault.mode;
  const bool fail_fast = mode == FailureMode::kFailFast;
  const GroupDag dag(groups);
  std::vector<TaskStatus> status(groups.size(), TaskStatus::kOk);

  if (!options.parallel || groups.size() < 2) {
    std::vector<std::string> failures;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      // Cancellation is checked before the task-started frame lands: an
      // unstarted group leaves no journal trace, so resume re-plans it
      // cleanly instead of treating it as an in-flight casualty.
      if (cancel_requested(state)) {
        throw RunCancelled("flow '" + state.flow->name() +
                           "': run cancelled after " + std::to_string(g) +
                           " of " + std::to_string(groups.size()) +
                           " task groups; resumable");
      }
      journal_task_started(state, groups[g]);
      const std::string reason =
          skip_reason(state, groups, dag, status, g);
      if (!reason.empty()) {
        status[g] = TaskStatus::kSkipped;
        skip_group(state, groups[g], reason);
        continue;
      }
      TaskOutcome outcome;
      try {
        outcome = execute_group(state, groups[g]);
      } catch (const SkipGroup& skip) {
        status[g] = TaskStatus::kSkipped;
        skip_group(state, groups[g], skip.reason);
        continue;
      }
      status[g] = outcome.status;
      const bool failed = outcome.status == TaskStatus::kFailed ||
                          outcome.status == TaskStatus::kPartial;
      if (failed) {
        failures.insert(failures.end(), outcome.errors.begin(),
                        outcome.errors.end());
      }
      finalize_outcome(state, groups[g], outcome);
      if (fail_fast && failed) throw_aggregated(failures);
    }
    return std::move(state.result);
  }

  // Parallel scheduling: a group is ready once every group producing one of
  // its inputs (or its tool) has completed (in any state).
  std::mutex sched_mutex;
  std::condition_variable cv;
  std::deque<std::size_t> ready;
  std::size_t completed = 0;
  bool abort = false;   // fail-fast: stop dequeuing, workers drain out
  bool halted = false;  // cooperative cancellation: stop dequeuing, run stays open
  std::vector<std::string> failures;
  std::vector<std::size_t> indeg = dag.indeg;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (indeg[g] == 0) ready.push_back(g);
  }

  const std::size_t n_workers =
      std::min<std::size_t>(std::max<std::size_t>(options.max_threads, 1),
                            groups.size());
  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers.emplace_back([&]() {
      while (true) {
        std::size_t g;
        std::string reason;
        {
          std::unique_lock lock(sched_mutex);
          cv.wait(lock, [&] {
            return !ready.empty() || completed == groups.size() || abort ||
                   halted;
          });
          if (abort || halted || completed == groups.size()) return;
          // Checked at dequeue time, like the serial path: groups already
          // handed to a worker run to completion (their products journal
          // normally); groups still queued never start.  Liveness holds
          // because workers blocked in `cv.wait` are woken either by task
          // completions or by this broadcast.
          if (cancel_requested(state)) {
            halted = true;
            cv.notify_all();
            return;
          }
          g = ready.front();
          ready.pop_front();
        }
        journal_task_started(state, groups[g]);
        // The skip decision reads predecessor statuses; they are final
        // because a group only becomes ready after all its predecessors
        // completed.  (`skip_reason` takes `state.mutex` internally, so it
        // must run outside `sched_mutex`.)
        reason = skip_reason(state, groups, dag, status, g);

        TaskOutcome outcome;
        if (!reason.empty()) {
          skip_group(state, groups[g], reason);
          outcome.status = TaskStatus::kSkipped;
        } else {
          try {
            outcome = execute_group(state, groups[g]);
            finalize_outcome(state, groups[g], outcome);
          } catch (const SkipGroup& skip) {
            skip_group(state, groups[g], skip.reason);
            outcome.status = TaskStatus::kSkipped;
          } catch (const std::exception& e) {
            if (fail_fast) {
              // Structural error (missing inputs): abort the run, but keep
              // collecting failures from workers mid-flight.
              std::scoped_lock lock(sched_mutex);
              failures.emplace_back(e.what());
              abort = true;
              cv.notify_all();
              return;
            }
            // A continue mode must never lose a group: count the group as
            // failed so its dependents are skipped, not deadlocked.
            outcome.status = TaskStatus::kFailed;
            outcome.errors.emplace_back(e.what());
            finalize_outcome(state, groups[g], outcome);
          }
        }

        {
          std::scoped_lock lock(sched_mutex);
          status[g] = outcome.status;
          const bool failed = outcome.status == TaskStatus::kFailed ||
                              outcome.status == TaskStatus::kPartial;
          if (failed) {
            failures.insert(failures.end(), outcome.errors.begin(),
                            outcome.errors.end());
            if (fail_fast) {
              abort = true;
              cv.notify_all();
              return;
            }
          }
          ++completed;
          for (const std::size_t s : dag.succs[g]) {
            if (--indeg[s] == 0) ready.push_back(s);
          }
          cv.notify_all();
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (fail_fast && !failures.empty()) throw_aggregated(failures);
  if (halted) {
    throw RunCancelled("flow '" + state.flow->name() +
                       "': run cancelled with " + std::to_string(completed) +
                       " of " + std::to_string(groups.size()) +
                       " task groups completed; resumable");
  }
  return std::move(state.result);
}

/// Opens the run record: journals the bound flow, options and seed so the
/// run can be resumed after a crash.  No-op when `journal_run` is off.
/// `replaces` names the interrupted run a resume supersedes: it is closed
/// ("resumed") only *after* the replacement's run-begin frame is journaled,
/// so a crash or throw anywhere before this point leaves it resumable.
void begin_run_intents(RunState& state, const TaskGraph& flow,
                       const ExecOptions& options, NodeId goal,
                       std::optional<std::uint64_t> replaces) {
  if (!options.journal_run) {
    if (replaces) state.db->end_run(*replaces, "resumed");
    return;
  }
  std::uint32_t next = 0;
  for (const NodeId n : flow.nodes()) state.compact[n.value()] = next++;
  history::RunRecord run;
  run.flow_name = flow.name();
  run.user = options.user;
  run.options = encode_exec_options(options);
  run.seed = options.fault.seed;
  if (goal.valid()) {
    run.goal = flow.schema().entity_name(flow.node(goal).type);
    run.goal_node = static_cast<std::int64_t>(state.compact.at(goal.value()));
  }
  run.flow_text = flow.save();
  state.run_id = state.db->begin_run(std::move(run));
  if (replaces) state.db->end_run(*replaces, "resumed");
  state.journal = true;
}

/// Runs the groups and closes the run record: "complete" when every task
/// produced, "failed" on partial results or a thrown abort.
ExecResult run_to_completion(RunState& state,
                             const std::vector<TaskGroup>& groups) {
  if (!state.journal) return run_filtered(state, groups);
  try {
    ExecResult result = run_filtered(state, groups);
    state.db->end_run(state.run_id,
                      result.complete() ? "complete" : "failed");
    return result;
  } catch (const RunCancelled&) {
    // Deliberately NOT closed: a cancelled run is an interrupted run.  The
    // open record is exactly what `Executor::resume` (and crash recovery's
    // seal sweep) need to pick the flow back up.
    throw;
  } catch (...) {
    state.db->end_run(state.run_id, "failed");
    throw;
  }
}

}  // namespace

std::string encode_exec_options(const ExecOptions& options) {
  support::RecordWriter w("opts");
  w.field(static_cast<std::uint32_t>(options.parallel ? 1 : 0));
  w.field(static_cast<std::uint32_t>(options.max_threads));
  w.field(static_cast<std::uint32_t>(options.reuse_existing ? 1 : 0));
  w.field(options.user);
  w.field(static_cast<std::int64_t>(options.task_latency.count()));
  w.field(static_cast<std::uint32_t>(options.fault.mode));
  w.field(static_cast<std::uint32_t>(options.fault.max_retries));
  w.field(static_cast<std::int64_t>(options.fault.backoff.count()));
  w.field(options.fault.backoff_multiplier);
  w.field(static_cast<std::int64_t>(options.fault.timeout.count()));
  w.field(static_cast<std::int64_t>(options.fault.seed));
  return w.str();
}

ExecOptions decode_exec_options(std::string_view text) {
  support::RecordReader rec(text);
  if (rec.kind() != "opts") {
    throw ExecError("malformed run options record '" + rec.kind() + "'");
  }
  ExecOptions options;
  options.parallel = rec.next_uint32() != 0;
  options.max_threads = rec.next_uint32();
  options.reuse_existing = rec.next_uint32() != 0;
  options.user = rec.next_string();
  options.task_latency = std::chrono::milliseconds(rec.next_int64());
  const std::uint32_t mode = rec.next_uint32();
  if (mode > static_cast<std::uint32_t>(FailureMode::kBestEffort)) {
    throw ExecError("malformed run options: unknown failure mode");
  }
  options.fault.mode = static_cast<FailureMode>(mode);
  options.fault.max_retries = rec.next_uint32();
  options.fault.backoff = std::chrono::milliseconds(rec.next_int64());
  options.fault.backoff_multiplier = rec.next_double();
  options.fault.timeout = std::chrono::milliseconds(rec.next_int64());
  options.fault.seed = static_cast<std::uint64_t>(rec.next_int64());
  return options;
}

ExecResult Executor::run(const TaskGraph& flow, const ExecOptions& options) {
  return run_impl(flow, options, std::nullopt);
}

ExecResult Executor::run_impl(const TaskGraph& flow,
                              const ExecOptions& options,
                              std::optional<std::uint64_t> replaces) {
  flow.check();
  const auto unbound = flow.unbound_leaves();
  if (!unbound.empty()) {
    throw FlowError("flow '" + flow.name() + "': leaf node '" +
                    flow.schema().entity_name(flow.node(unbound.front()).type) +
                    "' is not bound to an instance");
  }
  RunState state;
  state.flow = &flow;
  state.db = db_;
  state.tools = tools_;
  state.options = &options;
  state.cancel = cancel_;
  for (const NodeId n : flow.nodes()) {
    if (flow.is_leaf(n)) state.env[n.value()] = flow.bindings(n);
  }
  // A cancel raised before the run-begin frame leaves no trace at all — in
  // particular, a resume's interrupted run is not closed "resumed" for a
  // replacement that never opened.
  if (cancel_requested(state)) {
    throw RunCancelled("flow '" + flow.name() +
                       "': run cancelled before it started");
  }
  begin_run_intents(state, flow, options, NodeId(), replaces);
  return run_to_completion(state, flow.task_groups());
}

ExecResult Executor::resume(std::uint64_t run_id) {
  const history::RunRecord* record = db_->find_run(run_id);
  if (record == nullptr) {
    throw ExecError("no run #" + std::to_string(run_id) + " in the history");
  }
  if (!record->open()) {
    throw ExecError("run #" + std::to_string(run_id) + " already ended ('" +
                    record->outcome + "'); nothing to resume");
  }
  if (record->flow_text.empty()) {
    throw ExecError("run #" + std::to_string(run_id) +
                    " has no flow recorded; cannot resume");
  }
  const TaskGraph flow = TaskGraph::load(db_->schema(), record->flow_text);
  ExecOptions options = decode_exec_options(record->options);
  // Memoization is what skips completed tasks: their products are in the
  // history, while quarantined partials are invisible and re-derived.
  options.reuse_existing = true;
  const std::int64_t goal_node = record->goal_node;
  // The interrupted run is closed ("resumed") by begin_run_intents, only
  // after the replacement's run-begin frame is journaled: if anything
  // throws before that point — flow.check, a missing tool — the run stays
  // open and resumable instead of being orphaned with nothing re-executed.
  if (goal_node >= 0) {
    return run_goal_impl(flow, NodeId(static_cast<std::uint32_t>(goal_node)),
                         options, run_id);
  }
  return run_impl(flow, options, run_id);
}

ExecResult Executor::run_goal(const TaskGraph& flow, NodeId goal,
                              const ExecOptions& options) {
  return run_goal_impl(flow, goal, options, std::nullopt);
}

ExecResult Executor::run_goal_impl(const TaskGraph& flow, NodeId goal,
                                   const ExecOptions& options,
                                   std::optional<std::uint64_t> replaces) {
  flow.check();
  const std::vector<NodeId> keep = flow.closure(goal);
  const std::unordered_set<std::uint32_t> keep_set = [&] {
    std::unordered_set<std::uint32_t> s;
    for (const NodeId n : keep) s.insert(n.value());
    return s;
  }();
  for (const NodeId n : keep) {
    if (flow.is_leaf(n) && flow.bindings(n).empty()) {
      throw FlowError("sub-flow at '" +
                      flow.schema().entity_name(flow.node(goal).type) +
                      "': leaf '" +
                      flow.schema().entity_name(flow.node(n).type) +
                      "' is not bound");
    }
  }
  RunState state;
  state.flow = &flow;
  state.db = db_;
  state.tools = tools_;
  state.options = &options;
  state.cancel = cancel_;
  for (const NodeId n : keep) {
    if (flow.is_leaf(n)) state.env[n.value()] = flow.bindings(n);
  }
  if (cancel_requested(state)) {
    throw RunCancelled("flow '" + flow.name() +
                       "': run cancelled before it started");
  }
  // Keep a group when any of its outputs feeds the goal; a multi-output
  // task naturally produces its siblings along the way.
  std::vector<TaskGroup> groups;
  for (const TaskGroup& group : flow.task_groups()) {
    const bool needed = std::any_of(
        group.outputs.begin(), group.outputs.end(), [&](NodeId out) {
          return keep_set.contains(out.value());
        });
    if (needed) groups.push_back(group);
  }
  begin_run_intents(state, flow, options, goal, replaces);
  return run_to_completion(state, groups);
}

}  // namespace herc::exec
