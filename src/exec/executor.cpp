#include "exec/executor.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "support/error.hpp"
#include "tools/composite.hpp"

namespace herc::exec {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;
using graph::TaskGroup;
using support::ExecError;
using support::FlowError;

const std::vector<InstanceId>& ExecResult::of(NodeId node) const {
  static const std::vector<InstanceId> kEmpty;
  const auto it = produced.find(node);
  return it == produced.end() ? kEmpty : it->second;
}

InstanceId ExecResult::single(NodeId node) const {
  const auto& vec = of(node);
  if (vec.size() != 1) {
    throw ExecError("expected exactly one instance for flow node, found " +
                    std::to_string(vec.size()));
  }
  return vec.front();
}

Executor::Executor(history::HistoryDb& db, const tools::ToolRegistry& tools)
    : db_(&db), tools_(&tools) {}

namespace {

/// Mutable state shared by the serial and parallel paths.  `mutex` guards
/// `env`, the result counters and all history-database access; tool
/// functions run outside the lock.
struct RunState {
  const TaskGraph* flow;
  history::HistoryDb* db;
  const tools::ToolRegistry* tools;
  const ExecOptions* options;
  std::mutex mutex;
  std::unordered_map<std::uint32_t, std::vector<InstanceId>> env;
  ExecResult result;
};

/// Cartesian-product odometer over input instance choices.
class Odometer {
 public:
  explicit Odometer(std::vector<std::size_t> sizes)
      : sizes_(std::move(sizes)), digits_(sizes_.size(), 0) {
    for (const std::size_t s : sizes_) {
      if (s == 0) exhausted_ = true;
    }
  }

  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] const std::vector<std::size_t>& digits() const {
    return digits_;
  }

  void advance() {
    for (std::size_t i = 0; i < digits_.size(); ++i) {
      if (++digits_[i] < sizes_[i]) return;
      digits_[i] = 0;
    }
    exhausted_ = true;
  }

 private:
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> digits_;
  bool exhausted_ = false;
};

/// Auto-name for a produced instance: the node's label when the designer
/// set one, otherwise `<Type>#<ordinal>`.
std::string instance_name(const TaskGraph& flow, NodeId node,
                          std::size_t ordinal) {
  const graph::Node& n = flow.node(node);
  if (!n.label.empty()) return n.label;
  return flow.schema().entity_name(n.type) + "#" + std::to_string(ordinal);
}

void execute_group(RunState& state, const TaskGroup& group) {
  const TaskGraph& flow = *state.flow;
  const schema::TaskSchema& schema = flow.schema();
  const NodeId primary = group.outputs.front();

  // Inputs in edge order of the primary output (compose order matters).
  const std::vector<NodeId> ordered_inputs = flow.inputs_of(primary);
  std::vector<std::string> roles;
  roles.reserve(ordered_inputs.size());
  for (const graph::DepEdge& e : flow.deps(primary)) {
    if (e.kind == schema::DepKind::kData) roles.push_back(e.role);
  }

  // Snapshot the instance choices under the lock.
  std::vector<std::vector<InstanceId>> choices(ordered_inputs.size());
  std::vector<InstanceId> tool_choices;
  {
    std::scoped_lock lock(state.mutex);
    for (std::size_t i = 0; i < ordered_inputs.size(); ++i) {
      const auto it = state.env.find(ordered_inputs[i].value());
      if (it == state.env.end() || it->second.empty()) {
        throw ExecError("flow '" + flow.name() + "': input node '" +
                        schema.entity_name(flow.node(ordered_inputs[i]).type) +
                        "' has no instances");
      }
      choices[i] = it->second;
    }
    if (group.tool.valid()) {
      const auto it = state.env.find(group.tool.value());
      if (it == state.env.end() || it->second.empty()) {
        throw ExecError("flow '" + flow.name() + "': tool node '" +
                        schema.entity_name(flow.node(group.tool).type) +
                        "' has no instance bound or produced");
      }
      tool_choices = it->second;
    }
  }

  // Set-accepting encapsulations consume whole instance sets in one call.
  bool accepts_sets = false;
  if (group.tool.valid()) {
    std::scoped_lock lock(state.mutex);
    const schema::EntityTypeId tool_type =
        state.db->instance(tool_choices.front()).type;
    accepts_sets = state.tools->resolve(tool_type).accepts_instance_sets;
  }

  std::vector<std::size_t> sizes;
  sizes.push_back(group.tool.valid() ? tool_choices.size() : 1);
  for (const auto& c : choices) {
    sizes.push_back(accepts_sets ? 1 : c.size());
  }

  for (Odometer odo(sizes); !odo.exhausted(); odo.advance()) {
    const auto& digits = odo.digits();
    const InstanceId tool_inst =
        group.tool.valid() ? tool_choices[digits[0]] : InstanceId();
    std::vector<std::vector<InstanceId>> combo(ordered_inputs.size());
    for (std::size_t i = 0; i < ordered_inputs.size(); ++i) {
      if (accepts_sets) {
        combo[i] = choices[i];
      } else {
        combo[i] = {choices[i][digits[i + 1]]};
      }
    }
    // Flat input list for derivation records and memoization.
    std::vector<InstanceId> flat_inputs;
    std::vector<std::string> flat_roles;
    for (std::size_t i = 0; i < combo.size(); ++i) {
      for (const InstanceId inst : combo[i]) {
        flat_inputs.push_back(inst);
        flat_roles.push_back(roles[i]);
      }
    }

    // Consistency memoization: skip the run when every output already has
    // a fresh instance derived the same way.
    if (state.options->reuse_existing) {
      std::scoped_lock lock(state.mutex);
      std::vector<InstanceId> found;
      bool all = true;
      for (const NodeId out : group.outputs) {
        const auto existing = state.db->find_existing(
            flow.node(out).type, tool_inst, flat_inputs);
        if (existing && !state.db->is_stale(*existing)) {
          found.push_back(*existing);
        } else {
          all = false;
          break;
        }
      }
      if (all) {
        for (std::size_t o = 0; o < group.outputs.size(); ++o) {
          state.env[group.outputs[o].value()].push_back(found[o]);
          state.result.produced[group.outputs[o]].push_back(found[o]);
        }
        ++state.result.tasks_reused;
        continue;
      }
    }

    // Build the tool context (payload copies made under the lock).
    tools::ToolContext ctx;
    ctx.schema = &schema;
    const tools::Encapsulation* enc = nullptr;
    std::string task_label = "compose";
    {
      std::scoped_lock lock(state.mutex);
      for (std::size_t i = 0; i < ordered_inputs.size(); ++i) {
        tools::ToolInput in;
        in.type = flow.node(ordered_inputs[i]).type;
        in.type_name = schema.entity_name(in.type);
        in.role = roles[i];
        for (const InstanceId inst : combo[i]) {
          // The history instance's actual type can be narrower than the
          // flow node's; report the actual one.
          in.type = state.db->instance(inst).type;
          in.type_name = schema.entity_name(in.type);
          in.instances.push_back(inst);
          in.payloads.push_back(state.db->payload(inst));
        }
        ctx.inputs.push_back(std::move(in));
      }
      if (group.tool.valid()) {
        ctx.tool_instance = tool_inst;
        ctx.tool_type = state.db->instance(tool_inst).type;
        ctx.tool_type_name = schema.entity_name(ctx.tool_type);
        ctx.tool_payload = state.db->payload(tool_inst);
        enc = &state.tools->resolve(ctx.tool_type);
        ctx.args = enc->args;
        task_label = enc->name;
      }
      // A set-accepting encapsulation sees one ToolInput per role: inputs
      // arriving through several trace edges of the same arc (recorded
      // set consumption) are merged back into one set.
      if (enc != nullptr && enc->accepts_instance_sets) {
        std::vector<tools::ToolInput> merged;
        for (tools::ToolInput& in : ctx.inputs) {
          bool appended = false;
          for (tools::ToolInput& m : merged) {
            if (m.role == in.role && m.type_name == in.type_name) {
              m.instances.insert(m.instances.end(), in.instances.begin(),
                                 in.instances.end());
              m.payloads.insert(m.payloads.end(),
                                std::make_move_iterator(in.payloads.begin()),
                                std::make_move_iterator(in.payloads.end()));
              appended = true;
              break;
            }
          }
          if (!appended) merged.push_back(std::move(in));
        }
        ctx.inputs = std::move(merged);
      }
    }

    // Run the tool outside the lock (this is the expensive part).
    if (state.options->task_latency.count() > 0) {
      std::this_thread::sleep_for(state.options->task_latency);
    }
    tools::ToolOutput out;
    if (enc != nullptr) {
      out = enc->fn(ctx);
    } else {
      // Compose task: consistency check, then pack the components.
      std::vector<std::string> parts;
      for (const tools::ToolInput& in : ctx.inputs) {
        for (const std::string& p : in.payloads) parts.push_back(p);
      }
      const NodeId out_node = primary;
      if (const auto* check =
              schema.compose_check(flow.node(out_node).type)) {
        std::string why;
        if (!(*check)(parts, why)) {
          throw ExecError("compose of '" +
                          schema.entity_name(flow.node(out_node).type) +
                          "' failed its consistency check: " + why);
        }
      }
      out.set(schema.entity_name(flow.node(out_node).type),
              tools::join_composite(parts));
    }

    // Record the products.
    {
      std::scoped_lock lock(state.mutex);
      for (const NodeId out_node : group.outputs) {
        const std::string& type_name =
            schema.entity_name(flow.node(out_node).type);
        const std::string* payload = out.find(type_name);
        if (payload == nullptr) {
          throw ExecError("task '" + task_label +
                          "' did not produce a '" + type_name + "'");
        }
        history::RecordRequest request;
        request.type = flow.node(out_node).type;
        request.name = instance_name(flow, out_node, state.db->size());
        request.user = state.options->user;
        request.comment = "produced by " + task_label + " in flow '" +
                          flow.name() + "'";
        request.payload = *payload;
        request.derivation.tool = tool_inst;
        request.derivation.inputs = flat_inputs;
        request.derivation.input_roles = flat_roles;
        request.derivation.task = task_label;
        const InstanceId id = state.db->record(request);
        state.env[out_node.value()].push_back(id);
        state.result.produced[out_node].push_back(id);
      }
      ++state.result.tasks_run;
    }
  }
}

ExecResult run_filtered(RunState& state, const std::vector<TaskGroup>& groups) {
  const ExecOptions& options = *state.options;
  if (!options.parallel || groups.size() < 2) {
    for (const TaskGroup& group : groups) execute_group(state, group);
    return std::move(state.result);
  }

  // Parallel scheduling: a group is ready once every group producing one of
  // its inputs (or its tool) has completed.
  std::unordered_map<std::uint32_t, std::size_t> producer;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const NodeId out : groups[g].outputs) {
      producer[out.value()] = g;
    }
  }
  std::vector<std::vector<std::size_t>> succs(groups.size());
  std::vector<std::size_t> indeg(groups.size(), 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    auto feeds = groups[g].inputs;
    if (groups[g].tool.valid()) feeds.push_back(groups[g].tool);
    std::unordered_set<std::size_t> preds;
    for (const NodeId in : feeds) {
      const auto it = producer.find(in.value());
      if (it != producer.end() && it->second != g) preds.insert(it->second);
    }
    for (const std::size_t p : preds) {
      succs[p].push_back(g);
      ++indeg[g];
    }
  }

  std::mutex sched_mutex;
  std::condition_variable cv;
  std::deque<std::size_t> ready;
  std::size_t completed = 0;
  bool failed = false;
  std::exception_ptr error;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (indeg[g] == 0) ready.push_back(g);
  }

  const std::size_t n_workers =
      std::min<std::size_t>(std::max<std::size_t>(options.max_threads, 1),
                            groups.size());
  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers.emplace_back([&]() {
      while (true) {
        std::size_t g;
        {
          std::unique_lock lock(sched_mutex);
          cv.wait(lock, [&] {
            return !ready.empty() || completed == groups.size() || failed;
          });
          if (failed || completed == groups.size()) return;
          g = ready.front();
          ready.pop_front();
        }
        try {
          execute_group(state, groups[g]);
        } catch (...) {
          std::scoped_lock lock(sched_mutex);
          if (!failed) {
            failed = true;
            error = std::current_exception();
          }
          cv.notify_all();
          return;
        }
        {
          std::scoped_lock lock(sched_mutex);
          ++completed;
          for (const std::size_t s : succs[g]) {
            if (--indeg[s] == 0) ready.push_back(s);
          }
          cv.notify_all();
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (failed) std::rethrow_exception(error);
  return std::move(state.result);
}

}  // namespace

ExecResult Executor::run(const TaskGraph& flow, const ExecOptions& options) {
  flow.check();
  const auto unbound = flow.unbound_leaves();
  if (!unbound.empty()) {
    throw FlowError("flow '" + flow.name() + "': leaf node '" +
                    flow.schema().entity_name(flow.node(unbound.front()).type) +
                    "' is not bound to an instance");
  }
  RunState state;
  state.flow = &flow;
  state.db = db_;
  state.tools = tools_;
  state.options = &options;
  for (const NodeId n : flow.nodes()) {
    if (flow.is_leaf(n)) state.env[n.value()] = flow.bindings(n);
  }
  return run_filtered(state, flow.task_groups());
}

ExecResult Executor::run_goal(const TaskGraph& flow, NodeId goal,
                              const ExecOptions& options) {
  flow.check();
  const std::vector<NodeId> keep = flow.closure(goal);
  const std::unordered_set<std::uint32_t> keep_set = [&] {
    std::unordered_set<std::uint32_t> s;
    for (const NodeId n : keep) s.insert(n.value());
    return s;
  }();
  for (const NodeId n : keep) {
    if (flow.is_leaf(n) && flow.bindings(n).empty()) {
      throw FlowError("sub-flow at '" +
                      flow.schema().entity_name(flow.node(goal).type) +
                      "': leaf '" +
                      flow.schema().entity_name(flow.node(n).type) +
                      "' is not bound");
    }
  }
  RunState state;
  state.flow = &flow;
  state.db = db_;
  state.tools = tools_;
  state.options = &options;
  for (const NodeId n : keep) {
    if (flow.is_leaf(n)) state.env[n.value()] = flow.bindings(n);
  }
  // Keep a group when any of its outputs feeds the goal; a multi-output
  // task naturally produces its siblings along the way.
  std::vector<TaskGroup> groups;
  for (const TaskGroup& group : flow.task_groups()) {
    const bool needed = std::any_of(
        group.outputs.begin(), group.outputs.end(), [&](NodeId out) {
          return keep_set.contains(out.value());
        });
    if (needed) groups.push_back(group);
  }
  return run_filtered(state, groups);
}

}  // namespace herc::exec
