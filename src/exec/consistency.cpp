#include "exec/consistency.hpp"

#include "support/error.hpp"

namespace herc::exec {

using data::InstanceId;
using graph::NodeId;
using support::ExecError;

InstanceId latest_version(const history::HistoryDb& db, InstanceId id) {
  InstanceId cur = id;
  while (true) {
    const std::vector<InstanceId> children = db.edit_children(cur);
    if (children.empty()) return cur;
    InstanceId newest = children.front();
    for (const InstanceId c : children) {
      if (db.instance(c).created > db.instance(newest).created) newest = c;
    }
    cur = newest;
  }
}

ConsistencyReport check_consistency(const history::HistoryDb& db,
                                    InstanceId id) {
  ConsistencyReport report;
  for (const InstanceId stale : db.stale_inputs(id)) {
    report.fresh = false;
    report.replacements.push_back(
        ConsistencyReport::Replacement{stale, latest_version(db, stale)});
  }
  return report;
}

std::vector<InstanceId> retrace(history::HistoryDb& db,
                                const tools::ToolRegistry& tools,
                                InstanceId id, const ExecOptions& options) {
  const ConsistencyReport report = check_consistency(db, id);
  if (report.fresh) {
    throw ExecError("instance is up to date; nothing to retrace");
  }

  // Rebuild the derivation as a flow and rebind its leaves to the newest
  // versions.
  graph::TaskGraph trace = history::backward_trace(db, id);
  NodeId goal;
  for (const NodeId n : trace.nodes()) {
    const auto& bound = trace.bindings(n);
    const bool is_goal = !bound.empty() && bound.front() == id;
    if (is_goal) goal = n;
    if (trace.is_leaf(n)) {
      trace.bind(n, latest_version(db, bound.front()));
    } else {
      trace.unbind(n);
    }
  }
  if (!goal.valid()) {
    throw ExecError("retrace: goal instance not found in its own trace");
  }

  // Fresh sub-derivations are picked up by memoization instead of being
  // recomputed.
  ExecOptions retrace_options = options;
  retrace_options.reuse_existing = true;

  Executor executor(db, tools);
  ExecResult result = executor.run(trace, retrace_options);
  return result.of(goal);
}

}  // namespace herc::exec
