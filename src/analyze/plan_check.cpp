#include "analyze/plan_check.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace herc::analyze {

using graph::NodeId;
using graph::TaskGraph;
using graph::TaskGroup;
using schema::EntityTypeId;
using schema::TaskSchema;

namespace {

std::string node_loc(const TaskGraph& flow, NodeId n) {
  return "node " + std::to_string(n.value()) + " (" +
         flow.schema().entity_name(flow.node(n).type) + ")";
}

std::string group_loc(const TaskGraph& flow, const TaskGroup& g) {
  return "task producing " + node_loc(flow, g.outputs.front());
}

/// The root of an entity's subtype chain — version lineages live on root
/// types (an EditedNetlist derived from a Netlist *edits* it: same root,
/// version v+1).
EntityTypeId root_type(const TaskSchema& schema, EntityTypeId id) {
  EntityTypeId cur = id;
  while (schema.entity(cur).parent.valid()) cur = schema.entity(cur).parent;
  return cur;
}

/// The symbolic schedule: task groups plus which groups can overlap in a
/// parallel run (no dependency path either way).
class Schedule {
 public:
  explicit Schedule(const TaskGraph& flow)
      : flow_(flow), groups_(flow.task_groups()) {
    std::unordered_map<std::uint32_t, std::size_t> producer;
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      for (const NodeId out : groups_[i].outputs) {
        producer.emplace(out.value(), i);
      }
    }
    preds_.resize(groups_.size());
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      for (const NodeId in : groups_[i].inputs) {
        const auto it = producer.find(in.value());
        if (it != producer.end() && it->second != i) {
          preds_[i].push_back(it->second);
        }
      }
    }
    // task_groups() is topologically ordered (dependencies first), so one
    // forward sweep closes the reachability relation.
    reach_.assign(groups_.size(), std::vector<bool>(groups_.size(), false));
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      for (const std::size_t p : preds_[i]) {
        reach_[i][p] = true;
        for (std::size_t k = 0; k < groups_.size(); ++k) {
          if (reach_[p][k]) reach_[i][k] = true;
        }
      }
    }
  }

  [[nodiscard]] const std::vector<TaskGroup>& groups() const {
    return groups_;
  }
  [[nodiscard]] const std::vector<std::size_t>& preds(std::size_t i) const {
    return preds_[i];
  }

  /// True when no dependency path orders the two groups — the parallel
  /// scheduler may dispatch them simultaneously.
  [[nodiscard]] bool concurrent(std::size_t a, std::size_t b) const {
    return !reach_[a][b] && !reach_[b][a];
  }

 private:
  const TaskGraph& flow_;
  std::vector<TaskGroup> groups_;
  std::vector<std::vector<std::size_t>> preds_;
  std::vector<std::vector<bool>> reach_;
};

void check_version_races(const TaskGraph& flow, const Schedule& sched,
                         LintReport& report) {
  const TaskSchema& schema = flow.schema();
  const auto& groups = sched.groups();
  // input node -> groups whose outputs share its root type (edits: the
  // history will assign those outputs version v+1 of the input's lineage).
  std::map<std::uint32_t, std::vector<std::size_t>> editors;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    for (const NodeId in : groups[i].inputs) {
      const EntityTypeId in_root = root_type(schema, flow.node(in).type);
      const bool edits = std::any_of(
          groups[i].outputs.begin(), groups[i].outputs.end(),
          [&](NodeId out) {
            return root_type(schema, flow.node(out).type) == in_root;
          });
      if (edits) editors[in.value()].push_back(i);
    }
  }
  for (const auto& [node_raw, who] : editors) {
    for (std::size_t a = 0; a < who.size(); ++a) {
      for (std::size_t b = a + 1; b < who.size(); ++b) {
        if (!sched.concurrent(who[a], who[b])) continue;
        const NodeId shared{node_raw};
        report.add(
            "HL201", Severity::kError, group_loc(flow, groups[who[a]]),
            "version race: this task and the " +
                group_loc(flow, groups[who[b]]) + " can run concurrently "
                "and both edit " + node_loc(flow, shared) +
                " — both derive version v+1 of the same lineage, and "
                "which edit wins depends on scheduling",
            "chain the edits ('flow connect' one task's output into the "
            "other) or run the flow serially");
      }
    }
  }
}

void check_duplicate_tasks(const TaskGraph& flow, const Schedule& sched,
                           LintReport& report) {
  const auto& groups = sched.groups();
  // Identity of the work a group performs: tool *type* (or compose),
  // exact input nodes, output types.
  using Key = std::tuple<std::uint32_t, std::vector<std::uint32_t>,
                         std::vector<std::uint32_t>>;
  std::map<Key, std::vector<std::size_t>> by_work;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const std::uint32_t tool_type =
        groups[i].tool.valid() ? flow.node(groups[i].tool).type.value()
                               : UINT32_MAX;
    std::vector<std::uint32_t> ins;
    for (const NodeId n : groups[i].inputs) ins.push_back(n.value());
    std::sort(ins.begin(), ins.end());
    std::vector<std::uint32_t> out_types;
    for (const NodeId n : groups[i].outputs) {
      out_types.push_back(flow.node(n).type.value());
    }
    std::sort(out_types.begin(), out_types.end());
    by_work[{tool_type, std::move(ins), std::move(out_types)}].push_back(i);
  }
  for (const auto& [key, who] : by_work) {
    for (std::size_t a = 0; a < who.size(); ++a) {
      for (std::size_t b = a + 1; b < who.size(); ++b) {
        if (!sched.concurrent(who[a], who[b])) continue;
        report.add("HL202", Severity::kWarning,
                   group_loc(flow, groups[who[a]]),
                   "duplicate task: the " + group_loc(flow, groups[who[b]]) +
                       " runs the same tool type over the same input nodes "
                       "for the same output types — identical work "
                       "dispatched twice",
                   "reuse one task's outputs ('flow connect') instead of "
                   "duplicating the subgraph");
      }
    }
  }
}

void check_fault_policy(const TaskGraph& flow, const Schedule& sched,
                        LintReport& report) {
  const auto& groups = sched.groups();
  std::unordered_map<std::uint32_t, std::size_t> producer;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    for (const NodeId out : groups[i].outputs) {
      producer.emplace(out.value(), i);
    }
  }
  for (std::size_t i = 0; i < groups.size(); ++i) {
    // For each producer group feeding this one, collect whether any wiring
    // edge is mandatory.  An all-optional link still causes a skip when the
    // producer fails (the scheduler does not distinguish), which the
    // optional arc's promise contradicts.
    std::unordered_map<std::size_t, bool> any_mandatory;
    for (const NodeId out : groups[i].outputs) {
      for (const graph::DepEdge& e : flow.deps(out)) {
        if (e.kind != schema::DepKind::kData) continue;
        const auto it = producer.find(e.target.value());
        if (it == producer.end() || it->second == i) continue;
        any_mandatory[it->second] =
            any_mandatory[it->second] || !e.optional;
      }
    }
    for (const auto& [p, mandatory] : any_mandatory) {
      if (mandatory) continue;
      report.add(
          "HL203", Severity::kWarning, group_loc(flow, groups[i]),
          "fault-policy hazard: depends on the " +
              group_loc(flow, groups[p]) + " only through optional arcs, "
              "but under continue_branches its failure still skips this "
              "task",
          "make the dependency mandatory (the skip is then expected) or "
          "drop the optional edge so the task can proceed without it");
    }
  }
}

}  // namespace

LintReport lint_plan(const TaskGraph& flow, const PlanCheckOptions& options) {
  LintReport report("plan for flow '" + flow.name() + "'");
  const Schedule sched(flow);
  if (options.parallel) {
    check_version_races(flow, sched, report);
    check_duplicate_tasks(flow, sched, report);
  }
  if (options.continue_on_failure) {
    check_fault_policy(flow, sched, report);
  }
  return report;
}

}  // namespace herc::analyze
