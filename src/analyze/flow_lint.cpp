#include "analyze/flow_lint.hpp"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analyze/schema_lint.hpp"
#include "history/instance.hpp"

namespace herc::analyze {

using data::InstanceId;
using graph::NodeId;
using graph::TaskGraph;
using history::InstanceStatus;
using schema::EntityTypeId;
using schema::TaskSchema;

namespace {

std::string node_loc(const TaskGraph& flow, NodeId n) {
  return "node " + std::to_string(n.value()) + " (" +
         flow.schema().entity_name(flow.node(n).type) + ")";
}

const char* status_name(InstanceStatus status) {
  switch (status) {
    case InstanceStatus::kFailed:
      return "failed";
    case InstanceStatus::kSkipped:
      return "skipped";
    case InstanceStatus::kQuarantined:
      return "quarantined";
    default:
      return "ok";
  }
}

/// True when some concrete descendant of `type` has a construction rule,
/// i.e. an unbound node of `type` could still be specialized and expanded
/// into a producing task.
bool can_produce(const TaskSchema& schema, EntityTypeId type) {
  for (const EntityTypeId d : schema.concrete_descendants(type)) {
    if (!schema.is_source(d)) return true;
  }
  return false;
}

/// One bound instance checked against its node (HL101/HL102).  Returns
/// true when the binding satisfies the node.
bool lint_binding(const TaskGraph& flow, NodeId n, InstanceId id,
                  const history::HistoryDb& db, LintReport& report) {
  const TaskSchema& schema = flow.schema();
  if (!db.contains(id)) {
    report.add("HL101", Severity::kError, node_loc(flow, n),
               "bound to i" + std::to_string(id.value()) +
                   ", which does not exist in the design history",
               "rebind the node ('flow bind') to a live instance");
    return false;
  }
  const history::Instance& inst = db.instance(id);
  if (!schema.is_ancestor_or_self(flow.node(n).type, inst.type)) {
    report.add("HL101", Severity::kError, node_loc(flow, n),
               "bound to i" + std::to_string(id.value()) + " of type '" +
                   schema.entity_name(inst.type) +
                   "', which does not satisfy the node type",
               "bind an instance of '" +
                   schema.entity_name(flow.node(n).type) +
                   "' or one of its subtypes");
    return false;
  }
  if (!inst.ok()) {
    report.add("HL102", Severity::kError, node_loc(flow, n),
               std::string("bound to i") + std::to_string(id.value()) +
                   ", a " + status_name(inst.status) +
                   " record that is invisible to execution",
               "rebind to an OK instance (see 'failures' for why it was " +
                   std::string(status_name(inst.status)) + ")");
    return false;
  }
  return true;
}

/// Per-node satisfiability: can the dependency closure of the node be
/// completed by some sequence of bind/expand steps?  Bound nodes with
/// valid bindings are satisfiable; expanded nodes need every wired
/// dependency satisfiable; unbound leaves need either a bindable instance
/// in the history or a producing expansion path in the schema.  Without a
/// database the binding side is assumed satisfiable (static-only lint).
class SatSolver {
 public:
  SatSolver(const TaskGraph& flow, const history::HistoryDb* db)
      : flow_(flow), db_(db) {}

  bool sat(NodeId n) {
    const auto it = memo_.find(n.value());
    if (it != memo_.end()) return it->second;
    // A DAG by construction, so plain recursion terminates.
    bool ok;
    const graph::Node& node = flow_.node(n);
    const auto& edges = flow_.deps(n);
    if (!edges.empty()) {
      ok = true;
      for (const auto& e : edges) ok = ok && sat(e.target);
    } else if (!node.bound.empty()) {
      ok = true;
      if (db_ != nullptr) {
        for (const InstanceId id : node.bound) {
          ok = ok && db_->contains(id) && db_->instance(id).ok() &&
               flow_.schema().is_ancestor_or_self(node.type,
                                                  db_->instance(id).type);
        }
      }
    } else if (db_ == nullptr) {
      ok = true;  // no history context: assume bindable
    } else {
      ok = !db_->instances_of(node.type).empty() ||
           can_produce(flow_.schema(), node.type);
    }
    memo_.emplace(n.value(), ok);
    return ok;
  }

 private:
  const TaskGraph& flow_;
  const history::HistoryDb* db_;
  std::unordered_map<std::uint32_t, bool> memo_;
};

void lint_bindings(const TaskGraph& flow, const FlowLintOptions& options,
                   LintReport& report) {
  if (options.db == nullptr) return;
  for (const NodeId n : flow.nodes()) {
    for (const InstanceId id : flow.bindings(n)) {
      lint_binding(flow, n, id, *options.db, report);
    }
  }
}

void lint_unbindable_leaves(const TaskGraph& flow,
                            const FlowLintOptions& options,
                            LintReport& report) {
  if (options.db == nullptr) return;
  for (const NodeId n : flow.nodes()) {
    const graph::Node& node = flow.node(n);
    if (!flow.deps(n).empty() || !node.bound.empty()) continue;
    if (options.db->instances_of(node.type).empty() &&
        !can_produce(flow.schema(), node.type)) {
      report.add("HL103", Severity::kError, node_loc(flow, n),
                 "unbindable: the history holds no instance of this type "
                 "and no subtype has a producing construction rule",
                 "import an instance of '" +
                     flow.schema().entity_name(node.type) +
                     "' before running");
    }
  }
}

void lint_dead_branches(const TaskGraph& flow, const FlowLintOptions& options,
                        LintReport& report) {
  if (!options.goal.valid()) return;
  std::unordered_set<std::uint32_t> live;
  for (const NodeId n : flow.closure(options.goal)) live.insert(n.value());
  for (const NodeId n : flow.nodes()) {
    if (live.contains(n.value())) continue;
    report.add("HL104", Severity::kWarning, node_loc(flow, n),
               "dead branch: not part of the dependency closure of the "
               "goal " + node_loc(flow, options.goal),
               "run it separately ('run_goal') or unexpand it");
  }
}

void lint_memoization_hazards(const TaskGraph& flow,
                              const FlowLintOptions& options,
                              LintReport& report) {
  if (options.tools == nullptr) return;
  for (const NodeId n : flow.nodes()) {
    const NodeId tool = flow.tool_of(n);
    if (!tool.valid()) continue;
    const EntityTypeId tool_type = flow.node(tool).type;
    if (!options.tools->has(tool_type)) continue;
    const tools::Encapsulation& enc = options.tools->resolve(tool_type);
    if (enc.deterministic || flow.consumers_of(n).empty()) continue;
    report.add("HL105", Severity::kWarning, node_loc(flow, n),
               "memoization hazard: produced by nondeterministic "
               "encapsulation '" + enc.name +
                   "' and feeds further tasks; reuse/resume may silently "
                   "reuse a product a fresh run would not reproduce",
               "run the subgraph without 'reuse', or mark the "
               "encapsulation deterministic if it actually is");
  }
}

void lint_discarded_siblings(const TaskGraph& flow, LintReport& report) {
  const TaskSchema& schema = flow.schema();
  for (const graph::TaskGroup& group : flow.task_groups()) {
    if (!group.tool.valid()) continue;
    const schema::ConstructionRule rule =
        schema.construction(flow.node(group.outputs.front()).type);
    if (rule.empty()) continue;
    const std::string sig = rule_signature(schema, rule);
    std::unordered_set<std::uint32_t> produced;
    for (const NodeId out : group.outputs) {
      produced.insert(flow.node(out).type.value());
    }
    for (const EntityTypeId s : schema.all()) {
      if (schema.is_abstract(s) || produced.contains(s.value())) continue;
      const schema::ConstructionRule sibling = schema.construction(s);
      if (sibling.empty() || !sibling.has_tool()) continue;
      if (rule_signature(schema, sibling) != sig) continue;
      report.add("HL106", Severity::kWarning,
                 node_loc(flow, group.outputs.front()),
                 "this task's tool also produces '" + schema.entity_name(s) +
                     "' from the same inputs; without a co-output node "
                     "that product is silently discarded",
                 "add it with 'flow cooutput <f> " +
                     std::to_string(group.outputs.front().value()) + " " +
                     schema.entity_name(s) + "' if it is wanted");
    }
  }
}

void lint_goal_satisfiability(const TaskGraph& flow,
                              const FlowLintOptions& options,
                              LintReport& report) {
  SatSolver solver(flow, options.db);
  std::vector<NodeId> goals;
  if (options.goal.valid()) {
    goals.push_back(options.goal);
  } else {
    goals = flow.goals();
  }
  for (const NodeId g : goals) {
    if (solver.sat(g)) continue;
    report.add("HL107", Severity::kError, node_loc(flow, g),
               "unsatisfiable goal: no sequence of bind/expand steps can "
               "complete its dependency closure",
               "fix the unbindable or invalid bindings it depends on "
               "(see the HL101/HL102/HL103 diagnostics)");
  }
}

}  // namespace

LintReport lint_flow(const TaskGraph& flow, const FlowLintOptions& options) {
  LintReport report("flow '" + flow.name() + "'");
  lint_bindings(flow, options, report);
  lint_unbindable_leaves(flow, options, report);
  lint_dead_branches(flow, options, report);
  lint_memoization_hazards(flow, options, report);
  lint_discarded_siblings(flow, report);
  lint_goal_satisfiability(flow, options, report);
  return report;
}

}  // namespace herc::analyze
