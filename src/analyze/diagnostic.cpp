#include "analyze/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>
#include <vector>

namespace herc::analyze {

namespace {

/// Minimal JSON string escaping (the report carries entity names and
/// free-text messages).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void LintReport::add(std::string code, Severity severity, std::string location,
                     std::string message, std::string fixit) {
  diagnostics_.push_back(Diagnostic{std::move(code), severity,
                                    std::move(location), std::move(message),
                                    std::move(fixit)});
}

void LintReport::merge(const LintReport& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

Severity LintReport::severity() const {
  Severity worst = Severity::kClean;
  for (const Diagnostic& d : diagnostics_) {
    worst = support::worse(worst, d.severity);
  }
  return worst;
}

bool LintReport::has(std::string_view code) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) return true;
  }
  return false;
}

std::size_t LintReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string LintReport::render() const {
  std::ostringstream out;
  out << "lint " << subject_ << "\n";
  for (const Diagnostic& d : diagnostics_) {
    out << "  " << support::to_string(d.severity) << " " << d.code << " "
        << d.location << ": " << d.message << "\n";
    if (!d.fixit.empty()) out << "    fix: " << d.fixit << "\n";
  }
  const Severity worst = severity();
  out << "verdict: "
      << (worst == Severity::kClean     ? "CLEAN"
          : worst == Severity::kWarning ? "WARNINGS"
                                        : "ERRORS")
      << " (" << count(Severity::kError) << " error(s), "
      << count(Severity::kWarning) << " warning(s))\n";
  return out.str();
}

std::string LintReport::render_json() const {
  // Machine-readable output is sorted so diffs and golden files are stable
  // no matter which order the lint passes emitted their findings in.  The
  // human rendering above keeps emission order, which follows pass order
  // and reads more naturally.
  std::vector<Diagnostic> sorted = diagnostics_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.code, a.location, a.message, a.severity) <
                     std::tie(b.code, b.location, b.message, b.severity);
            });
  std::ostringstream out;
  out << "{\"subject\":\"" << json_escape(subject_) << "\",\"severity\":\""
      << support::to_string(severity()) << "\",\"exit_code\":" << exit_code()
      << ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : sorted) {
    if (!first) out << ",";
    first = false;
    out << "{\"code\":\"" << json_escape(d.code) << "\",\"severity\":\""
        << support::to_string(d.severity) << "\",\"location\":\""
        << json_escape(d.location) << "\",\"message\":\""
        << json_escape(d.message) << "\"";
    if (!d.fixit.empty()) {
      out << ",\"fixit\":\"" << json_escape(d.fixit) << "\"";
    }
    out << "}";
  }
  out << "]}\n";
  return out.str();
}

}  // namespace herc::analyze
