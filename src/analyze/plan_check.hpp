// Pass 3 of `herc lint`: symbolic simulation of a run plan.
//
// The executor turns a flow into a DAG of task groups and, in parallel
// mode, dispatches every group whose dependencies are satisfied.  Two
// groups with no path between them may therefore run concurrently — and
// some flows that are perfectly legal graphs become races or wasted work
// under that schedule.  This pass simulates the schedule symbolically
// (which groups *can* overlap), without running any tool.
//
// Diagnostic catalog (DESIGN.md §12 holds the full table):
//
//   HL201 error    concurrent version-lineage conflict: two groups that can
//                  run concurrently both *edit* the same input node (their
//                  output's root entity type equals the input's root type),
//                  so both derive version v+1 of the same lineage — which
//                  one wins depends on scheduling
//   HL202 warning  duplicate task: two concurrent groups run the same tool
//                  type over the same input nodes for the same output
//                  types — identical work dispatched twice
//   HL203 warning  fault-policy hazard: under continue_branches/best_effort
//                  a consumer is wired to a producer only through optional
//                  arcs, yet the scheduler still skips it when the producer
//                  fails — the optional arc suggests it could proceed
//
// HL201/HL202 are only meaningful for parallel schedules; a serial run
// executes groups in plan order, where a double edit is a legitimate
// version chain.
#pragma once

#include "analyze/diagnostic.hpp"
#include "graph/task_graph.hpp"

namespace herc::analyze {

struct PlanCheckOptions {
  /// Simulate the parallel scheduler (enables HL201/HL202).
  bool parallel = true;
  /// Simulate continue_branches / best_effort failure handling (enables
  /// HL203).
  bool continue_on_failure = false;
};

/// Runs every plan check over the flow's task groups; never throws on plan
/// defects (they become diagnostics).  Propagates `FlowError` only if the
/// flow itself is cyclic (task_groups() cannot order it).
[[nodiscard]] LintReport lint_plan(const graph::TaskGraph& flow,
                                   const PlanCheckOptions& options = {});

}  // namespace herc::analyze
