// The diagnostics engine behind `herc lint`.
//
// The paper's premise is that a task schema statically constrains which
// flows a designer may build (§3.1–3.2); this subsystem turns that premise
// into tooling that runs *before* anything executes.  Three analysis
// passes — schema lint (`schema_lint.hpp`), flow lint (`flow_lint.hpp`)
// and the plan race check (`plan_check.hpp`) — emit `Diagnostic`s into a
// `LintReport`, which renders as text or JSON and maps its worst severity
// to the same 0/1/2 exit-code convention `fsck` uses (see
// `support/severity.hpp`).
//
// Every diagnostic carries a stable code `HLxxx` (HL0xx schema, HL1xx
// flow, HL2xx plan, HL3xx store cross-checks) that scripts and tests
// match on, plus an optional `fixit` suggestion.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "support/severity.hpp"

namespace herc::analyze {

using support::Severity;

/// One finding of an analysis pass.
struct Diagnostic {
  /// Stable identifier ("HL104"); the catalog lives in DESIGN.md §12.
  std::string code;
  Severity severity = Severity::kWarning;
  /// Where the defect sits ("entity 'Netlist'", "node 3 (Performance)").
  std::string location;
  /// What is wrong.
  std::string message;
  /// How to fix it; may be empty.
  std::string fixit;
};

/// The accumulated result of one or more analysis passes.
class LintReport {
 public:
  explicit LintReport(std::string subject = "") : subject_(std::move(subject)) {}

  void add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void add(std::string code, Severity severity, std::string location,
           std::string message, std::string fixit = "");
  /// Appends every diagnostic of `other` (pass composition).
  void merge(const LintReport& other);

  [[nodiscard]] const std::string& subject() const { return subject_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] bool clean() const { return diagnostics_.empty(); }

  /// Worst severity across diagnostics (kClean when none).
  [[nodiscard]] Severity severity() const;
  /// Exit code: 0 clean, 1 warnings only, 2 errors — identical to fsck.
  [[nodiscard]] int exit_code() const {
    return support::exit_code(severity());
  }
  /// True when some diagnostic carries `code`.
  [[nodiscard]] bool has(std::string_view code) const;
  /// Number of diagnostics at exactly `severity`.
  [[nodiscard]] std::size_t count(Severity severity) const;

  /// Multi-line human rendering (one line per diagnostic + verdict).
  [[nodiscard]] std::string render() const;
  /// JSON rendering: {"subject", "severity", "diagnostics": [...]}.
  [[nodiscard]] std::string render_json() const;

 private:
  std::string subject_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace herc::analyze
