// Pass 2 of `herc lint`: static analysis of a dynamically defined flow.
//
// A `TaskGraph` is structurally valid by construction (every mutation is
// schema-checked), but plenty can still be wrong with it *as a plan*:
// bindings may point at instances that no longer satisfy them, leaves may
// be unbindable against the actual design history, branches may not
// contribute to the goal, and execution options may interact badly with
// the tools involved.  This pass finds those defects without running any
// tool.
//
// The history database and tool registry are optional context: checks
// that need them are skipped when they are absent (linting a bare flow
// file still runs the structural checks).
//
// Diagnostic catalog (DESIGN.md §12 holds the full table):
//
//   HL101 error    binding to an unknown instance, or to an instance whose
//                  type does not satisfy the node's type
//   HL102 error    binding to a quarantined / failed / skipped instance —
//                  invisible to execution, the run would rebind or throw
//   HL103 error    unbindable leaf: unbound, cannot be expanded into a
//                  producing task, and the history holds no instance of
//                  its type
//   HL104 warning  dead branch: the node cannot reach the designated goal
//                  (only checked when a goal node is given)
//   HL105 warning  memoization hazard: a nondeterministic tool's product
//                  feeds further tasks — reuse/resume may silently reuse a
//                  product a fresh run would not reproduce
//   HL106 warning  discarded sibling: the schema says this task's tool
//                  also produces another entity type from the same inputs,
//                  but the flow has no co-output node for it
//   HL107 error    unsatisfiable goal: no sequence of bind/expand steps
//                  can complete the goal's dependency closure
#pragma once

#include "analyze/diagnostic.hpp"
#include "graph/task_graph.hpp"
#include "history/history_db.hpp"
#include "tools/registry.hpp"

namespace herc::analyze {

struct FlowLintOptions {
  /// Design history to resolve bindings against; binding and bindability
  /// checks (HL101–HL103, HL107's leaf analysis) need it.
  const history::HistoryDb* db = nullptr;
  /// Tool registry for the memoization-hazard check (HL105).
  const tools::ToolRegistry* tools = nullptr;
  /// The node the designer intends to run; enables the dead-branch check
  /// (HL104) and focuses HL107.  Invalid id = lint the whole flow.
  graph::NodeId goal;
};

/// Runs every flow check; never throws on flow defects (they become
/// diagnostics).
[[nodiscard]] LintReport lint_flow(const graph::TaskGraph& flow,
                                   const FlowLintOptions& options = {});

}  // namespace herc::analyze
