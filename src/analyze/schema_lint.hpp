// Pass 1 of `herc lint`: static analysis of a task schema.
//
// Subsumes and extends `TaskSchema::validate()` (which delegates here, so
// there is exactly one schema checker).  Error-severity diagnostics are
// the conditions `validate()` has always rejected; warnings are new,
// advisory findings about schema shapes that are legal but defeat the
// paper's machinery (ambiguous specialization, dead declarations).
//
// Diagnostic catalog (DESIGN.md §12 holds the full table):
//
//   HL001 error    unconstructible entity: a mandatory fd/dd cycle with no
//                  optional-arc escape and no alternative subtype — no
//                  instance can ever be produced from source entities
//   HL002 error    abstract entity with no concrete descendant — a flow
//                  node of this type can never be specialized
//   HL003 error    composite entity without a data dependency
//   HL004 warning  ambiguous subtype construction: two concrete siblings
//                  with interchangeable rules (same tool, same input
//                  types/roles) — the same bound inputs satisfy either, so
//                  specialization cannot be derived from the data
//   HL005 warning  disconnected data entity: no arcs, no consumers, no
//                  subtype relations — unreachable from every flow
//   HL006 warning  unused tool: never the functional-dependency target of
//                  any construction rule (itself or via an ancestor)
//   HL007 warning  shadowing rule is identical to the inherited one — the
//                  subtype redeclares exactly what it would inherit
#pragma once

#include "analyze/diagnostic.hpp"
#include "schema/task_schema.hpp"

namespace herc::analyze {

/// Runs every schema check; never throws on schema defects (they become
/// diagnostics).
[[nodiscard]] LintReport lint_schema(const schema::TaskSchema& schema);

/// A comparable signature of a construction rule: the tool target plus the
/// sorted (target, role, optional) triples of its data inputs.  Two rules
/// with equal signatures are satisfiable by exactly the same bound inputs —
/// the ambiguity test of HL004 and the sibling-product test of HL106.
[[nodiscard]] std::string rule_signature(const schema::TaskSchema& schema,
                                         const schema::ConstructionRule& rule);

}  // namespace herc::analyze
