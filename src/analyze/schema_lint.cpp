#include "analyze/schema_lint.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace herc::analyze {

using schema::ConstructionRule;
using schema::Dependency;
using schema::EntityKind;
using schema::EntityType;
using schema::EntityTypeId;
using schema::TaskSchema;

std::string rule_signature(const TaskSchema& schema,
                           const ConstructionRule& rule) {
  std::string sig = "fd:";
  sig += rule.has_tool() ? schema.entity_name(rule.tool) : "-";
  std::vector<std::string> inputs;
  inputs.reserve(rule.inputs.size());
  for (const Dependency& d : rule.inputs) {
    inputs.push_back(schema.entity_name(d.target) + "/" + d.role +
                     (d.optional ? "?" : ""));
  }
  std::sort(inputs.begin(), inputs.end());
  for (const std::string& in : inputs) {
    sig += ";";
    sig += in;
  }
  return sig;
}

namespace {

/// The rule an entity's *own* declarations build (no inheritance), used to
/// compare a shadowing declaration against what it shadows.
ConstructionRule own_rule(const TaskSchema& schema, EntityTypeId id) {
  ConstructionRule rule;
  rule.owner = id;
  for (const Dependency& d : schema.entity(id).deps) {
    if (d.kind == schema::DepKind::kFunctional) {
      rule.tool = d.target;
    } else {
      rule.inputs.push_back(d);
    }
  }
  return rule;
}

/// True when some construction rule can be served by a tool instance of
/// `tool` — the rule's fd target is an ancestor of `tool` (resolution
/// narrows) or a descendant (the rule names a subtype of it).
bool tool_is_used(const TaskSchema& schema, EntityTypeId tool) {
  for (const EntityTypeId e : schema.all()) {
    const ConstructionRule rule = schema.construction(e);
    if (rule.owner != e || !rule.has_tool()) continue;
    if (schema.is_ancestor_or_self(rule.tool, tool) ||
        schema.is_ancestor_or_self(tool, rule.tool)) {
      return true;
    }
  }
  return false;
}

void lint_structure(const TaskSchema& schema, LintReport& report) {
  // The error-severity conditions `TaskSchema::validate()` rejects, in the
  // order it historically checked them (validate delegates here and throws
  // on the first error diagnostic).
  for (const EntityTypeId id : schema.all()) {
    const EntityType& e = schema.entity(id);
    if (e.composite) {
      bool has_dd = false;
      for (const Dependency& d : e.deps) {
        has_dd |= (d.kind == schema::DepKind::kData);
      }
      if (!has_dd) {
        report.add("HL003", Severity::kError,
                   "composite entity '" + e.name + "'",
                   "must have at least one data dependency",
                   "declare the component entities with 'dd'");
      }
    }
    if (e.abstract && schema.concrete_descendants(id).empty()) {
      report.add("HL002", Severity::kError, "abstract entity '" + e.name + "'",
                 "has no concrete descendant",
                 "add a concrete subtype or drop 'abstract'");
    }
    if (!e.abstract && !schema.groundable(id)) {
      report.add("HL001", Severity::kError, "entity '" + e.name + "'",
                 "can never be produced: a mandatory dependency loop has no "
                 "escape",
                 "mark a data dependency optional or add an alternative "
                 "subtype");
    }
  }
}

void lint_ambiguous_subtypes(const TaskSchema& schema, LintReport& report) {
  // Two concrete descendants of one abstract type whose resolved rules have
  // the same signature: the same bound inputs construct either, so neither
  // `specialize` nor automation can pick from the data.  Source subtypes
  // (empty rules) are exempt — they are bound, never constructed.
  std::set<std::pair<std::string, std::string>> reported;
  for (const EntityTypeId base : schema.all()) {
    if (!schema.is_abstract(base)) continue;
    const std::vector<EntityTypeId> concrete =
        schema.concrete_descendants(base);
    for (std::size_t i = 0; i < concrete.size(); ++i) {
      const ConstructionRule a = schema.construction(concrete[i]);
      if (a.empty()) continue;
      const std::string sig_a = rule_signature(schema, a);
      for (std::size_t j = i + 1; j < concrete.size(); ++j) {
        const ConstructionRule b = schema.construction(concrete[j]);
        if (b.empty() || rule_signature(schema, b) != sig_a) continue;
        std::string first = schema.entity_name(concrete[i]);
        std::string second = schema.entity_name(concrete[j]);
        if (second < first) std::swap(first, second);
        if (!reported.emplace(first, second).second) continue;
        report.add("HL004", Severity::kWarning,
                   "entities '" + first + "' and '" + second + "'",
                   "ambiguous subtype construction under '" +
                       schema.entity_name(base) +
                       "': both rules are satisfiable by the same bound "
                       "inputs",
                   "give one subtype a distinguishing tool or input");
      }
    }
  }
}

void lint_dead_declarations(const TaskSchema& schema, LintReport& report) {
  for (const EntityTypeId id : schema.all()) {
    const EntityType& e = schema.entity(id);
    if (e.kind == EntityKind::kData) {
      // HL005: a data entity nothing constructs, consumes or subtypes is
      // unreachable from every flow the schema admits.
      if (!e.abstract && e.deps.empty() && !e.parent.valid() &&
          schema.subtypes(id).empty() && schema.consumers_of(id).empty()) {
        report.add("HL005", Severity::kWarning, "entity '" + e.name + "'",
                   "is disconnected: no dependencies, no consumers, no "
                   "subtype relations",
                   "connect it with fd/dd arcs or remove it");
      }
    } else if (!tool_is_used(schema, id)) {
      // HL006: a tool no construction rule can ever run.
      report.add("HL006", Severity::kWarning, "tool '" + e.name + "'",
                 "is never the functional-dependency target of any "
                 "construction rule",
                 "reference it with 'fd' or remove it");
    }
  }
}

void lint_redundant_shadowing(const TaskSchema& schema, LintReport& report) {
  for (const EntityTypeId id : schema.all()) {
    const EntityType& e = schema.entity(id);
    if (e.deps.empty() || !e.parent.valid()) continue;
    const ConstructionRule inherited = schema.construction(e.parent);
    if (inherited.empty()) continue;
    if (rule_signature(schema, own_rule(schema, id)) ==
        rule_signature(schema, inherited)) {
      report.add("HL007", Severity::kWarning, "entity '" + e.name + "'",
                 "shadows the rule inherited from '" +
                     schema.entity_name(inherited.owner) +
                     "' with an identical declaration",
                 "drop the redundant arcs (the rule is inherited) or make "
                 "the subtype's construction differ");
    }
  }
}

}  // namespace

LintReport lint_schema(const TaskSchema& schema) {
  LintReport report("schema '" + schema.name() + "'");
  lint_structure(schema, report);
  lint_ambiguous_subtypes(schema, report);
  lint_dead_declarations(schema, report);
  lint_redundant_shadowing(schema, report);
  return report;
}

}  // namespace herc::analyze
