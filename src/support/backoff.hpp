// Capped exponential backoff with seeded jitter.
//
// Shared by every reconnecting component — `server::ResilientClient`,
// the follower-side `replica::ReplicaApplier` — so the whole stack
// retries with one policy: delays grow base, 2*base, 4*base ... up to a
// cap, each smeared by +-25% jitter drawn from a seeded xorshift so a
// fleet of retriers recovering from the same outage never thunders back
// in lockstep, yet a given seed replays the exact same schedule (the
// swarm harness depends on that determinism).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace herc::support {

class Backoff {
 public:
  /// `base_ms` is the first delay, `cap_ms` the ceiling; `seed` drives
  /// the jitter stream (any value, scrambled internally).
  Backoff(int base_ms, int cap_ms, std::uint64_t seed)
      : base_ms_(std::max(base_ms, 1)),
        cap_ms_(std::max(cap_ms, std::max(base_ms, 1))),
        state_((seed ^ 0x9e3779b97f4a7c15ULL) | 1) {}

  /// The delay before the next attempt: min(cap, base * 2^attempt),
  /// jittered into [3/4, 5/4] of that. Advances the attempt counter.
  [[nodiscard]] int next_delay_ms() {
    const int shift = std::min(attempt_, 20);
    ++attempt_;
    std::uint64_t ceiling = static_cast<std::uint64_t>(base_ms_) << shift;
    ceiling = std::min(ceiling, static_cast<std::uint64_t>(cap_ms_));
    // xorshift64*: cheap, seeded, good enough to decorrelate retriers.
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const std::uint64_t r = state_ * 0x2545f4914f6cdd1dULL;
    const std::uint64_t span = ceiling / 2 + 1;  // jitter window width
    const std::uint64_t delay = ceiling - ceiling / 4 + r % span;
    return static_cast<int>(std::max<std::uint64_t>(delay, 1));
  }

  /// Blocks for the next delay in small slices, bailing early when
  /// `*abort` turns true (keeps stop() responsive mid-backoff).
  void sleep(const std::atomic<bool>* abort = nullptr) {
    int remaining = next_delay_ms();
    while (remaining > 0) {
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) return;
      const int slice = std::min(remaining, 20);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      remaining -= slice;
    }
  }

  /// Back to the base delay (call after a successful attempt).
  void reset() { attempt_ = 0; }

  [[nodiscard]] int attempts() const { return attempt_; }

 private:
  int base_ms_;
  int cap_ms_;
  int attempt_ = 0;
  std::uint64_t state_;
};

}  // namespace herc::support
