// Graphviz DOT emission.
//
// Task schemas, task graphs, flow traces and version trees all render to
// DOT so the figures of the paper can be regenerated visually from the
// examples.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace herc::support {

/// Incrementally builds a `digraph`.
class DotBuilder {
 public:
  explicit DotBuilder(std::string_view graph_name);

  /// Adds `rankdir`, `label`, etc. at graph scope.
  void graph_attr(std::string_view key, std::string_view value);

  /// Adds a node; `attrs` are preformatted `key="value"` pairs.
  void node(std::string_view id, std::string_view label,
            const std::vector<std::string>& attrs = {});

  /// Adds a directed edge `from -> to`.
  void edge(std::string_view from, std::string_view to,
            std::string_view label = "",
            const std::vector<std::string>& attrs = {});

  /// The complete DOT document.
  [[nodiscard]] std::string str() const;

  /// Escapes a string for use inside a DOT double-quoted literal.
  [[nodiscard]] static std::string quote(std::string_view s);

 private:
  std::string name_;
  std::vector<std::string> graph_attrs_;
  std::vector<std::string> body_;
};

}  // namespace herc::support
