#include "support/record.hpp"

#include <charconv>

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::support {

RecordWriter::RecordWriter(std::string_view kind) : line_(kind) {}

RecordWriter& RecordWriter::field(std::string_view value) {
  line_ += '|';
  line_ += escape_field(value);
  return *this;
}

RecordWriter& RecordWriter::field(std::int64_t value) {
  line_ += '|';
  line_ += std::to_string(value);
  return *this;
}

RecordWriter& RecordWriter::field(std::uint32_t value) {
  line_ += '|';
  line_ += std::to_string(value);
  return *this;
}

RecordWriter& RecordWriter::field(double value) {
  line_ += '|';
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), value,
                    std::chars_format::general, 17);
  line_.append(buf, ptr);
  (void)ec;
  return *this;
}

namespace {

// Splits on unescaped `|`.
std::vector<std::string> split_record(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      cur += line[i];
      cur += line[i + 1];
      ++i;
    } else if (line[i] == '|') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += line[i];
    }
  }
  out.push_back(std::move(cur));
  return out;
}

}  // namespace

RecordReader::RecordReader(std::string_view line) {
  if (trim(line).empty()) throw ParseError("empty record line");
  auto parts = split_record(line);
  kind_ = std::move(parts.front());
  for (std::size_t i = 1; i < parts.size(); ++i) {
    fields_.push_back(unescape_field(parts[i]));
  }
}

std::string RecordReader::next_string() {
  if (exhausted()) {
    throw ParseError("record '" + kind_ + "': ran out of fields");
  }
  return fields_[cursor_++];
}

std::int64_t RecordReader::next_int64() {
  const std::string s = next_string();
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw ParseError("record '" + kind_ + "': bad integer field '" + s + "'");
  }
  return v;
}

std::uint32_t RecordReader::next_uint32() {
  const std::int64_t v = next_int64();
  if (v < 0 || v > 0xffffffffLL) {
    throw ParseError("record '" + kind_ + "': field out of uint32 range");
  }
  return static_cast<std::uint32_t>(v);
}

double RecordReader::next_double() {
  const std::string s = next_string();
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw ParseError("record '" + kind_ + "': bad double field '" + s + "'");
  }
  if (pos != s.size()) {
    throw ParseError("record '" + kind_ + "': bad double field '" + s + "'");
  }
  return v;
}

}  // namespace herc::support
