// Stable content hashing for the design-data store.
//
// Instances in the history database share physical data when their content
// hashes collide (the paper's RCS-file analogy: many meta-data instances,
// one stored artifact).  FNV-1a over bytes is stable across runs and
// platforms, which `std::hash` is not guaranteed to be.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace herc::support {

/// 64-bit FNV-1a.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

/// Continues an FNV-1a hash (for hashing several pieces in sequence).
[[nodiscard]] std::uint64_t fnv1a_append(std::uint64_t state,
                                         std::string_view bytes);

/// Renders a hash as 16 lowercase hex digits (the blob key format).
[[nodiscard]] std::string hash_hex(std::uint64_t h);

}  // namespace herc::support
