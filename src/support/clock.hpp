// Time source abstraction.
//
// The design-history database stamps every instance with a creation time.
// Tests and the deterministic examples need reproducible stamps, so the
// framework never reads the system clock directly; it asks a `Clock`.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace herc::support {

/// A point in time, microseconds since the Unix epoch.
///
/// Kept as a tiny value type (rather than `std::chrono::time_point`) because
/// it is persisted in history records and compared across process runs.
class Timestamp {
 public:
  constexpr Timestamp() = default;
  constexpr explicit Timestamp(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }

  friend constexpr bool operator==(Timestamp a, Timestamp b) {
    return a.micros_ == b.micros_;
  }
  friend constexpr bool operator!=(Timestamp a, Timestamp b) {
    return a.micros_ != b.micros_;
  }
  friend constexpr bool operator<(Timestamp a, Timestamp b) {
    return a.micros_ < b.micros_;
  }
  friend constexpr bool operator<=(Timestamp a, Timestamp b) {
    return a.micros_ <= b.micros_;
  }
  friend constexpr bool operator>(Timestamp a, Timestamp b) {
    return a.micros_ > b.micros_;
  }
  friend constexpr bool operator>=(Timestamp a, Timestamp b) {
    return a.micros_ >= b.micros_;
  }

  /// Renders as `YYYY-MM-DD HH:MM:SS.uuuuuu` (UTC).
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t micros_ = 0;
};

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual Timestamp now() = 0;
};

/// Wall-clock time source.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] Timestamp now() override {
    const auto tp = std::chrono::system_clock::now().time_since_epoch();
    return Timestamp(
        std::chrono::duration_cast<std::chrono::microseconds>(tp).count());
  }
};

/// Deterministic time source: every call to `now()` advances by a fixed
/// tick, so consecutive instances get strictly increasing stamps.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::int64_t start_micros = 0,
                       std::int64_t tick_micros = 1)
      : current_(start_micros), tick_(tick_micros) {}

  [[nodiscard]] Timestamp now() override {
    const Timestamp t(current_);
    current_ += tick_;
    return t;
  }

  /// Jump forward (e.g. to simulate "the next day" in a session script).
  void advance(std::int64_t micros) { current_ += micros; }

  void set(std::int64_t micros) { current_ = micros; }

 private:
  std::int64_t current_;
  std::int64_t tick_;
};

}  // namespace herc::support
