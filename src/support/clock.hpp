// Time source abstraction.
//
// The design-history database stamps every instance with a creation time.
// Tests and the deterministic examples need reproducible stamps, so the
// framework never reads the system clock directly; it asks a `Clock`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

namespace herc::support {

/// A point in time, microseconds since the Unix epoch.
///
/// Kept as a tiny value type (rather than `std::chrono::time_point`) because
/// it is persisted in history records and compared across process runs.
class Timestamp {
 public:
  constexpr Timestamp() = default;
  constexpr explicit Timestamp(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }

  friend constexpr bool operator==(Timestamp a, Timestamp b) {
    return a.micros_ == b.micros_;
  }
  friend constexpr bool operator!=(Timestamp a, Timestamp b) {
    return a.micros_ != b.micros_;
  }
  friend constexpr bool operator<(Timestamp a, Timestamp b) {
    return a.micros_ < b.micros_;
  }
  friend constexpr bool operator<=(Timestamp a, Timestamp b) {
    return a.micros_ <= b.micros_;
  }
  friend constexpr bool operator>(Timestamp a, Timestamp b) {
    return a.micros_ > b.micros_;
  }
  friend constexpr bool operator>=(Timestamp a, Timestamp b) {
    return a.micros_ >= b.micros_;
  }

  /// Renders as `YYYY-MM-DD HH:MM:SS.uuuuuu` (UTC).
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t micros_ = 0;
};

/// Abstract time source.  Also the framework's *sleep* abstraction: retry
/// backoff in the execution engine waits through the clock, so tests driven
/// by a `ManualClock` observe exponential backoff without real delays.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual Timestamp now() = 0;
  /// Blocks (or virtually advances) for `micros` microseconds.
  virtual void sleep_for(std::int64_t micros) = 0;
};

/// Wall-clock time source.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] Timestamp now() override {
    const auto tp = std::chrono::system_clock::now().time_since_epoch();
    return Timestamp(
        std::chrono::duration_cast<std::chrono::microseconds>(tp).count());
  }

  void sleep_for(std::int64_t micros) override {
    if (micros > 0) std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

/// Deterministic time source: every call to `now()` advances by a fixed
/// tick, so consecutive instances get strictly increasing stamps.  Safe to
/// share between the worker threads of a parallel flow execution.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::int64_t start_micros = 0,
                       std::int64_t tick_micros = 1)
      : current_(start_micros), tick_(tick_micros) {}

  [[nodiscard]] Timestamp now() override {
    return Timestamp(current_.fetch_add(tick_, std::memory_order_relaxed));
  }

  /// A virtual sleep: jumps the clock forward without blocking.
  void sleep_for(std::int64_t micros) override {
    if (micros > 0) current_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Jump forward (e.g. to simulate "the next day" in a session script).
  void advance(std::int64_t micros) {
    current_.fetch_add(micros, std::memory_order_relaxed);
  }

  void set(std::int64_t micros) {
    current_.store(micros, std::memory_order_relaxed);
  }

  /// The next stamp `now()` would hand out (for backoff assertions).
  [[nodiscard]] std::int64_t current_micros() const {
    return current_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> current_;
  std::int64_t tick_;
};

}  // namespace herc::support
