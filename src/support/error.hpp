// Exception hierarchy for the framework.
//
// Each subsystem throws a subsystem-specific subclass of `HercError`;
// callers that care only that *something* in the framework failed can catch
// the base class.
#pragma once

#include <stdexcept>
#include <string>

namespace herc::support {

/// Root of all framework errors.
class HercError : public std::runtime_error {
 public:
  explicit HercError(const std::string& what) : std::runtime_error(what) {}
};

/// Violation of task-schema construction rules (bad subtype, duplicate
/// functional dependency, unbreakable cycle, ...).
class SchemaError : public HercError {
 public:
  using HercError::HercError;
};

/// Illegal operation on a task graph / dynamically defined flow.
class FlowError : public HercError {
 public:
  using HercError::HercError;
};

/// Failure inside the execution engine or a tool encapsulation.
class ExecError : public HercError {
 public:
  using HercError::HercError;
};

/// Design-history database failure (unknown instance, malformed record, ...).
class HistoryError : public HercError {
 public:
  using HercError::HercError;
};

/// Malformed textual input (schema DSL, flow files, session files).
class ParseError : public HercError {
 public:
  using HercError::HercError;
};

/// Network-layer failure (socket setup, framed wire protocol, a peer that
/// vanished mid-frame).
class NetError : public HercError {
 public:
  using HercError::HercError;
};

}  // namespace herc::support
