#include "support/hash.hpp"

#include <cstdio>

namespace herc::support {

namespace {
constexpr std::uint64_t kOffset = 1469598103934665603ULL;
constexpr std::uint64_t kPrime = 1099511628211ULL;
}  // namespace

std::uint64_t fnv1a_append(std::uint64_t state, std::string_view bytes) {
  for (unsigned char c : bytes) {
    state ^= c;
    state *= kPrime;
  }
  return state;
}

std::uint64_t fnv1a(std::string_view bytes) {
  return fnv1a_append(kOffset, bytes);
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace herc::support
