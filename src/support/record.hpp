// Line-oriented record serialization.
//
// History databases and flow catalogs persist to a plain-text format, one
// record per line:
//
//   kind|field1|field2|...
//
// Fields are escaped with `escape_field`, so values may contain the
// separator or newlines.  The format is deliberately trivial: the paper's
// point is that the *schema* of the history database is the task schema
// itself, not that the storage layer is sophisticated.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace herc::support {

/// Builds one record line.
class RecordWriter {
 public:
  explicit RecordWriter(std::string_view kind);

  RecordWriter& field(std::string_view value);
  RecordWriter& field(std::int64_t value);
  RecordWriter& field(std::uint32_t value);
  RecordWriter& field(double value);

  /// The finished line (no trailing newline).
  [[nodiscard]] std::string str() const { return line_; }

 private:
  std::string line_;
};

/// Parses one record line; fields are pulled in order.
class RecordReader {
 public:
  /// Throws `ParseError` on an empty line.
  explicit RecordReader(std::string_view line);

  [[nodiscard]] const std::string& kind() const { return kind_; }

  /// Number of fields following the kind.
  [[nodiscard]] std::size_t size() const { return fields_.size(); }

  /// Throws `ParseError` when no fields remain.
  std::string next_string();
  std::int64_t next_int64();
  std::uint32_t next_uint32();
  double next_double();

  [[nodiscard]] bool exhausted() const { return cursor_ >= fields_.size(); }

 private:
  std::string kind_;
  std::vector<std::string> fields_;
  std::size_t cursor_ = 0;
};

}  // namespace herc::support
