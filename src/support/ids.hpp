// Strongly typed integer identifiers.
//
// Every subsystem in the framework names its objects with small dense
// integers (entity types, flow nodes, instances, ...).  Using a distinct C++
// type per id family makes it impossible to pass, say, a flow-node id where
// a schema entity-type id is expected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace herc::support {

/// A strongly typed wrapper around a dense 32-bit index.
///
/// `Tag` is any (possibly incomplete) type used purely to distinguish id
/// families.  A default-constructed id is invalid.
template <class Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(underlying_type value) : value_(value) {}

  /// True when this id refers to an object (i.e. is not default-constructed).
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  /// The raw index.  Only meaningful when `valid()`.
  [[nodiscard]] constexpr underlying_type value() const { return value_; }

  /// Convenience for indexing into dense vectors.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "#invalid";
    return os << '#' << id.value_;
  }

 private:
  underlying_type value_ = kInvalid;
};

/// Hash functor usable as `std::unordered_map<Id<T>, V, IdHash>`.
struct IdHash {
  template <class Tag>
  std::size_t operator()(Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

}  // namespace herc::support
