// The shared severity scale of the correctness tooling.
//
// Both offline checkers — `fsck` (storage integrity) and `lint` (static
// analysis of schemas, flows and run plans) — classify what they find on
// one three-level scale whose numeric values double as the process exit
// code:
//
//   kClean   (exit 0)  nothing to report
//   kWarning (exit 1)  survivable / advisory findings
//   kError   (exit 2)  defects that break a run or lose data
//
// `kCorruption` is fsck's historical name for the error level; it is the
// same enumerator value so the two tools stay exit-code compatible.
#pragma once

namespace herc::support {

enum class Severity {
  kClean = 0,
  kWarning = 1,
  kError = 2,
  kCorruption = kError,  ///< fsck's name for the same level
};

/// The process exit code convention shared by `fsck` and `lint`.
[[nodiscard]] constexpr int exit_code(Severity s) {
  return static_cast<int>(s);
}

/// Inverse of `exit_code`, for callers that receive the convention over a
/// process boundary (a wire-protocol status byte, a child's exit status).
/// Codes above the scale clamp to `kError`.
[[nodiscard]] constexpr Severity severity_from_exit(int code) {
  return code <= 0   ? Severity::kClean
         : code == 1 ? Severity::kWarning
                     : Severity::kError;
}

/// The worse (more severe) of two levels.
[[nodiscard]] constexpr Severity worse(Severity a, Severity b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// Returns "clean", "warning" or "error".
[[nodiscard]] constexpr const char* to_string(Severity s) {
  switch (s) {
    case Severity::kClean:
      return "clean";
    case Severity::kWarning:
      return "warning";
    default:
      return "error";
  }
}

}  // namespace herc::support
