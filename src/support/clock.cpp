#include "support/clock.hpp"

#include <cstdio>
#include <ctime>

namespace herc::support {

std::string Timestamp::to_string() const {
  const std::int64_t secs = micros_ / 1000000;
  const std::int64_t frac = micros_ % 1000000;
  std::time_t t = static_cast<std::time_t>(secs);
  std::tm tm_buf{};
  gmtime_r(&t, &tm_buf);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%06lld",
                tm_buf.tm_year + 1900, tm_buf.tm_mon + 1, tm_buf.tm_mday,
                tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                static_cast<long long>(frac));
  return buf;
}

}  // namespace herc::support
