#include "support/text.hpp"

#include <cctype>

namespace herc::support {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
char to_lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (to_lower(haystack[i + j]) != to_lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string escape_field(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '|': out += "\\p"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_field(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'p': out += '|'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

bool is_identifier(std::string_view name) {
  if (name.empty()) return false;
  const char c0 = name[0];
  const bool head_ok = (c0 >= 'A' && c0 <= 'Z') || (c0 >= 'a' && c0 <= 'z') ||
                       c0 == '_';
  if (!head_ok) return false;
  for (char c : name.substr(1)) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace herc::support
