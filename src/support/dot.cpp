#include "support/dot.hpp"

namespace herc::support {

DotBuilder::DotBuilder(std::string_view graph_name) : name_(graph_name) {}

void DotBuilder::graph_attr(std::string_view key, std::string_view value) {
  std::string line(key);
  line += "=";
  line += quote(value);
  line += ";";
  graph_attrs_.push_back(std::move(line));
}

void DotBuilder::node(std::string_view id, std::string_view label,
                      const std::vector<std::string>& attrs) {
  std::string line = quote(id);
  line += " [label=" + quote(label);
  for (const auto& a : attrs) line += ", " + a;
  line += "];";
  body_.push_back(std::move(line));
}

void DotBuilder::edge(std::string_view from, std::string_view to,
                      std::string_view label,
                      const std::vector<std::string>& attrs) {
  std::string line = quote(from);
  line += " -> " + quote(to);
  if (!label.empty() || !attrs.empty()) {
    line += " [";
    bool first = true;
    if (!label.empty()) {
      line += "label=" + quote(label);
      first = false;
    }
    for (const auto& a : attrs) {
      if (!first) line += ", ";
      line += a;
      first = false;
    }
    line += "]";
  }
  line += ";";
  body_.push_back(std::move(line));
}

std::string DotBuilder::str() const {
  std::string out = "digraph " + quote(name_) + " {\n";
  for (const auto& a : graph_attrs_) out += "  " + a + "\n";
  for (const auto& b : body_) out += "  " + b + "\n";
  out += "}\n";
  return out;
}

std::string DotBuilder::quote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace herc::support
