// Small string utilities shared across the framework.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace herc::support {

/// Strips leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of whitespace, dropping empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// Joins with `sep` between elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Case-insensitive substring test (used by browser keyword filters).
[[nodiscard]] bool icontains(std::string_view haystack,
                             std::string_view needle);

/// Escapes `\`, newline, and the field separator `|` so a value can be
/// embedded in one field of a line-oriented record.
[[nodiscard]] std::string escape_field(std::string_view s);

/// Inverse of `escape_field`.
[[nodiscard]] std::string unescape_field(std::string_view s);

/// True when `name` is a legal identifier for schema entities and
/// encapsulations: `[A-Za-z_][A-Za-z0-9_.-]*`.
[[nodiscard]] bool is_identifier(std::string_view name);

}  // namespace herc::support
