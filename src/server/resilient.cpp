#include "server/resilient.hpp"

#include <atomic>
#include <chrono>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "cli/interpreter.hpp"
#include "support/error.hpp"

namespace herc::server {

using support::NetError;

namespace {

std::atomic<std::uint64_t> g_client_counter{0};

std::string make_client_id() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto ticks = static_cast<std::uint64_t>(now.count());
  std::ostringstream id;
  id << "r" << ::getpid() << "-" << (++g_client_counter) << "-" << std::hex
     << (ticks & 0xffffffULL);
  return id.str();
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash | 1;  // Backoff wants a nonzero seed
}

}  // namespace

ResilientClient::ResilientClient(Endpoint leader, ResilientOptions options)
    : leader_(std::move(leader)),
      options_(options),
      client_id_(options.client_id.empty() ? make_client_id()
                                           : options.client_id),
      backoff_(options.backoff_base_ms, options.backoff_cap_ms,
               options.seed != 0 ? options.seed : fnv1a(client_id_)) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

void ResilientClient::set_endpoints(Endpoint leader,
                                    std::vector<Endpoint> replicas) {
  leader_ = std::move(leader);
  replicas_ = std::move(replicas);
}

void ResilientClient::note_user(std::string_view command) {
  std::istringstream words{std::string(command)};
  std::string a, b, c;
  if (words >> a >> b >> c && a == "session" && b == "user") user_ = c;
}

void ResilientClient::ensure_connected() {
  if (client_.connected()) return;
  Client fresh = Client::connect(leader_, options_.connect_timeout_ms);
  fresh.set_read_timeout(options_.read_timeout_ms);
  const bool first = last_boot_ == 0;
  const bool restarted = !first && fresh.server_boot() != last_boot_;
  if (!first) {
    ++generation_;
    ++reconnects_;
  }
  last_boot_ = fresh.server_boot();
  client_ = std::move(fresh);
  transmitted_ = 0;
  if (restarted) {
    std::size_t lost = 0;
    for (const Pending& p : pending_) {
      if (p.ever_sent) ++lost;
    }
    if (lost > 0) {
      // The new incarnation has no dedup window for our id: replaying
      // those tokens could execute them a second time, and NOT replaying
      // them leaves them maybe-applied.  Surface the honest answer.
      // (Never-transmitted commands are dropped with them: replies are
      // strictly ordered, so they cannot be answered without the lost
      // ones ahead of them.)
      pending_.clear();
      throw NetError("server restarted: the outcome of " +
                     std::to_string(lost) +
                     " unacknowledged command(s) is unknown");
    }
  }
  if (!user_.empty()) {
    // Connection-scoped identity: re-establish before any replayed or new
    // command so mutations keep the right creating user.
    const CallResult applied = client_.call("session user " + user_);
    (void)applied;
  }
  for (Pending& p : pending_) {
    if (p.ever_sent) ++replays_;
    p.ever_sent = true;  // before the write: a torn write may still deliver
    client_.send_token(client_id_, p.seq, p.command, p.body);
  }
  transmitted_ = pending_.size();
}

void ResilientClient::send(std::string_view command, std::string_view body) {
  note_user(command);
  Pending p;
  p.seq = ++seq_;
  p.command.assign(command);
  p.body.assign(body);
  p.read = cli::command_access(command) == cli::CommandAccess::kRead;
  pending_.push_back(std::move(p));
  if (!client_.connected()) return;  // receive() will connect and replay
  try {
    pending_.back().ever_sent = true;  // before the write, see above
    client_.send_token(client_id_, pending_.back().seq, command, body);
    ++transmitted_;
  } catch (const NetError&) {
    client_.close();
    transmitted_ = 0;  // receive() reconnects and replays the whole queue
  }
}

CallResult ResilientClient::receive() {
  if (pending_.empty()) throw NetError("receive: nothing pending");
  std::string last_error = "not connected";
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (abort_ != nullptr && abort_->load()) break;
    try {
      ensure_connected();
      for (std::size_t i = transmitted_; i < pending_.size(); ++i) {
        pending_[i].ever_sent = true;  // before the write, see above
        client_.send_token(client_id_, pending_[i].seq, pending_[i].command,
                           pending_[i].body);
      }
      transmitted_ = pending_.size();
      CallResult result = client_.receive();
      pending_.pop_front();
      if (transmitted_ > 0) --transmitted_;
      backoff_.reset();
      return result;
    } catch (const NetError& error) {
      if (pending_.empty()) throw;  // outcome-unknown: nothing to retry
      last_error = error.what();
      client_.close();
      transmitted_ = 0;
      if (pending_.size() == 1 && pending_.front().read &&
          !replicas_.empty()) {
        CallResult from_replica;
        if (read_from_replica(pending_.front().command,
                              pending_.front().body, &last_error,
                              &from_replica)) {
          pending_.clear();
          return from_replica;
        }
      }
      if (attempt + 1 < options_.max_attempts) backoff_.sleep(abort_);
    }
  }
  throw NetError("gave up after " + std::to_string(options_.max_attempts) +
                 " attempt(s): " + last_error);
}

CallResult ResilientClient::call(std::string_view command,
                                 std::string_view body) {
  if (!pending_.empty()) {
    throw NetError("call: " + std::to_string(pending_.size()) +
                   " pipelined replies outstanding; receive() them first");
  }
  send(command, body);
  return receive();
}

bool ResilientClient::read_from_replica(std::string_view command,
                                        std::string_view body,
                                        std::string* error,
                                        CallResult* out) {
  for (const Endpoint& endpoint : replicas_) {
    if (abort_ != nullptr && abort_->load()) break;
    try {
      Client replica = Client::connect(endpoint, options_.connect_timeout_ms);
      replica.set_read_timeout(options_.read_timeout_ms);
      *out = replica.call(command, body);
      ++failovers_;
      return true;
    } catch (const NetError& replica_error) {
      *error += "; replica " + endpoint.describe() + ": " +
                replica_error.what();
    }
  }
  return false;
}

}  // namespace herc::server
