// `herc serve`: one daemon owning a durable DesignSession, many clients.
//
// The paper's framework is single-designer; design *management* is a team
// activity.  The server turns one session — typically opened over a
// durable store — into a shared resource:
//
//   - Reader-writer access: commands classified as reads
//     (`cli::command_access`) execute concurrently under a shared lock
//     (queries, browsing, flow building in the connection's own
//     workspace); mutating commands serialize under an exclusive lock and
//     flow through the session's MutationListener into the write-ahead
//     journal exactly as they would in a local shell.
//   - Per-connection pipelining: each connection has a reader thread
//     feeding a bounded command queue and a worker thread answering in
//     order.  A full queue blocks the reader — TCP backpressure is the
//     flow control.
//   - Per-connection identity: `session user` is intercepted and applied
//     under the exclusive lock before each write, so concurrent clients'
//     products carry the right creating user.
//   - Graceful shutdown: `stop()` raises the session's cooperative cancel
//     flag (an in-flight `run` stops launching tasks and its run record
//     stays open), refuses queued commands, seals every open run and
//     syncs the journal — the store on disk is fsck-clean and every
//     interrupted run resumable.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/session.hpp"
#include "server/latency.hpp"
#include "server/protocol.hpp"
#include "server/socket.hpp"

namespace herc::server {

struct ServeOptions {
  /// Commands a connection may have in flight (queued + executing) before
  /// its reader stops draining the socket.
  std::size_t queue_depth = 32;
  /// Serve a replica: write-classified commands are refused with a
  /// structured error, the hello banner says so, and shutdown does not
  /// seal open runs (they are the leader's live runs, not crashes).
  bool read_only = false;
  /// Reap a connection that sends nothing for this long while it has no
  /// command queued or executing (a half-open peer must not pin its
  /// reader+worker threads forever).  0 disables the reaper.
  int idle_timeout_ms = 600'000;
  /// A peer that starts a frame must finish it within this (half-open
  /// mid-frame, or a hostile trickler).  0 disables the deadline.
  int frame_timeout_ms = 30'000;
  /// Replies cached per client id for idempotent replay (the dedup
  /// window).  A replayed token older than the window gets a structured
  /// "outside the dedup window" error instead of a cached reply.
  std::size_t dedup_window = 128;
  /// Client ids tracked at once; the least recently active is evicted.
  std::size_t dedup_clients = 1024;
};

/// Leader-side replication service plugged into the server (implemented by
/// `replica::JournalShipper` in src/replica — the server knows only this
/// interface, so herc_server does not depend on herc_replica).
///
/// Lifecycle per follower connection: the worker thread calls `subscribe`
/// under the *exclusive* session lock (no mutation can interleave, so the
/// bootstrap is position-atomic), then becomes the connection's pump,
/// draining `next_frame` to the socket until the stream ends.  The reader
/// thread feeds `ack` as progress reports arrive.
class ReplicationHub {
 public:
  virtual ~ReplicationHub() = default;
  /// Registers follower `conn_id` at the position it announced (a
  /// kSubscribe payload).  Queues the bootstrap frames (snapshot or
  /// journal backlog).  Returns false — with `*error` explaining — when
  /// the position is unusable (e.g. a fenced stale leader re-attaching).
  [[nodiscard]] virtual bool subscribe(std::uint64_t conn_id,
                                       const std::string& peer,
                                       std::string_view position,
                                       std::string* error) = 0;
  /// Blocks until a frame is queued for `conn_id`; false = stream over
  /// (unsubscribed, overflowed, or the hub is closing).
  [[nodiscard]] virtual bool next_frame(std::uint64_t conn_id,
                                        Frame& frame) = 0;
  /// Progress report from the follower (a kAck payload).
  virtual void ack(std::uint64_t conn_id, std::string_view payload) = 0;
  /// Drops the follower (its connection is closing).
  virtual void unsubscribe(std::uint64_t conn_id) = 0;
  /// One line per follower: acked position and lag (for `replicas` and
  /// `stats`).  When `json` the lines form a JSON array instead.
  [[nodiscard]] virtual std::string render_followers(bool json) const = 0;
  /// Ends every follower stream (server shutdown); wakes all pumps.
  virtual void close_all() = 0;
};

/// Journal position shown in `stats` (and the source of the lag metric).
struct JournalPosition {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  std::uint64_t bytes = 0;
};

/// Aggregate counters, readable while the server runs (`stats` command).
struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> commands_executed{0};
  std::atomic<std::uint64_t> read_commands{0};
  std::atomic<std::uint64_t> write_commands{0};
  std::atomic<std::uint64_t> command_errors{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  /// Tokened mutations recognized as duplicates (replays and
  /// outside-the-window retries both count).
  std::atomic<std::uint64_t> dedup_hits{0};
  /// Duplicates answered with the cached original reply (the exactly-once
  /// path; <= dedup_hits).
  std::atomic<std::uint64_t> replays_served{0};
  /// Connections closed by the idle/mid-frame deadline reaper.
  std::atomic<std::uint64_t> connections_reaped{0};
  /// Per-command wall time (queue wait excluded), microseconds.  The
  /// `stats` command reports p50/p95/p99 from here; the scale benchmark
  /// reads it for BENCH_scale.json.
  LatencyHistogram command_latency;
};

class Server {
 public:
  /// Serves `session`, which must outlive the server.  The session is
  /// typically already attached to a durable store; the server does not
  /// open or close storage itself.
  explicit Server(core::DesignSession& session, ServeOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds a listener before `start()`.  Returns the bound endpoint (port
  /// 0 resolved to the kernel's pick).  Throws `support::NetError`.
  Endpoint add_listener(const Endpoint& endpoint);

  /// Starts the accept loop.  At least one listener must be bound.
  void start();

  /// Graceful shutdown: stop accepting, cancel in-flight runs
  /// cooperatively, answer still-queued commands with an error, join every
  /// connection, then seal open runs and sync the journal.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] core::DesignSession& session() { return session_; }
  /// This incarnation's id (sent in the hello `boot=` field).
  [[nodiscard]] std::uint64_t boot_id() const { return boot_id_; }

  /// Attaches the leader-side replication service (before `start()`;
  /// nullptr detaches).  Without one, kSubscribe frames are refused.
  void set_replication_hub(ReplicationHub* hub) { hub_ = hub; }

  /// Where `stats` reads the journal position.  A follower server sets
  /// this to its applier's position; a leader defaults to the session's
  /// open store (read under the shared session lock).
  void set_position_source(std::function<JournalPosition()> source) {
    position_source_ = std::move(source);
  }

  /// Runs `fn` under the exclusive session lock — the replica applier's
  /// write gate: replicated frames mutate the session while reader
  /// connections query it under the shared lock.
  void with_exclusive_session(const std::function<void()>& fn) {
    std::unique_lock lock(session_mutex_);
    fn();
  }

 private:
  struct Connection;
  struct ClientWindow;

  void accept_loop();
  void reader_loop(Connection& conn);
  void worker_loop(Connection& conn);
  /// Executes one command under the proper lock; returns the result frame
  /// payload and appends printed output to `output`.
  std::string execute_command(Connection& conn, const std::string& line,
                              std::string body, std::string& output,
                              bool& quit);
  /// The kTokenCommand path: dedup window consult/record around
  /// `execute_command` for mutating commands.
  std::string execute_tokened(Connection& conn, const std::string& payload,
                              std::string& output, bool& quit);
  /// Finds/creates the client's dedup window (dedup_mutex_ held), bumping
  /// its LRU tick; evicts the least recently active idle client at cap.
  ClientWindow& touch_window(const std::string& client_id);
  /// Handles a kSubscribe frame: registers with the hub and pumps the
  /// journal stream to the socket until it ends.  The connection closes
  /// after.
  void serve_subscription(Connection& conn, const Frame& frame);
  [[nodiscard]] std::string render_stats(const Connection& conn,
                                         bool json) const;
  [[nodiscard]] JournalPosition journal_position() const;
  void join_finished_connections();

  core::DesignSession& session_;
  ServeOptions options_;
  ServerStats stats_;
  ReplicationHub* hub_ = nullptr;
  std::function<JournalPosition()> position_source_;
  std::chrono::steady_clock::time_point started_{};

  /// Readers share, writers exclude; guards every session access.
  /// `mutable`: `stats` reads the journal position under the shared lock
  /// from a const rendering path.
  mutable std::shared_mutex session_mutex_;
  /// Raised by `stop()`; the session's executor polls it between task
  /// groups.
  std::atomic<bool> cancel_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  struct Listener {
    Socket sock;
    Endpoint endpoint;
  };
  std::vector<Listener> listeners_;
  /// Self-pipe: `stop()` writes a byte to wake the accept loop's poll.
  int wake_pipe_[2] = {-1, -1};
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_connection_id_ = 1;

  /// Unique per Server instance (process id + construction counter), so a
  /// reconnecting client can tell "same server, replay is safe" from "the
  /// server restarted and its dedup window is gone".
  std::uint64_t boot_id_ = 0;

  /// The idempotency dedup state, keyed by client id.  One mutex + cv for
  /// all clients: dedup traffic is rare (only duplicate or in-flight
  /// tokens ever wait here).
  std::mutex dedup_mutex_;
  std::condition_variable_any dedup_cv_;
  std::unordered_map<std::string, std::unique_ptr<ClientWindow>> dedup_;
  std::uint64_t dedup_clock_ = 0;  ///< LRU tick for client eviction
};

}  // namespace herc::server
