// `herc serve`: one daemon owning a durable DesignSession, many clients.
//
// The paper's framework is single-designer; design *management* is a team
// activity.  The server turns one session — typically opened over a
// durable store — into a shared resource:
//
//   - Reader-writer access: commands classified as reads
//     (`cli::command_access`) execute concurrently under a shared lock
//     (queries, browsing, flow building in the connection's own
//     workspace); mutating commands serialize under an exclusive lock and
//     flow through the session's MutationListener into the write-ahead
//     journal exactly as they would in a local shell.
//   - Per-connection pipelining: each connection has a reader thread
//     feeding a bounded command queue and a worker thread answering in
//     order.  A full queue blocks the reader — TCP backpressure is the
//     flow control.
//   - Per-connection identity: `session user` is intercepted and applied
//     under the exclusive lock before each write, so concurrent clients'
//     products carry the right creating user.
//   - Graceful shutdown: `stop()` raises the session's cooperative cancel
//     flag (an in-flight `run` stops launching tasks and its run record
//     stays open), refuses queued commands, seals every open run and
//     syncs the journal — the store on disk is fsck-clean and every
//     interrupted run resumable.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "server/latency.hpp"
#include "server/socket.hpp"

namespace herc::server {

struct ServeOptions {
  /// Commands a connection may have in flight (queued + executing) before
  /// its reader stops draining the socket.
  std::size_t queue_depth = 32;
};

/// Aggregate counters, readable while the server runs (`stats` command).
struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> commands_executed{0};
  std::atomic<std::uint64_t> read_commands{0};
  std::atomic<std::uint64_t> write_commands{0};
  std::atomic<std::uint64_t> command_errors{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  /// Per-command wall time (queue wait excluded), microseconds.  The
  /// `stats` command reports p50/p95/p99 from here; the scale benchmark
  /// reads it for BENCH_scale.json.
  LatencyHistogram command_latency;
};

class Server {
 public:
  /// Serves `session`, which must outlive the server.  The session is
  /// typically already attached to a durable store; the server does not
  /// open or close storage itself.
  explicit Server(core::DesignSession& session, ServeOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds a listener before `start()`.  Returns the bound endpoint (port
  /// 0 resolved to the kernel's pick).  Throws `support::NetError`.
  Endpoint add_listener(const Endpoint& endpoint);

  /// Starts the accept loop.  At least one listener must be bound.
  void start();

  /// Graceful shutdown: stop accepting, cancel in-flight runs
  /// cooperatively, answer still-queued commands with an error, join every
  /// connection, then seal open runs and sync the journal.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] core::DesignSession& session() { return session_; }

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(Connection& conn);
  void worker_loop(Connection& conn);
  /// Executes one command under the proper lock; returns the result frame
  /// payload and appends printed output to `output`.
  std::string execute_command(Connection& conn, const std::string& line,
                              std::string body, std::string& output,
                              bool& quit);
  [[nodiscard]] std::string render_stats(const Connection& conn) const;
  void join_finished_connections();

  core::DesignSession& session_;
  ServeOptions options_;
  ServerStats stats_;

  /// Readers share, writers exclude; guards every session access.
  std::shared_mutex session_mutex_;
  /// Raised by `stop()`; the session's executor polls it between task
  /// groups.
  std::atomic<bool> cancel_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  struct Listener {
    Socket sock;
    Endpoint endpoint;
  };
  std::vector<Listener> listeners_;
  /// Self-pipe: `stop()` writes a byte to wake the accept loop's poll.
  int wake_pipe_[2] = {-1, -1};
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_connection_id_ = 1;
};

}  // namespace herc::server
