// Thin POSIX socket layer: endpoint parsing, an RAII descriptor, and the
// three operations the server and client need (listen, connect, accept).
//
// Address syntax, shared by `herc serve` and `herc connect`:
//
//   host:port      TCP — "127.0.0.1:7117"; ":0" binds an ephemeral port
//                  on localhost (the bound endpoint reports the real one)
//   unix:/path     Unix domain socket at /path
//
// TCP listeners bind localhost by default: the protocol carries no
// authentication, so exposure beyond the machine is an explicit choice
// (pass an interface address) rather than a default.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace herc::server {

struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string path;  // kUnix

  /// Parses the address syntax above.  Throws `support::NetError` on a
  /// malformed spec.
  [[nodiscard]] static Endpoint parse(std::string_view spec);

  /// Renders back to the address syntax ("127.0.0.1:7117", "unix:/run/x").
  [[nodiscard]] std::string describe() const;
};

/// Move-only owner of a socket descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();
  /// SHUT_RD: the peer's pending data still drains, further reads see EOF.
  void shutdown_read();
  void shutdown_both();

 private:
  int fd_ = -1;
};

/// Binds and listens on `endpoint`.  For port 0 the kernel-assigned port
/// is written back into `endpoint`.  A Unix endpoint whose path exists is
/// probe-connected first: a live server there is refused (NetError), only
/// a genuinely stale socket file is removed; a non-socket file is never
/// touched.  Throws `support::NetError` on failure.
[[nodiscard]] Socket listen_on(Endpoint& endpoint);

/// Connects to `endpoint`.  Throws `support::NetError` on failure.
[[nodiscard]] Socket connect_to(const Endpoint& endpoint);

/// `connect_to` bounded by `timeout_ms` (non-blocking connect + poll;
/// 0 = block indefinitely).  Throws `support::NetError` on failure or
/// timeout.
[[nodiscard]] Socket connect_to(const Endpoint& endpoint, int timeout_ms);

/// Accepts one connection (blocking).  Returns an invalid socket when the
/// listener was closed or shut down.  `peer` receives a printable peer
/// address.
[[nodiscard]] Socket accept_from(const Socket& listener, std::string* peer);

}  // namespace herc::server
