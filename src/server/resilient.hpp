// `herc::server::ResilientClient`: exactly-once sessions over an
// unreliable network.
//
// `server::Client` is honest about failure — any socket error throws and
// the caller holds the pieces: was the mutation applied before the
// connection died?  This wrapper answers that question.  Every command is
// sent wearing an idempotency token (a per-instance client id plus a
// monotone sequence number); when the connection dies the client
// reconnects with capped, jittered exponential backoff and *re-sends the
// same tokens*.  The server's dedup window recognizes a replayed token of
// an applied mutation and serves the original reply instead of executing
// twice — so a retry is always safe, and an acked command was applied
// exactly once.
//
// The guarantee holds within one server incarnation.  The dedup window
// lives in server memory: if the server restarts (the hello `boot=` id
// changes) while tokened commands are unacked, their outcome is genuinely
// unknown — journal-durable if they committed, gone if they didn't — and
// the client says so with a structured error instead of guessing.
//
// Connection-scoped state is re-established on reconnect: the session
// user is replayed before any queued command.  Workspace state (flows
// built on the connection) is *not* — the workspace dies with the
// connection — so `generation()` counts reconnects and lets callers
// notice that plans they built may be gone.
//
// Reads can fail over: when the leader is unreachable and the command
// classifies as a read, the client tries the configured replica endpoints
// (untokened — replicas refuse writes, and re-running a read is free).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "server/client.hpp"
#include "server/socket.hpp"
#include "support/backoff.hpp"

namespace herc::server {

struct ResilientOptions {
  /// Bounds each TCP connect plus hello read.
  int connect_timeout_ms = 2'000;
  /// Bounds each reply read (0 = wait forever — only sane for `run`-heavy
  /// workloads with no fault injection).
  int read_timeout_ms = 30'000;
  /// Connect/retry cycles per operation before giving up.
  int max_attempts = 8;
  /// Reconnect backoff: base doubles up to cap, jittered ±25%.
  int backoff_base_ms = 50;
  int backoff_cap_ms = 2'000;
  /// Jitter seed; 0 derives one from the client id so concurrent clients
  /// de-synchronize deterministically under a fixed id.
  std::uint64_t seed = 0;
  /// Idempotency identity.  Empty = a fresh unique id (pid + counter).
  /// Reusing an id across instances restarts the sequence at 1 and would
  /// collide with the server's cached window for that id — only pass one
  /// when resuming a persisted (id, seq) pair.
  std::string client_id;
};

class ResilientClient {
 public:
  ResilientClient(Endpoint leader, ResilientOptions options = {});

  ResilientClient(ResilientClient&&) = default;
  ResilientClient& operator=(ResilientClient&&) = default;

  /// Replaces the leader and the read-failover replica endpoints (e.g.
  /// after a failover promoted a follower).  Takes effect at the next
  /// reconnect; the live connection, pending queue, and sequence keep
  /// going.
  void set_endpoints(Endpoint leader, std::vector<Endpoint> replicas = {});

  /// Abort hook for the backoff sleeps: when `*abort` becomes true a
  /// retry loop gives up promptly with the last network error.
  void set_abort(const std::atomic<bool>* abort) { abort_ = abort; }

  /// One command, exactly once: tokened send + receive with reconnect and
  /// same-token replay on failure.  `session user ...` is intercepted and
  /// also re-applied on every reconnect.  Throws `support::NetError` when
  /// attempts are exhausted or the outcome became unknown (restart).
  [[nodiscard]] CallResult call(std::string_view command,
                                std::string_view body = "");

  /// Pipelined form: `send` queues and transmits without waiting;
  /// `receive` returns replies strictly in send order, replaying every
  /// unacknowledged token after a reconnect.
  void send(std::string_view command, std::string_view body = "");
  [[nodiscard]] CallResult receive();
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

  /// Drops every pending command — accepting that their outcomes stay
  /// unknown — and closes the connection (its replies would desync the
  /// queue), so the client is usable again after `call`/`receive` gave
  /// up.
  void abandon_pending() {
    pending_.clear();
    transmitted_ = 0;
    client_.close();
  }

  /// Bumps on every new connection after the first.  A caller that built
  /// connection-scoped workspace state should treat a changed generation
  /// as "my flows are gone".
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }
  /// Tokens re-sent after a reconnect (the replay traffic).
  [[nodiscard]] std::uint64_t replays() const { return replays_; }
  /// Reads answered by a replica because the leader was unreachable.
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }

  [[nodiscard]] const std::string& client_id() const { return client_id_; }
  [[nodiscard]] bool connected() const { return client_.connected(); }
  /// The boot id of the server the last connection reached (0 = never
  /// connected).
  [[nodiscard]] std::uint64_t server_boot() const { return last_boot_; }

  void close() { client_.close(); }

 private:
  struct Pending {
    std::uint64_t seq = 0;
    std::string command;
    std::string body;
    bool read = false;  ///< read-classified → eligible for replica failover
    /// Ever put on a wire: only a transmitted command can have been
    /// applied, so only these become "outcome unknown" after a restart.
    bool ever_sent = false;
  };

  /// Connects (if needed), verifies the incarnation, re-applies the
  /// session user, and replays `pending_`.  Throws NetError on failure —
  /// including the outcome-unknown restart case, which also clears
  /// `pending_` (retrying those tokens against a new incarnation would
  /// re-execute them).
  void ensure_connected();
  void note_user(std::string_view command);
  /// Tries each replica endpoint in turn for a read; appends failures to
  /// `*error`.  True = `*out` holds a replica's answer.
  [[nodiscard]] bool read_from_replica(std::string_view command,
                                       std::string_view body,
                                       std::string* error, CallResult* out);

  Endpoint leader_;
  std::vector<Endpoint> replicas_;
  ResilientOptions options_;
  std::string client_id_;
  Client client_;
  support::Backoff backoff_;
  const std::atomic<bool>* abort_ = nullptr;

  std::uint64_t seq_ = 0;
  std::deque<Pending> pending_;
  /// Pendings (a prefix of `pending_`) transmitted on the *current*
  /// connection; anything beyond is (re)sent before the next receive.
  std::size_t transmitted_ = 0;
  std::string user_;  ///< re-applied on reconnect; empty = never set

  std::uint64_t last_boot_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t replays_ = 0;
  std::uint64_t failovers_ = 0;
};

}  // namespace herc::server
