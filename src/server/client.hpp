// `herc::server::Client`: the library side of the wire protocol.
//
// `herc connect` wraps it as a remote REPL; tests and the benchmarks
// drive it directly.  One call = one command; `send`/`receive` expose the
// pipelined form (many commands in flight, answers strictly in order).
#pragma once

#include <string>
#include <string_view>

#include "server/protocol.hpp"
#include "server/socket.hpp"
#include "support/severity.hpp"

namespace herc::server {

/// One command's reply: printed output plus the structured error channel.
struct CallResult {
  support::Severity severity = support::Severity::kClean;
  std::string error;   ///< empty unless severity is kError
  std::string output;  ///< what the command printed
  [[nodiscard]] bool ok() const {
    return severity != support::Severity::kError;
  }
  /// The shared fsck/lint exit-code convention.
  [[nodiscard]] int exit_code() const { return support::exit_code(severity); }
};

class Client {
 public:
  /// Connects and verifies the server's hello.  `connect_timeout_ms`
  /// bounds the TCP connect and the hello read (0 = block).  Throws
  /// `support::NetError` on refusal, timeout, or a non-herc peer.
  [[nodiscard]] static Client connect(const Endpoint& endpoint,
                                      int connect_timeout_ms = 0);

  Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  [[nodiscard]] bool connected() const { return sock_.valid(); }
  /// The server's hello banner (the human part after the fields).
  [[nodiscard]] const std::string& banner() const { return banner_; }
  /// The structured `role=` hello field ("leader" | "replica").  The
  /// banner prose is NOT consulted: a leader serving a store path that
  /// merely contains "replica" must not be misrouted.
  [[nodiscard]] const std::string& role() const { return role_; }
  [[nodiscard]] bool is_replica() const { return role_ == "replica"; }
  /// The server incarnation id from the hello (`boot=`); a different
  /// value after a reconnect means the server restarted and its
  /// idempotency window is gone.
  [[nodiscard]] std::uint64_t server_boot() const { return boot_id_; }

  /// Bounds every `receive` (0 = wait forever).  A reply that does not
  /// finish within the bound throws `support::NetError`.
  void set_read_timeout(int ms) { read_timeout_ms_ = ms; }

  /// Sends one command without waiting (pipelining).  `body` is the
  /// heredoc payload for commands that take one.
  void send(std::string_view command, std::string_view body = "");

  /// Sends one command wearing an idempotency token: if the connection
  /// dies before the reply, re-sending the same (client_id, seq) over a
  /// new connection to the same server incarnation yields the original
  /// reply instead of a second execution.
  void send_token(std::string_view client_id, std::uint64_t seq,
                  std::string_view command, std::string_view body = "");

  /// Reads one command's reply (output frames + the result frame).
  /// Throws `support::NetError` when the server vanishes mid-reply or
  /// the read timeout expires.
  [[nodiscard]] CallResult receive();

  /// send + receive.
  [[nodiscard]] CallResult call(std::string_view command,
                                std::string_view body = "");

  void close() { sock_.close(); }

 private:
  [[nodiscard]] static std::string command_payload(std::string_view command,
                                                   std::string_view body);

  Socket sock_;
  std::string banner_;
  std::string role_ = "leader";
  std::uint64_t boot_id_ = 0;
  int read_timeout_ms_ = 0;
};

}  // namespace herc::server
