// `herc::server::Client`: the library side of the wire protocol.
//
// `herc connect` wraps it as a remote REPL; tests and the benchmarks
// drive it directly.  One call = one command; `send`/`receive` expose the
// pipelined form (many commands in flight, answers strictly in order).
#pragma once

#include <string>
#include <string_view>

#include "server/protocol.hpp"
#include "server/socket.hpp"
#include "support/severity.hpp"

namespace herc::server {

/// One command's reply: printed output plus the structured error channel.
struct CallResult {
  support::Severity severity = support::Severity::kClean;
  std::string error;   ///< empty unless severity is kError
  std::string output;  ///< what the command printed
  [[nodiscard]] bool ok() const {
    return severity != support::Severity::kError;
  }
  /// The shared fsck/lint exit-code convention.
  [[nodiscard]] int exit_code() const { return support::exit_code(severity); }
};

class Client {
 public:
  /// Connects and verifies the server's hello.  Throws
  /// `support::NetError` on refusal or a non-herc peer.
  [[nodiscard]] static Client connect(const Endpoint& endpoint);

  Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  [[nodiscard]] bool connected() const { return sock_.valid(); }
  /// The server's hello banner (after the magic).
  [[nodiscard]] const std::string& banner() const { return banner_; }
  /// True when the hello banner identifies a read-only replica — callers
  /// route write commands to the leader instead.
  [[nodiscard]] bool is_replica() const {
    return banner_.find("replica") != std::string::npos;
  }

  /// Sends one command without waiting (pipelining).  `body` is the
  /// heredoc payload for commands that take one.
  void send(std::string_view command, std::string_view body = "");

  /// Reads one command's reply (output frames + the result frame).
  /// Throws `support::NetError` when the server vanishes mid-reply.
  [[nodiscard]] CallResult receive();

  /// send + receive.
  [[nodiscard]] CallResult call(std::string_view command,
                                std::string_view body = "");

  void close() { sock_.close(); }

 private:
  Socket sock_;
  std::string banner_;
};

}  // namespace herc::server
