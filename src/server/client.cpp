#include "server/client.hpp"

#include "support/error.hpp"

namespace herc::server {

using support::NetError;

Client Client::connect(const Endpoint& endpoint) {
  Client client;
  client.sock_ = connect_to(endpoint);
  Frame hello;
  if (!read_frame(client.sock_.fd(), hello) ||
      hello.type != FrameType::kHello ||
      hello.payload.rfind(kMagic, 0) != 0) {
    throw NetError("'" + endpoint.describe() +
                   "' did not answer with a herc server hello");
  }
  client.banner_ = hello.payload.substr(kMagic.size());
  return client;
}

void Client::send(std::string_view command, std::string_view body) {
  if (!sock_.valid()) throw NetError("send: not connected");
  Frame frame;
  frame.type = FrameType::kCommand;
  frame.payload.assign(command);
  if (!body.empty()) {
    frame.payload.push_back('\n');
    frame.payload += body;
  }
  write_frame(sock_.fd(), frame);
}

CallResult Client::receive() {
  if (!sock_.valid()) throw NetError("receive: not connected");
  CallResult result;
  Frame frame;
  while (true) {
    if (!read_frame(sock_.fd(), frame)) {
      throw NetError("server closed the connection before the result");
    }
    if (frame.type == FrameType::kOutput) {
      result.output += frame.payload;
      continue;
    }
    if (frame.type == FrameType::kResult) {
      const ResultInfo info = decode_result(frame.payload);
      result.severity = info.severity;
      result.error = info.error;
      return result;
    }
    throw NetError("unexpected frame type in a reply");
  }
}

CallResult Client::call(std::string_view command, std::string_view body) {
  send(command, body);
  return receive();
}

}  // namespace herc::server
