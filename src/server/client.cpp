#include "server/client.hpp"

#include "support/error.hpp"

namespace herc::server {

using support::NetError;

Client Client::connect(const Endpoint& endpoint, int connect_timeout_ms) {
  Client client;
  client.sock_ = connect_to(endpoint, connect_timeout_ms);
  Frame hello;
  bool got = false;
  if (connect_timeout_ms > 0) {
    ReadDeadline deadline;
    deadline.idle_ms = connect_timeout_ms;
    deadline.frame_ms = connect_timeout_ms;
    got = read_frame(client.sock_.fd(), hello, deadline) ==
          ReadOutcome::kFrame;
  } else {
    got = read_frame(client.sock_.fd(), hello);
  }
  if (!got || hello.type != FrameType::kHello) {
    throw NetError("'" + endpoint.describe() +
                   "' did not answer with a herc server hello");
  }
  HelloInfo info;
  try {
    info = decode_hello(hello.payload);
  } catch (const NetError&) {
    throw NetError("'" + endpoint.describe() +
                   "' did not answer with a herc server hello");
  }
  client.banner_ = info.banner;
  client.role_ = info.role;
  client.boot_id_ = info.boot_id;
  return client;
}

std::string Client::command_payload(std::string_view command,
                                    std::string_view body) {
  std::string payload(command);
  if (!body.empty()) {
    payload.push_back('\n');
    payload += body;
  }
  return payload;
}

void Client::send(std::string_view command, std::string_view body) {
  if (!sock_.valid()) throw NetError("send: not connected");
  Frame frame;
  frame.type = FrameType::kCommand;
  frame.payload = command_payload(command, body);
  write_frame(sock_.fd(), frame);
}

void Client::send_token(std::string_view client_id, std::uint64_t seq,
                        std::string_view command, std::string_view body) {
  if (!sock_.valid()) throw NetError("send: not connected");
  Frame frame;
  frame.type = FrameType::kTokenCommand;
  frame.payload = encode_token(client_id, seq, command_payload(command, body));
  write_frame(sock_.fd(), frame);
}

CallResult Client::receive() {
  if (!sock_.valid()) throw NetError("receive: not connected");
  CallResult result;
  Frame frame;
  while (true) {
    bool got = false;
    if (read_timeout_ms_ > 0) {
      ReadDeadline deadline;
      deadline.idle_ms = read_timeout_ms_;
      deadline.frame_ms = read_timeout_ms_;
      const ReadOutcome outcome = read_frame(sock_.fd(), frame, deadline);
      if (outcome == ReadOutcome::kIdle) {
        throw NetError("no reply within " + std::to_string(read_timeout_ms_) +
                       "ms");
      }
      got = outcome == ReadOutcome::kFrame;
    } else {
      got = read_frame(sock_.fd(), frame);
    }
    if (!got) {
      throw NetError("server closed the connection before the result");
    }
    if (frame.type == FrameType::kOutput) {
      result.output += frame.payload;
      continue;
    }
    if (frame.type == FrameType::kResult) {
      const ResultInfo info = decode_result(frame.payload);
      result.severity = info.severity;
      result.error = info.error;
      return result;
    }
    throw NetError("unexpected frame type in a reply");
  }
}

CallResult Client::call(std::string_view command, std::string_view body) {
  send(command, body);
  return receive();
}

}  // namespace herc::server
