// The framed wire protocol between `herc serve` and its clients.
//
// The 1993 system's task manager was one process per designer; serving a
// *shared* design history to a team needs a wire format.  It is kept
// deliberately small: a stream of length-prefixed frames,
//
//   u32 LE payload-length | u8 frame-type | payload bytes
//
// over TCP (localhost) or a Unix domain socket.  Four frame types:
//
//   kHello   server -> client, once per connection: the magic "HERCNET1"
//            plus a short banner.  A client that reads anything else is
//            talking to the wrong port.
//   kCommand client -> server: one interpreter command line; when the
//            command carries a heredoc body (`import ... <<END`), the
//            payload is `line\n` followed by the body.
//   kOutput  server -> client: the command's printed output (omitted when
//            the command printed nothing).
//   kResult  server -> client, exactly one per command: a severity byte in
//            the shared fsck/lint exit-code convention ('0' clean,
//            '1' warnings, '2' error) followed by the error message, empty
//            on success.  The structured error channel — clients decide
//            their exit code without parsing human-readable output.
//
// Commands pipeline: a client may send any number of kCommand frames
// before reading; the server answers strictly in order.
//
// Replication (PR 7) adds five frame types spoken only on a follower's
// subscription connection — see src/replica/replication.hpp for the
// payload formats:
//
//   kSubscribe  follower -> leader: "<epoch> <seq>" to resume, empty to
//               bootstrap from scratch.  The connection then becomes a
//               one-way journal stream; no further kCommand is accepted.
//   kSnapshot   leader -> follower: full store image (bootstrap/resync).
//   kJournal    leader -> follower: one checksummed journal frame.
//   kCheckpoint leader -> follower: the leader compacted; epoch bumped.
//   kAck        follower -> leader: highest contiguously applied position
//               (feeds the per-follower lag numbers in `stats`).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/severity.hpp"

namespace herc::server {

/// First bytes of every kHello payload.
inline constexpr std::string_view kMagic = "HERCNET1";

/// Frames above this are a protocol violation (a desynchronized or hostile
/// peer), not a large result: payloads are command lines and text reports.
inline constexpr std::size_t kMaxFramePayload = 64u * 1024u * 1024u;

/// On-wire frame type byte.
enum class FrameType : unsigned char {
  kHello = 'H',
  kCommand = 'C',
  kOutput = 'O',
  kResult = 'R',
  kSubscribe = 'S',
  kSnapshot = 'P',
  kJournal = 'J',
  kCheckpoint = 'K',
  kAck = 'A',
};

struct Frame {
  FrameType type = FrameType::kCommand;
  std::string payload;
};

/// Serializes one frame (header + payload).  Throws `support::NetError`
/// when the payload exceeds `kMaxFramePayload`.
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Writes one frame to a connected socket, looping over partial sends and
/// EINTR.  Throws `support::NetError` when the peer is gone.
void write_frame(int fd, const Frame& frame);

/// Reads one frame.  Returns false on a clean end-of-stream at a frame
/// boundary; throws `support::NetError` on a mid-frame disconnect, an
/// unknown type byte or an oversized length.
[[nodiscard]] bool read_frame(int fd, Frame& frame);

/// Splits a kCommand payload into the command line and its heredoc body
/// (empty when the payload has no newline).
struct CommandPayload {
  std::string line;
  std::string body;
};
[[nodiscard]] CommandPayload split_command(std::string_view payload);

/// The kResult payload: severity byte + error message.
[[nodiscard]] std::string encode_result(support::Severity severity,
                                        std::string_view error);
struct ResultInfo {
  support::Severity severity = support::Severity::kClean;
  std::string error;
};
/// Throws `support::NetError` on an empty or malformed payload.
[[nodiscard]] ResultInfo decode_result(std::string_view payload);

}  // namespace herc::server
