// The framed wire protocol between `herc serve` and its clients.
//
// The 1993 system's task manager was one process per designer; serving a
// *shared* design history to a team needs a wire format.  It is kept
// deliberately small: a stream of length-prefixed frames,
//
//   u32 LE payload-length | u8 frame-type | payload bytes
//
// over TCP (localhost) or a Unix domain socket.  Four frame types:
//
//   kHello   server -> client, once per connection: the magic "HERCNET1",
//            structured `key=value` fields (`role=` leader|replica so
//            clients route writes without guessing from prose, `boot=`
//            a per-incarnation id so a reconnecting client can tell a
//            transient drop from a server restart) and a short banner.
//            A client that reads anything else is talking to the wrong
//            port.
//   kCommand client -> server: one interpreter command line; when the
//            command carries a heredoc body (`import ... <<END`), the
//            payload is `line\n` followed by the body.
//   kTokenCommand
//            a kCommand wearing an idempotency token: the payload is
//            `<client-id> <seq>\n` followed by a kCommand payload.  The
//            server remembers recently applied (client-id, seq) pairs
//            with their replies, so a client that lost the connection
//            after sending but before reading the result can replay the
//            exact frame and receive the original reply instead of
//            re-executing the mutation — exactly-once across retries.
//   kOutput  server -> client: the command's printed output (omitted when
//            the command printed nothing).
//   kResult  server -> client, exactly one per command: a severity byte in
//            the shared fsck/lint exit-code convention ('0' clean,
//            '1' warnings, '2' error) followed by the error message, empty
//            on success.  The structured error channel — clients decide
//            their exit code without parsing human-readable output.
//
// Commands pipeline: a client may send any number of kCommand frames
// before reading; the server answers strictly in order.
//
// Replication (PR 7) adds five frame types spoken only on a follower's
// subscription connection — see src/replica/replication.hpp for the
// payload formats:
//
//   kSubscribe  follower -> leader: "<epoch> <seq>" to resume, empty to
//               bootstrap from scratch.  The connection then becomes a
//               one-way journal stream; no further kCommand is accepted.
//   kSnapshot   leader -> follower: full store image (bootstrap/resync).
//   kJournal    leader -> follower: one checksummed journal frame.
//   kCheckpoint leader -> follower: the leader compacted; epoch bumped.
//   kAck        follower -> leader: highest contiguously applied position
//               (feeds the per-follower lag numbers in `stats`).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/error.hpp"
#include "support/severity.hpp"

namespace herc::server {

/// First bytes of every kHello payload.
inline constexpr std::string_view kMagic = "HERCNET1";

/// Frames above this are a protocol violation (a desynchronized or hostile
/// peer), not a large result: payloads are command lines and text reports.
inline constexpr std::size_t kMaxFramePayload = 64u * 1024u * 1024u;

/// On-wire frame type byte.
enum class FrameType : unsigned char {
  kHello = 'H',
  kCommand = 'C',
  kTokenCommand = 'T',
  kOutput = 'O',
  kResult = 'R',
  kSubscribe = 'S',
  kSnapshot = 'P',
  kJournal = 'J',
  kCheckpoint = 'K',
  kAck = 'A',
};

struct Frame {
  FrameType type = FrameType::kCommand;
  std::string payload;
};

/// Serializes one frame (header + payload).  Throws `support::NetError`
/// when the payload exceeds `kMaxFramePayload`.
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Writes one frame to a connected socket, looping over partial sends and
/// EINTR.  Throws `support::NetError` when the peer is gone.
void write_frame(int fd, const Frame& frame);

/// Reads one frame.  Returns false on a clean end-of-stream at a frame
/// boundary; throws `support::NetError` on a mid-frame disconnect, an
/// unknown type byte or an oversized length.
[[nodiscard]] bool read_frame(int fd, Frame& frame);

/// Read deadlines for the bounded variant below.  Zero disables a limit.
struct ReadDeadline {
  /// Max ms to wait for the *first* byte of the next frame.  Expiring
  /// here is not an error — the peer is merely quiet — so the bounded
  /// read reports `kIdle` and the caller decides (the server's idle
  /// reaper, a client's reply timeout).
  int idle_ms = 0;
  /// Max ms for the rest of the frame once its first byte arrived.  A
  /// peer that starts a frame and stalls is half-open or hostile;
  /// expiring here throws `support::NetError`.
  int frame_ms = 0;
};

enum class ReadOutcome {
  kFrame,  ///< a frame was read
  kEof,    ///< clean end-of-stream at a frame boundary
  kIdle,   ///< idle_ms expired before the first byte of a frame
};

/// Thrown by the bounded read when a peer starts a frame and stalls past
/// `frame_ms`.  Derives `NetError` so callers that treat every network
/// failure alike need not care; the server's reader distinguishes it to
/// count the reap (the peer was shed, it did not die on its own).
class FrameStallError : public support::NetError {
 public:
  using support::NetError::NetError;
};

/// `read_frame` with deadlines.  Throws `support::NetError` on the same
/// conditions as the unbounded form, plus a mid-frame stall past
/// `frame_ms`.
[[nodiscard]] ReadOutcome read_frame(int fd, Frame& frame,
                                     const ReadDeadline& deadline);

/// Splits a kCommand payload into the command line and its heredoc body
/// (empty when the payload has no newline).
struct CommandPayload {
  std::string line;
  std::string body;
};
[[nodiscard]] CommandPayload split_command(std::string_view payload);

/// Builds a kTokenCommand payload: `<client-id> <seq>\n` + the kCommand
/// payload it wraps.  The client id may not contain whitespace.
[[nodiscard]] std::string encode_token(std::string_view client_id,
                                       std::uint64_t seq,
                                       std::string_view command_payload);

/// A parsed kTokenCommand payload.
struct TokenInfo {
  std::string client_id;
  std::uint64_t seq = 0;
  /// The wrapped kCommand payload (feed to `split_command`).
  std::string command;
};
/// Throws `support::NetError` on a malformed token line.
[[nodiscard]] TokenInfo split_token(std::string_view payload);

/// Builds a kHello payload: magic, `role=`, `boot=`, then the banner.
[[nodiscard]] std::string encode_hello(std::string_view role,
                                       std::uint64_t boot_id,
                                       std::string_view banner);

/// Parsed kHello payload.  Unknown `key=value` fields are skipped, so
/// older clients survive newer servers and vice versa.
struct HelloInfo {
  /// "leader" | "replica"; defaults to leader when the field is absent.
  std::string role = "leader";
  /// The server incarnation id (0 when absent).  A client that
  /// reconnects and sees a different boot id knows the server restarted
  /// — its in-memory idempotency window is gone, so unacked mutations
  /// must not be blindly replayed.
  std::uint64_t boot_id = 0;
  /// The human-readable remainder.
  std::string banner;
};
/// Throws `support::NetError` when the payload does not start with the
/// magic.
[[nodiscard]] HelloInfo decode_hello(std::string_view payload);

/// The kResult payload: severity byte + error message.
[[nodiscard]] std::string encode_result(support::Severity severity,
                                        std::string_view error);
struct ResultInfo {
  support::Severity severity = support::Severity::kClean;
  std::string error;
};
/// Throws `support::NetError` on an empty or malformed payload.
[[nodiscard]] ResultInfo decode_result(std::string_view payload);

}  // namespace herc::server
