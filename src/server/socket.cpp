#include "server/socket.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/error.hpp"

namespace herc::server {

using support::NetError;

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

std::uint16_t parse_port(std::string_view text, std::string_view spec) {
  if (text.empty()) {
    throw NetError("bad address '" + std::string(spec) +
                   "': missing port (use host:port or unix:/path)");
  }
  std::uint32_t port = 0;
  for (const char c : text) {
    if (c < '0' || c > '9' || (port = port * 10 + (c - '0')) > 65535) {
      throw NetError("bad address '" + std::string(spec) +
                     "': port must be 0..65535");
    }
  }
  return static_cast<std::uint16_t>(port);
}

}  // namespace

Endpoint Endpoint::parse(std::string_view spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path.assign(spec.substr(5));
    if (ep.path.empty() || ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw NetError("bad address '" + std::string(spec) +
                     "': unix socket path empty or too long");
    }
    return ep;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos) {
    throw NetError("bad address '" + std::string(spec) +
                   "': expected host:port or unix:/path");
  }
  ep.kind = Kind::kTcp;
  if (colon > 0) ep.host.assign(spec.substr(0, colon));
  ep.port = parse_port(spec.substr(colon + 1), spec);
  return ep;
}

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

namespace {

/// A unix socket path that already exists is either a live server, the
/// corpse of one, or something else entirely.  Probe-connect to tell the
/// first two apart; never unlink a path that answers (clobbering a live
/// server's socket silently splits its clients), and never unlink a
/// non-socket (the operator pointed us at the wrong path).
void clear_stale_unix_path(const std::string& path) {
  struct stat st{};
  if (::lstat(path.c_str(), &st) != 0) return;  // nothing there
  if (!S_ISSOCK(st.st_mode)) {
    throw NetError("'" + path +
                   "' exists and is not a socket; refusing to replace it");
  }
  Socket probe(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!probe.valid()) fail("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(probe.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    throw NetError("'" + path +
                   "' already has a live server listening; refusing to "
                   "replace it");
  }
  // ECONNREFUSED: a dead server's leftover file.  Anything else
  // (permissions, ...) will surface as a bind failure with its own errno.
  ::unlink(path.c_str());
}

}  // namespace

Socket listen_on(Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid()) fail("socket(AF_UNIX)");
    clear_stale_unix_path(endpoint.path);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, endpoint.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      fail("bind '" + endpoint.path + "'");
    }
    if (::listen(sock.fd(), SOMAXCONN) != 0) fail("listen");
    return sock;
  }

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) fail("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad address: '" + endpoint.host +
                   "' is not an IPv4 address");
  }
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail("bind " + endpoint.describe());
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) fail("listen");
  if (endpoint.port == 0) {
    // Ephemeral port: report the kernel's pick so clients (and tests) can
    // connect to it.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      fail("getsockname");
    }
    endpoint.port = ntohs(bound.sin_port);
  }
  return sock;
}

Socket connect_to(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid()) fail("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, endpoint.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      fail("connect " + endpoint.describe());
    }
    return sock;
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) fail("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad address: '" + endpoint.host +
                   "' is not an IPv4 address");
  }
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    fail("connect " + endpoint.describe());
  }
  // Command/result frames are tiny; Nagle + delayed ACK would add ~40ms
  // to every synchronous round trip.
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Socket connect_to(const Endpoint& endpoint, int timeout_ms) {
  if (timeout_ms <= 0) return connect_to(endpoint);

  Socket sock(::socket(
      endpoint.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET,
      SOCK_STREAM, 0));
  if (!sock.valid()) fail("socket");
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK) != 0) {
    fail("fcntl(O_NONBLOCK)");
  }

  int rc = 0;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, endpoint.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
      throw NetError("bad address: '" + endpoint.host +
                     "' is not an IPv4 address");
    }
    rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  }
  if (rc != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      fail("connect " + endpoint.describe());
    }
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) fail("poll");
    if (ready == 0) {
      throw NetError("connect " + endpoint.describe() + " timed out after " +
                     std::to_string(timeout_ms) + "ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      fail("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw NetError("connect " + endpoint.describe() + ": " +
                     std::strerror(err));
    }
  }
  if (::fcntl(sock.fd(), F_SETFL, flags) != 0) fail("fcntl(restore)");
  if (endpoint.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return sock;
}

Socket accept_from(const Socket& listener, std::string* peer) {
  while (true) {
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    const int fd = ::accept(listener.fd(),
                            reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Socket();  // listener closed / shut down
    }
    if (addr.ss_family == AF_INET) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    if (peer != nullptr) {
      if (addr.ss_family == AF_INET) {
        char buf[INET_ADDRSTRLEN] = {0};
        const auto* in = reinterpret_cast<const sockaddr_in*>(&addr);
        ::inet_ntop(AF_INET, &in->sin_addr, buf, sizeof(buf));
        *peer = std::string(buf) + ":" + std::to_string(ntohs(in->sin_port));
      } else {
        *peer = "unix";
      }
    }
    return Socket(fd);
  }
}

}  // namespace herc::server
