#include "server/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include <poll.h>
#include <unistd.h>

#include "cli/interpreter.hpp"
#include "server/protocol.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::server {

using support::NetError;
using support::Severity;

namespace {

constexpr std::size_t kFrameOverhead = 5;  // wire header per frame

/// What every open run is tagged with when the server winds down.
constexpr std::string_view kShutdownSealReason =
    "server shutdown: the run was cancelled mid-flight";

/// Distinguishes server incarnations within one process (in-process
/// restarts in tests and the swarm harness reuse the pid).
std::atomic<std::uint64_t> g_boot_counter{0};

}  // namespace

struct Server::Connection {
  Socket sock;
  std::uint64_t id = 0;
  std::string peer;
  /// Applied via `DesignSession::set_user` under the exclusive lock before
  /// every write command, so concurrent clients stamp their own products.
  std::string user = "designer";
  std::ostringstream out;
  std::unique_ptr<cli::Interpreter> interp;

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Frame> queue;
  bool eof = false;      ///< reader saw end-of-stream (or a wire error)
  bool closing = false;  ///< worker decided to close (quit, dead peer)
  /// Worker is executing a command (or pumping a subscription): the idle
  /// reaper must not cut a connection that is merely waiting on a long
  /// run's reply.
  bool busy = false;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> commands{0};
  std::thread reader;
  std::thread worker;
};

/// The per-client idempotency dedup window: replies of recently applied
/// tokened mutations, plus the tokens currently executing (a retry that
/// races its own original waits for the reply instead of re-executing).
struct Server::ClientWindow {
  struct CachedReply {
    std::string output;
    std::string result;
  };
  std::map<std::uint64_t, CachedReply> done;
  std::deque<std::uint64_t> order;  ///< insertion order, for eviction
  std::set<std::uint64_t> in_flight;
  /// Highest evicted seq: anything at or below without a cached reply is
  /// outside the window ("whether it ran is unknowable" error).
  std::uint64_t floor = 0;
  std::uint64_t last_used = 0;  ///< LRU tick for client eviction
};

Server::Server(core::DesignSession& session, ServeOptions options)
    : session_(session), options_(options) {
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  if (options_.dedup_window == 0) options_.dedup_window = 1;
  if (options_.dedup_clients == 0) options_.dedup_clients = 1;
  boot_id_ =
      (static_cast<std::uint64_t>(::getpid()) << 48) ^
      (g_boot_counter.fetch_add(1, std::memory_order_relaxed) + 1) ^
      (static_cast<std::uint64_t>(
           std::chrono::system_clock::now().time_since_epoch().count())
       << 16);
  if (boot_id_ == 0) boot_id_ = 1;  // 0 means "unknown" on the wire
}

Server::~Server() {
  stop();
  // A server that never started still owns pipe fds when start() threw.
  for (const int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

Endpoint Server::add_listener(const Endpoint& endpoint) {
  if (running_.load()) {
    throw NetError("add_listener: the server is already running");
  }
  Listener listener;
  listener.endpoint = endpoint;
  listener.sock = listen_on(listener.endpoint);
  listeners_.push_back(std::move(listener));
  return listeners_.back().endpoint;
}

void Server::start() {
  if (listeners_.empty()) {
    throw NetError("start: no listeners bound (call add_listener first)");
  }
  if (running_.exchange(true)) {
    throw NetError("start: the server is already running");
  }
  stopping_.store(false);
  cancel_.store(false);
  started_ = std::chrono::steady_clock::now();
  if (::pipe(wake_pipe_) != 0) {
    running_.store(false);
    throw NetError("start: cannot create the wake pipe");
  }
  // From here on an in-flight run can be stopped cooperatively (stop()
  // raises the flag; the executor polls it between task groups).
  session_.set_cancel_flag(&cancel_);
  accept_thread_ = std::thread(&Server::accept_loop, this);
}

void Server::accept_loop() {
  while (true) {
    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const Listener& l : listeners_) {
      fds.push_back({l.sock.fd(), POLLIN, 0});
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) break;  // stop() wrote the wake byte
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      std::string peer;
      Socket sock = accept_from(listeners_[i - 1].sock, &peer);
      if (!sock.valid() || stopping_.load()) continue;

      auto conn = std::make_unique<Connection>();
      conn->sock = std::move(sock);
      conn->peer = std::move(peer);
      try {
        write_frame(conn->sock.fd(),
                    {FrameType::kHello,
                     encode_hello(options_.read_only ? "replica" : "leader",
                                  boot_id_,
                                  options_.read_only
                                      ? "herc replica (read-only)"
                                      : "herc design server")});
      } catch (const NetError&) {
        continue;  // the peer vanished between connect and hello
      }
      conn->interp =
          std::make_unique<cli::Interpreter>(conn->out, session_);
      stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
      Connection& ref = *conn;
      {
        std::scoped_lock lock(connections_mutex_);
        ref.id = next_connection_id_++;
        connections_.push_back(std::move(conn));
      }
      ref.reader = std::thread(&Server::reader_loop, this, std::ref(ref));
      ref.worker = std::thread(&Server::worker_loop, this, std::ref(ref));
    }
    join_finished_connections();
  }
}

void Server::reader_loop(Connection& conn) {
  bool reaped = false;
  try {
    Frame frame;
    const ReadDeadline deadline{options_.idle_timeout_ms,
                                options_.frame_timeout_ms};
    const bool bounded = deadline.idle_ms > 0 || deadline.frame_ms > 0;
    while (true) {
      ReadOutcome outcome;
      if (bounded) {
        outcome = read_frame(conn.sock.fd(), frame, deadline);
      } else {
        outcome = read_frame(conn.sock.fd(), frame) ? ReadOutcome::kFrame
                                                    : ReadOutcome::kEof;
      }
      if (outcome == ReadOutcome::kEof) break;
      if (outcome == ReadOutcome::kIdle) {
        // Reap only a connection with nothing queued or executing: a
        // client quietly waiting on a long run's reply is not half-open.
        bool busy;
        {
          std::scoped_lock lock(conn.mutex);
          busy = conn.busy || !conn.queue.empty() || conn.closing;
        }
        if (busy || stopping_.load()) continue;
        reaped = true;
        break;
      }
      stats_.bytes_in.fetch_add(frame.payload.size() + kFrameOverhead,
                                std::memory_order_relaxed);
      if (frame.type == FrameType::kAck) {
        // Follower progress reports bypass the command queue: they never
        // produce a reply and must not wait behind the stream pump.
        if (hub_ != nullptr) hub_->ack(conn.id, frame.payload);
        continue;
      }
      std::unique_lock lock(conn.mutex);
      // Backpressure: a client that pipelines past the queue depth blocks
      // here, which stops draining the socket, which fills the kernel
      // buffers, which blocks the client's send — flow control for free.
      conn.cv.wait(lock, [&] {
        return conn.queue.size() < options_.queue_depth || conn.closing ||
               stopping_.load();
      });
      if (conn.closing) break;
      conn.queue.push_back(std::move(frame));
      conn.cv.notify_all();
    }
  } catch (const FrameStallError&) {
    // A half-open peer held mid-frame past the deadline: the server shed
    // it — that is a reap, unlike a peer that died on its own below.
    reaped = true;
  } catch (const NetError&) {
    // A torn frame or a dead peer ends the connection like an EOF would.
  }
  if (reaped) {
    stats_.connections_reaped.fetch_add(1, std::memory_order_relaxed);
    conn.sock.shutdown_both();
  }
  // A follower that vanished must not leave its stream pump blocked in
  // `next_frame` until the next mutation happens to wake it: dropping the
  // subscription ends the pump now.  A no-op for plain command connections.
  if (hub_ != nullptr) hub_->unsubscribe(conn.id);
  {
    std::scoped_lock lock(conn.mutex);
    conn.eof = true;
  }
  conn.cv.notify_all();
}

void Server::worker_loop(Connection& conn) {
  while (true) {
    Frame frame;
    {
      std::unique_lock lock(conn.mutex);
      conn.cv.wait(lock, [&] { return !conn.queue.empty() || conn.eof; });
      if (conn.queue.empty()) break;  // eof and fully drained
      frame = std::move(conn.queue.front());
      conn.queue.pop_front();
      conn.busy = true;  // the idle reaper leaves executing connections be
      conn.cv.notify_all();  // release a backpressured reader
    }
    if (frame.type == FrameType::kSubscribe) {
      // The connection becomes a one-way journal stream; this worker is
      // its pump until the stream ends, then the connection closes.
      serve_subscription(conn, frame);
      {
        std::scoped_lock lock(conn.mutex);
        conn.closing = true;
      }
      conn.cv.notify_all();
      conn.sock.shutdown_both();
      break;
    }
    std::string output;
    std::string result;
    bool quit = false;
    if (frame.type != FrameType::kCommand &&
        frame.type != FrameType::kTokenCommand) {
      result = encode_result(Severity::kError,
                             "protocol error: expected a command frame");
      stats_.command_errors.fetch_add(1, std::memory_order_relaxed);
    } else if (stopping_.load()) {
      // Queued behind the shutdown: refused, not silently dropped — the
      // client learns its command never ran.
      result = encode_result(Severity::kError, "server shutting down");
      stats_.command_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      const auto begin = std::chrono::steady_clock::now();
      if (frame.type == FrameType::kTokenCommand) {
        result = execute_tokened(conn, frame.payload, output, quit);
      } else {
        CommandPayload cmd = split_command(frame.payload);
        result = execute_command(conn, cmd.line, std::move(cmd.body), output,
                                 quit);
      }
      stats_.command_latency.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - begin)
              .count()));
    }
    conn.commands.fetch_add(1, std::memory_order_relaxed);
    try {
      if (!output.empty()) {
        stats_.bytes_out.fetch_add(output.size() + kFrameOverhead,
                                   std::memory_order_relaxed);
        write_frame(conn.sock.fd(), {FrameType::kOutput, std::move(output)});
      }
      stats_.bytes_out.fetch_add(result.size() + kFrameOverhead,
                                 std::memory_order_relaxed);
      write_frame(conn.sock.fd(), {FrameType::kResult, std::move(result)});
    } catch (const NetError&) {
      quit = true;  // the peer is gone; no point executing its backlog
    }
    {
      std::scoped_lock lock(conn.mutex);
      conn.busy = false;
    }
    if (quit) {
      {
        std::scoped_lock lock(conn.mutex);
        conn.closing = true;
      }
      conn.cv.notify_all();
      conn.sock.shutdown_both();
      break;
    }
  }
  conn.sock.shutdown_both();
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  conn.done.store(true);
}

void Server::serve_subscription(Connection& conn, const Frame& frame) {
  if (hub_ == nullptr) {
    try {
      write_frame(conn.sock.fd(),
                  {FrameType::kResult,
                   encode_result(Severity::kError,
                                 "replication is not enabled on this "
                                 "server")});
    } catch (const NetError&) {
    }
    return;
  }
  {
    // The exclusive lock makes the bootstrap position-atomic: no mutation
    // (and therefore no shipped frame) can interleave between capturing
    // the position and queuing the bootstrap.
    std::unique_lock lock(session_mutex_);
    std::string error;
    if (!hub_->subscribe(conn.id, conn.peer, frame.payload, &error)) {
      lock.unlock();
      try {
        write_frame(conn.sock.fd(),
                    {FrameType::kResult,
                     encode_result(Severity::kError, error)});
      } catch (const NetError&) {
      }
      return;
    }
  }
  try {
    Frame out;
    while (hub_->next_frame(conn.id, out)) {
      stats_.bytes_out.fetch_add(out.payload.size() + kFrameOverhead,
                                 std::memory_order_relaxed);
      write_frame(conn.sock.fd(), out);
    }
  } catch (const NetError&) {
    // The follower vanished; it will reconnect and resync.
  }
  hub_->unsubscribe(conn.id);
}

std::string Server::execute_command(Connection& conn,
                                    const std::string& line,
                                    std::string body, std::string& output,
                                    bool& quit) {
  const std::vector<std::string> args =
      support::split_ws(support::trim(line));

  // Connection-scoped interceptions: `stats` and `replicas` read only
  // counters; `session user` must not touch the shared session outside
  // the exclusive lock, so it is recorded here and applied per write
  // command.
  if (!args.empty() && args[0] == "stats" &&
      (args.size() == 1 || (args.size() == 2 && args[1] == "--json"))) {
    output = render_stats(conn, args.size() == 2);
    return encode_result(Severity::kClean, "");
  }
  if (!args.empty() && args[0] == "replicas" &&
      (args.size() == 1 || (args.size() == 2 && args[1] == "--json"))) {
    const bool json = args.size() == 2;
    if (hub_ == nullptr) {
      output = json ? "[]" : "replication is not enabled on this server\n";
    } else {
      output = hub_->render_followers(json);
    }
    return encode_result(Severity::kClean, "");
  }
  if (args.size() == 3 && args[0] == "session" && args[1] == "user") {
    conn.user = args[2];
    output = "user '" + conn.user + "' for this connection\n";
    return encode_result(Severity::kClean, "");
  }

  const cli::CommandAccess access = cli::command_access(line);
  if (options_.read_only && access == cli::CommandAccess::kWrite) {
    stats_.command_errors.fetch_add(1, std::memory_order_relaxed);
    return encode_result(Severity::kError,
                         "read-only replica: '" + (args.empty()
                              ? std::string()
                              : args[0]) +
                             "' is a write command; connect to the leader");
  }
  conn.out.str(std::string());
  cli::CommandStatus status;
  if (access == cli::CommandAccess::kRead) {
    std::shared_lock lock(session_mutex_);
    stats_.read_commands.fetch_add(1, std::memory_order_relaxed);
    status = conn.interp->execute(line, std::move(body));
  } else {
    std::unique_lock lock(session_mutex_);
    stats_.write_commands.fetch_add(1, std::memory_order_relaxed);
    session_.set_user(conn.user);
    status = conn.interp->execute(line, std::move(body));
  }
  output += conn.out.str();
  stats_.commands_executed.fetch_add(1, std::memory_order_relaxed);
  if (status == cli::CommandStatus::kQuit) {
    quit = true;
    return encode_result(Severity::kClean, "");
  }
  if (status == cli::CommandStatus::kError) {
    stats_.command_errors.fetch_add(1, std::memory_order_relaxed);
    return encode_result(Severity::kError, conn.interp->last_error());
  }
  return encode_result(conn.interp->last_severity(), "");
}

Server::ClientWindow& Server::touch_window(const std::string& client_id) {
  auto it = dedup_.find(client_id);
  if (it == dedup_.end()) {
    if (dedup_.size() >= options_.dedup_clients) {
      // Evict the least recently active client that has nothing
      // executing (a window with in-flight tokens is referenced by a
      // worker and by any waiters).
      auto victim = dedup_.end();
      for (auto w = dedup_.begin(); w != dedup_.end(); ++w) {
        if (!w->second->in_flight.empty()) continue;
        if (victim == dedup_.end() ||
            w->second->last_used < victim->second->last_used) {
          victim = w;
        }
      }
      if (victim != dedup_.end()) dedup_.erase(victim);
    }
    it = dedup_.emplace(client_id, std::make_unique<ClientWindow>()).first;
  }
  it->second->last_used = ++dedup_clock_;
  return *it->second;
}

std::string Server::execute_tokened(Connection& conn,
                                    const std::string& payload,
                                    std::string& output, bool& quit) {
  TokenInfo token;
  try {
    token = split_token(payload);
  } catch (const NetError& e) {
    stats_.command_errors.fetch_add(1, std::memory_order_relaxed);
    return encode_result(Severity::kError, e.what());
  }
  CommandPayload cmd = split_command(token.command);
  const std::vector<std::string> args =
      support::split_ws(support::trim(cmd.line));
  // Connection-scoped commands (`session user`, `stats`, `replicas`) must
  // re-execute on the connection that carries them — serving a cached
  // reply would skip their per-connection side effect.  Reads are
  // harmless to repeat.  A read-only server refuses writes before they
  // touch anything, so its refusals need no dedup either.
  const bool connection_scoped =
      !args.empty() && (args[0] == "session" || args[0] == "stats" ||
                        args[0] == "replicas");
  const cli::CommandAccess access = cli::command_access(cmd.line);
  if (connection_scoped || access == cli::CommandAccess::kRead ||
      options_.read_only) {
    return execute_command(conn, cmd.line, std::move(cmd.body), output, quit);
  }

  std::unique_lock<std::mutex> lock(dedup_mutex_);
  ClientWindow& win = touch_window(token.client_id);
  if (const auto it = win.done.find(token.seq); it != win.done.end()) {
    // The ambiguous-retry case the token exists for: the command already
    // ran, the reply never reached the client.  Serve the original.
    stats_.dedup_hits.fetch_add(1, std::memory_order_relaxed);
    stats_.replays_served.fetch_add(1, std::memory_order_relaxed);
    output = it->second.output;
    return it->second.result;
  }
  if (win.in_flight.count(token.seq) != 0) {
    // The retry raced its own original mid-execution.  Wait for the
    // reply and serve the cached copy — running it twice is the one
    // forbidden outcome.
    stats_.dedup_hits.fetch_add(1, std::memory_order_relaxed);
    dedup_cv_.wait(lock, [&] {
      return win.in_flight.count(token.seq) == 0 || stopping_.load();
    });
    if (const auto it = win.done.find(token.seq); it != win.done.end()) {
      stats_.replays_served.fetch_add(1, std::memory_order_relaxed);
      output = it->second.output;
      return it->second.result;
    }
    stats_.command_errors.fetch_add(1, std::memory_order_relaxed);
    return encode_result(Severity::kError,
                         "duplicate token: the original attempt recorded no "
                         "reply (server shutting down)");
  }
  if (token.seq <= win.floor) {
    // Too old: the reply was evicted, so whether the command ran is
    // unknowable.  A structured refusal beats a silent second apply.
    stats_.dedup_hits.fetch_add(1, std::memory_order_relaxed);
    stats_.command_errors.fetch_add(1, std::memory_order_relaxed);
    return encode_result(
        Severity::kError,
        "token " + token.client_id + ":" + std::to_string(token.seq) +
            " is outside the dedup window; whether it was applied is "
            "unknown");
  }
  win.in_flight.insert(token.seq);
  lock.unlock();

  std::string result;
  try {
    result = execute_command(conn, cmd.line, std::move(cmd.body), output,
                             quit);
  } catch (...) {
    lock.lock();
    win.in_flight.erase(token.seq);
    dedup_cv_.notify_all();
    throw;
  }

  lock.lock();
  win.in_flight.erase(token.seq);
  ClientWindow::CachedReply& slot = win.done[token.seq];
  slot.output = output;
  slot.result = result;
  win.order.push_back(token.seq);
  while (win.order.size() > options_.dedup_window) {
    const std::uint64_t old = win.order.front();
    win.order.pop_front();
    win.floor = std::max(win.floor, old);
    win.done.erase(old);
  }
  dedup_cv_.notify_all();
  return result;
}

JournalPosition Server::journal_position() const {
  if (position_source_) return position_source_();
  // Leader default: read the open store's position under the shared lock
  // (a concurrent writer would otherwise race these plain counters).
  std::shared_lock lock(session_mutex_);
  storage::DurableHistory* store = session_.storage();
  if (store == nullptr) return {};
  JournalPosition pos;
  pos.epoch = store->epoch();
  pos.seq = store->journal_seq();
  pos.bytes = store->journal_file_bytes();
  return pos;
}

std::string Server::render_stats(const Connection& conn, bool json) const {
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  const std::uint64_t uptime =
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - started_)
              .count());
  const JournalPosition pos = journal_position();
  std::ostringstream out;
  if (json) {
    out << "{\"uptime_seconds\":" << uptime
        << ",\"read_only\":" << (options_.read_only ? "true" : "false")
        << ",\"connections_active\":" << load(stats_.connections_active)
        << ",\"connections_accepted\":" << load(stats_.connections_accepted)
        << ",\"commands_executed\":" << load(stats_.commands_executed)
        << ",\"read_commands\":" << load(stats_.read_commands)
        << ",\"write_commands\":" << load(stats_.write_commands)
        << ",\"command_errors\":" << load(stats_.command_errors)
        << ",\"bytes_in\":" << load(stats_.bytes_in)
        << ",\"bytes_out\":" << load(stats_.bytes_out)
        << ",\"dedup_hits\":" << load(stats_.dedup_hits)
        << ",\"replays_served\":" << load(stats_.replays_served)
        << ",\"connections_reaped\":" << load(stats_.connections_reaped)
        << ",\"latency_us\":{\"p50\":"
        << stats_.command_latency.percentile(0.50)
        << ",\"p95\":" << stats_.command_latency.percentile(0.95)
        << ",\"p99\":" << stats_.command_latency.percentile(0.99)
        << ",\"count\":" << stats_.command_latency.count() << "}"
        << ",\"journal_epoch\":" << pos.epoch
        << ",\"journal_seq\":" << pos.seq
        << ",\"journal_bytes\":" << pos.bytes;
    if (hub_ != nullptr) {
      out << ",\"followers\":" << hub_->render_followers(/*json=*/true);
    }
    out << "}\n";
    return out.str();
  }
  out << "server: " << load(stats_.connections_active)
      << " active connection(s), " << load(stats_.connections_accepted)
      << " accepted, up " << uptime << "s"
      << (options_.read_only ? " (read-only replica)" : "") << "\n"
      << "commands: " << load(stats_.commands_executed) << " executed ("
      << load(stats_.read_commands) << " reads, "
      << load(stats_.write_commands) << " writes), "
      << load(stats_.command_errors) << " error(s)\n"
      << "wire: " << load(stats_.bytes_in) << " bytes in, "
      << load(stats_.bytes_out) << " bytes out\n"
      << "resilience: " << load(stats_.dedup_hits) << " dedup hit(s), "
      << load(stats_.replays_served) << " replay(s) served, "
      << load(stats_.connections_reaped) << " connection(s) reaped\n"
      << "journal: epoch " << pos.epoch << ", seq " << pos.seq << ", "
      << pos.bytes << " bytes\n"
      << "latency: p50 " << stats_.command_latency.percentile(0.50)
      << "us, p95 " << stats_.command_latency.percentile(0.95)
      << "us, p99 " << stats_.command_latency.percentile(0.99) << "us ("
      << stats_.command_latency.count() << " sampled)\n";
  if (hub_ != nullptr) out << hub_->render_followers(/*json=*/false);
  out << "this connection: #" << conn.id << " (" << conn.peer << ") user '"
      << conn.user << "', "
      << conn.commands.load(std::memory_order_relaxed) << " command(s)\n";
  return out.str();
}

void Server::join_finished_connections() {
  std::scoped_lock lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& conn = **it;
    if (!conn.done.load()) {
      ++it;
      continue;
    }
    if (conn.reader.joinable()) conn.reader.join();
    if (conn.worker.joinable()) conn.worker.join();
    it = connections_.erase(it);
  }
}

void Server::stop() {
  if (!running_.load() || stopping_.exchange(true)) return;

  // 1. Cooperative cancel: an in-flight `run` stops launching task groups
  //    and reports `RunCancelled` to its client; its run record stays
  //    open.  Wake any dedup waiter parked on an in-flight token too.
  cancel_.store(true);
  {
    std::scoped_lock lock(dedup_mutex_);
  }
  dedup_cv_.notify_all();

  // 2. Stop accepting: wake the poll, join the accept loop, drop the
  //    listeners (unlinking unix socket files).
  const char byte = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  for (Listener& l : listeners_) {
    l.sock.close();
    if (l.endpoint.kind == Endpoint::Kind::kUnix) {
      ::unlink(l.endpoint.path.c_str());
    }
  }
  listeners_.clear();
  for (const int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
  wake_pipe_[0] = wake_pipe_[1] = -1;

  // 3. Wind down every connection: no new bytes read (SHUT_RD -> the
  //    reader sees EOF), backpressured readers released, queued commands
  //    answered with "server shutting down" by the worker.  Follower
  //    streams end first so their pump workers can join.
  if (hub_ != nullptr) hub_->close_all();
  {
    std::scoped_lock lock(connections_mutex_);
    for (const std::unique_ptr<Connection>& conn : connections_) {
      conn->sock.shutdown_read();
      conn->cv.notify_all();
    }
  }
  // Workers drain and exit on their own (the executor's cancel flag bounds
  // how long an in-flight run keeps one busy).
  {
    std::scoped_lock lock(connections_mutex_);
    for (const std::unique_ptr<Connection>& conn : connections_) {
      if (conn->reader.joinable()) conn->reader.join();
      if (conn->worker.joinable()) conn->worker.join();
    }
    connections_.clear();
  }

  // 4. Leave a clean, resumable store: quarantine the cancelled runs'
  //    partials, seal their sweep windows, sync the journal.  After this
  //    `herc fsck` reports the store clean and `herc resume` finishes the
  //    interrupted work.  A read-only replica skips the seal: its open
  //    runs are the leader's live runs, and its history may only change
  //    through replicated frames.
  {
    std::unique_lock lock(session_mutex_);
    session_.set_cancel_flag(nullptr);
    if (!options_.read_only) session_.seal_open_runs(kShutdownSealReason);
  }
  cancel_.store(false);
  running_.store(false);
}

}  // namespace herc::server
