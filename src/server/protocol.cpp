#include "server/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>

#include "support/error.hpp"

namespace herc::server {

using support::NetError;

namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;  // EPIPE, not SIGPIPE
#else
constexpr int kSendFlags = 0;
#endif

constexpr std::size_t kHeaderBytes = 5;  // u32 length + u8 type

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32_le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

bool known_type(unsigned char t) {
  return t == static_cast<unsigned char>(FrameType::kHello) ||
         t == static_cast<unsigned char>(FrameType::kCommand) ||
         t == static_cast<unsigned char>(FrameType::kOutput) ||
         t == static_cast<unsigned char>(FrameType::kResult) ||
         t == static_cast<unsigned char>(FrameType::kSubscribe) ||
         t == static_cast<unsigned char>(FrameType::kSnapshot) ||
         t == static_cast<unsigned char>(FrameType::kJournal) ||
         t == static_cast<unsigned char>(FrameType::kCheckpoint) ||
         t == static_cast<unsigned char>(FrameType::kAck);
}

void send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NetError(std::string("send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Fills `size` bytes.  Returns false when the stream ended before the
/// first byte (clean EOF); throws when it ended in the middle.
bool recv_exact(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NetError(std::string("recv failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw NetError("peer closed the connection mid-frame (" +
                     std::to_string(got) + " of " + std::to_string(size) +
                     " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw NetError("frame payload of " +
                   std::to_string(frame.payload.size()) +
                   " bytes exceeds the " +
                   std::to_string(kMaxFramePayload) + "-byte limit");
  }
  std::string out;
  out.reserve(kHeaderBytes + frame.payload.size());
  put_u32_le(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.push_back(static_cast<char>(frame.type));
  out += frame.payload;
  return out;
}

void write_frame(int fd, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  send_all(fd, wire.data(), wire.size());
}

bool read_frame(int fd, Frame& frame) {
  unsigned char header[kHeaderBytes];
  if (!recv_exact(fd, reinterpret_cast<char*>(header), kHeaderBytes)) {
    return false;
  }
  const std::uint32_t length = get_u32_le(header);
  if (length > kMaxFramePayload) {
    throw NetError("frame header announces " + std::to_string(length) +
                   " bytes (limit " + std::to_string(kMaxFramePayload) +
                   "); the stream is desynchronized");
  }
  if (!known_type(header[4])) {
    throw NetError("unknown frame type byte " +
                   std::to_string(static_cast<int>(header[4])));
  }
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(length);
  if (length > 0 && !recv_exact(fd, frame.payload.data(), length)) {
    throw NetError("peer closed the connection before the frame payload");
  }
  return true;
}

CommandPayload split_command(std::string_view payload) {
  CommandPayload out;
  const std::size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    out.line.assign(payload);
  } else {
    out.line.assign(payload.substr(0, nl));
    out.body.assign(payload.substr(nl + 1));
  }
  return out;
}

std::string encode_result(support::Severity severity,
                          std::string_view error) {
  std::string out;
  out.push_back(static_cast<char>('0' + support::exit_code(severity)));
  out += error;
  return out;
}

ResultInfo decode_result(std::string_view payload) {
  if (payload.empty() || payload[0] < '0' || payload[0] > '2') {
    throw NetError("malformed result frame: missing severity byte");
  }
  ResultInfo info;
  info.severity = support::severity_from_exit(payload[0] - '0');
  info.error.assign(payload.substr(1));
  return info;
}

}  // namespace herc::server
