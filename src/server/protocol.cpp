#include "server/protocol.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include "support/error.hpp"

namespace herc::server {

using support::NetError;

namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;  // EPIPE, not SIGPIPE
#else
constexpr int kSendFlags = 0;
#endif

constexpr std::size_t kHeaderBytes = 5;  // u32 length + u8 type

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32_le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

bool known_type(unsigned char t) {
  return t == static_cast<unsigned char>(FrameType::kHello) ||
         t == static_cast<unsigned char>(FrameType::kCommand) ||
         t == static_cast<unsigned char>(FrameType::kTokenCommand) ||
         t == static_cast<unsigned char>(FrameType::kOutput) ||
         t == static_cast<unsigned char>(FrameType::kResult) ||
         t == static_cast<unsigned char>(FrameType::kSubscribe) ||
         t == static_cast<unsigned char>(FrameType::kSnapshot) ||
         t == static_cast<unsigned char>(FrameType::kJournal) ||
         t == static_cast<unsigned char>(FrameType::kCheckpoint) ||
         t == static_cast<unsigned char>(FrameType::kAck);
}

void send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NetError(std::string("send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Fills `size` bytes.  Returns false when the stream ended before the
/// first byte (clean EOF); throws when it ended in the middle.
bool recv_exact(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NetError(std::string("recv failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw NetError("peer closed the connection mid-frame (" +
                     std::to_string(got) + " of " + std::to_string(size) +
                     " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// Remaining whole milliseconds until `deadline` (>= 0).
int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw NetError("frame payload of " +
                   std::to_string(frame.payload.size()) +
                   " bytes exceeds the " +
                   std::to_string(kMaxFramePayload) + "-byte limit");
  }
  std::string out;
  out.reserve(kHeaderBytes + frame.payload.size());
  put_u32_le(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.push_back(static_cast<char>(frame.type));
  out += frame.payload;
  return out;
}

void write_frame(int fd, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  send_all(fd, wire.data(), wire.size());
}

bool read_frame(int fd, Frame& frame) {
  unsigned char header[kHeaderBytes];
  if (!recv_exact(fd, reinterpret_cast<char*>(header), kHeaderBytes)) {
    return false;
  }
  const std::uint32_t length = get_u32_le(header);
  if (length > kMaxFramePayload) {
    throw NetError("frame header announces " + std::to_string(length) +
                   " bytes (limit " + std::to_string(kMaxFramePayload) +
                   "); the stream is desynchronized");
  }
  if (!known_type(header[4])) {
    throw NetError("unknown frame type byte " +
                   std::to_string(static_cast<int>(header[4])));
  }
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(length);
  if (length > 0 && !recv_exact(fd, frame.payload.data(), length)) {
    throw NetError("peer closed the connection before the frame payload");
  }
  return true;
}

ReadOutcome read_frame(int fd, Frame& frame, const ReadDeadline& deadline) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point idle_by =
      Clock::now() + std::chrono::milliseconds(deadline.idle_ms);
  Clock::time_point frame_by{};  // set once the frame's first byte lands
  bool started = false;

  // Fills `size` bytes under the active deadline.  Returns kIdle only
  // before the frame's first byte; kEof only at a frame boundary.
  const auto pull = [&](char* data, std::size_t size) -> ReadOutcome {
    std::size_t got = 0;
    while (got < size) {
      int timeout = -1;
      if (!started && deadline.idle_ms > 0) {
        timeout = remaining_ms(idle_by);
      } else if (started && deadline.frame_ms > 0) {
        timeout = remaining_ms(frame_by);
      }
      if (timeout != -1) {
        pollfd pfd{fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, timeout);
        if (rc < 0) {
          if (errno == EINTR) continue;
          throw NetError(std::string("poll failed: ") + std::strerror(errno));
        }
        if (rc == 0) {
          if (!started) return ReadOutcome::kIdle;
          throw FrameStallError("peer stalled mid-frame past the " +
                         std::to_string(deadline.frame_ms) + "ms deadline (" +
                         std::to_string(got) + " of " + std::to_string(size) +
                         " bytes of this read)");
        }
      }
      const ssize_t n = ::recv(fd, data + got, size - got, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw NetError(std::string("recv failed: ") + std::strerror(errno));
      }
      if (n == 0) {
        if (!started && got == 0) return ReadOutcome::kEof;
        throw NetError("peer closed the connection mid-frame (" +
                       std::to_string(got) + " of " + std::to_string(size) +
                       " bytes)");
      }
      if (!started) {
        started = true;
        frame_by = Clock::now() + std::chrono::milliseconds(deadline.frame_ms);
      }
      got += static_cast<std::size_t>(n);
    }
    return ReadOutcome::kFrame;
  };

  unsigned char header[kHeaderBytes];
  const ReadOutcome head = pull(reinterpret_cast<char*>(header), kHeaderBytes);
  if (head != ReadOutcome::kFrame) return head;
  const std::uint32_t length = get_u32_le(header);
  if (length > kMaxFramePayload) {
    throw NetError("frame header announces " + std::to_string(length) +
                   " bytes (limit " + std::to_string(kMaxFramePayload) +
                   "); the stream is desynchronized");
  }
  if (!known_type(header[4])) {
    throw NetError("unknown frame type byte " +
                   std::to_string(static_cast<int>(header[4])));
  }
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(length);
  if (length > 0 &&
      pull(frame.payload.data(), length) != ReadOutcome::kFrame) {
    throw NetError("peer closed the connection before the frame payload");
  }
  return ReadOutcome::kFrame;
}

CommandPayload split_command(std::string_view payload) {
  CommandPayload out;
  const std::size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    out.line.assign(payload);
  } else {
    out.line.assign(payload.substr(0, nl));
    out.body.assign(payload.substr(nl + 1));
  }
  return out;
}

std::string encode_token(std::string_view client_id, std::uint64_t seq,
                         std::string_view command_payload) {
  if (client_id.empty() ||
      client_id.find_first_of(" \t\n") != std::string_view::npos) {
    throw NetError("token client id must be non-empty and whitespace-free");
  }
  std::string out;
  out.reserve(client_id.size() + 24 + command_payload.size());
  out.append(client_id);
  out.push_back(' ');
  out += std::to_string(seq);
  out.push_back('\n');
  out.append(command_payload);
  return out;
}

TokenInfo split_token(std::string_view payload) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    throw NetError("malformed token frame: missing token line");
  }
  const std::string_view line = payload.substr(0, nl);
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos || sp == 0 || sp + 1 >= line.size()) {
    throw NetError("malformed token frame: expected '<client-id> <seq>'");
  }
  TokenInfo info;
  info.client_id.assign(line.substr(0, sp));
  for (const char c : line.substr(sp + 1)) {
    if (c < '0' || c > '9') {
      throw NetError("malformed token frame: non-numeric sequence");
    }
    info.seq = info.seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  info.command.assign(payload.substr(nl + 1));
  return info;
}

std::string encode_hello(std::string_view role, std::uint64_t boot_id,
                         std::string_view banner) {
  std::string out(kMagic);
  out += " role=";
  out += role;
  out += " boot=";
  out += std::to_string(boot_id);
  out.push_back(' ');
  out += banner;
  return out;
}

HelloInfo decode_hello(std::string_view payload) {
  if (payload.rfind(kMagic, 0) != 0) {
    throw NetError("hello payload does not start with the protocol magic");
  }
  HelloInfo info;
  std::string_view rest = payload.substr(kMagic.size());
  while (!rest.empty()) {
    const std::size_t start = rest.find_first_not_of(' ');
    if (start == std::string_view::npos) break;
    rest.remove_prefix(start);
    const std::size_t end = rest.find(' ');
    const std::string_view word =
        end == std::string_view::npos ? rest : rest.substr(0, end);
    const std::size_t eq = word.find('=');
    if (eq == std::string_view::npos) break;  // banner starts here
    const std::string_view key = word.substr(0, eq);
    const std::string_view value = word.substr(eq + 1);
    if (key == "role") {
      info.role.assign(value);
    } else if (key == "boot") {
      info.boot_id = 0;
      for (const char c : value) {
        if (c < '0' || c > '9') {
          info.boot_id = 0;
          break;
        }
        info.boot_id = info.boot_id * 10 + static_cast<std::uint64_t>(c - '0');
      }
    }  // unknown keys: forward compatibility, skip
    rest.remove_prefix(word.size());
  }
  const std::size_t start = rest.find_first_not_of(' ');
  if (start != std::string_view::npos) {
    info.banner.assign(rest.substr(start));
  }
  return info;
}

std::string encode_result(support::Severity severity,
                          std::string_view error) {
  std::string out;
  out.push_back(static_cast<char>('0' + support::exit_code(severity)));
  out += error;
  return out;
}

ResultInfo decode_result(std::string_view payload) {
  if (payload.empty() || payload[0] < '0' || payload[0] > '2') {
    throw NetError("malformed result frame: missing severity byte");
  }
  ResultInfo info;
  info.severity = support::severity_from_exit(payload[0] - '0');
  info.error.assign(payload.substr(1));
  return info;
}

}  // namespace herc::server
