// A lock-free log-bucketed latency histogram.
//
// The server's `stats` command, the swarm driver and the scale benchmark
// all need per-request percentiles without a mutex on the hot path.  The
// histogram keeps exact one-microsecond buckets up to 15us, then four
// sub-buckets per power of two (~25% relative resolution), which spans a
// 10us echo round-trip and a multi-second chaos-interrupted run in one
// fixed-size table.  `record` is one relaxed fetch_add; `percentile`
// walks a snapshot of the counters and reports the bucket's upper edge,
// so a reported p99 never understates the observed latency by more than
// the bucket width.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace herc::server {

class LatencyHistogram {
 public:
  /// Exact buckets for values 0..kExact-1.
  static constexpr std::size_t kExact = 16;
  /// Sub-buckets per octave above the exact range.
  static constexpr std::size_t kSubPerOctave = 4;
  /// Octaves 4..63 (values 16 .. 2^64-1) each get kSubPerOctave buckets.
  static constexpr std::size_t kBuckets = kExact + (64 - 4) * kSubPerOctave;

  void record(std::uint64_t us) {
    buckets_[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }

  /// The value below which a fraction `q` (0 < q <= 1) of the recorded
  /// samples fall, rounded up to its bucket's upper edge.  0 when empty.
  [[nodiscard]] std::uint64_t percentile(double q) const {
    std::array<std::uint64_t, kBuckets> snap{};
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      snap[i] = buckets_[i].load(std::memory_order_relaxed);
      total += snap[i];
    }
    if (total == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (target == 0) target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += snap[i];
      if (seen >= target) return upper_edge(i);
    }
    return upper_edge(kBuckets - 1);
  }

 private:
  static std::size_t bucket_of(std::uint64_t us) {
    if (us < kExact) return static_cast<std::size_t>(us);
    const auto octave = static_cast<std::size_t>(std::bit_width(us)) - 1;
    const auto sub =
        static_cast<std::size_t>((us >> (octave - 2)) & (kSubPerOctave - 1));
    return kExact + (octave - 4) * kSubPerOctave + sub;
  }

  static std::uint64_t upper_edge(std::size_t bucket) {
    if (bucket < kExact) return bucket;
    const std::size_t octave = 4 + (bucket - kExact) / kSubPerOctave;
    const std::size_t sub = (bucket - kExact) % kSubPerOctave;
    return ((static_cast<std::uint64_t>(sub) + kSubPerOctave + 1)
            << (octave - 2)) -
           1;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

}  // namespace herc::server
