#include "tools/composite.hpp"

#include "support/error.hpp"
#include "support/text.hpp"

namespace herc::tools {

using support::ExecError;

namespace {
constexpr std::string_view kHeader = "@composite";
constexpr std::string_view kPart = "@part ";
}  // namespace

std::string join_composite(const std::vector<std::string>& parts) {
  std::string out(kHeader);
  out += " " + std::to_string(parts.size()) + "\n";
  for (const std::string& part : parts) {
    // Length-prefixed so part contents never collide with the markers.
    out += kPart;
    out += std::to_string(part.size());
    out += "\n";
    out += part;
    out += "\n";
  }
  return out;
}

std::vector<std::string> split_composite(std::string_view payload) {
  if (payload.substr(0, kHeader.size()) != kHeader) {
    throw ExecError("not a composite payload");
  }
  std::size_t pos = payload.find('\n');
  if (pos == std::string_view::npos) {
    throw ExecError("malformed composite payload: missing header newline");
  }
  const std::string count_str(
      support::trim(payload.substr(kHeader.size(), pos - kHeader.size())));
  std::size_t expected = 0;
  try {
    expected = static_cast<std::size_t>(std::stoul(count_str));
  } catch (const std::exception&) {
    throw ExecError("malformed composite payload: bad part count");
  }
  ++pos;
  std::vector<std::string> parts;
  while (pos < payload.size()) {
    if (payload.substr(pos, kPart.size()) != kPart) {
      throw ExecError("malformed composite payload: expected part marker");
    }
    pos += kPart.size();
    const std::size_t nl = payload.find('\n', pos);
    if (nl == std::string_view::npos) {
      throw ExecError("malformed composite payload: truncated part header");
    }
    std::size_t length = 0;
    try {
      length = static_cast<std::size_t>(
          std::stoul(std::string(payload.substr(pos, nl - pos))));
    } catch (const std::exception&) {
      throw ExecError("malformed composite payload: bad part length");
    }
    pos = nl + 1;
    if (pos + length > payload.size()) {
      throw ExecError("malformed composite payload: truncated part body");
    }
    parts.emplace_back(payload.substr(pos, length));
    pos += length;
    if (pos < payload.size() && payload[pos] == '\n') ++pos;
  }
  if (parts.size() != expected) {
    throw ExecError("malformed composite payload: expected " +
                    std::to_string(expected) + " parts, found " +
                    std::to_string(parts.size()));
  }
  return parts;
}

}  // namespace herc::tools
