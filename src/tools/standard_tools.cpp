#include "tools/standard_tools.hpp"

#include <cstdint>

#include "circuit/compare.hpp"
#include "circuit/cosmos.hpp"
#include "circuit/edits.hpp"
#include "circuit/extract.hpp"
#include "circuit/layout.hpp"
#include "circuit/logic_view.hpp"
#include "circuit/models.hpp"
#include "circuit/netlist.hpp"
#include "circuit/optimize.hpp"
#include "circuit/place.hpp"
#include "circuit/plot.hpp"
#include "circuit/route.hpp"
#include "circuit/sim.hpp"
#include "circuit/stimuli.hpp"
#include "circuit/vcd.hpp"
#include "circuit/verify.hpp"
#include "support/error.hpp"
#include "tools/composite.hpp"

namespace herc::tools {

using support::ExecError;

namespace {

/// Unpacks a `Circuit` composite payload into (models, netlist).
std::pair<circuit::DeviceModelLibrary, circuit::Netlist> unpack_circuit(
    const std::string& payload) {
  const std::vector<std::string> parts = split_composite(payload);
  if (parts.size() != 2) {
    throw ExecError("Circuit composite must have two parts (DeviceModels, "
                    "Netlist), found " +
                    std::to_string(parts.size()));
  }
  return {circuit::DeviceModelLibrary::from_text(parts[0]),
          circuit::Netlist::from_text(parts[1])};
}

std::uint64_t arg_u64(const ToolContext& ctx, std::string_view key,
                      std::uint64_t fallback) {
  const std::string v = ctx.arg(key);
  if (v.empty()) return fallback;
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    throw ExecError("tool '" + ctx.tool_type_name + "': bad argument " +
                    std::string(key) + "='" + v + "'");
  }
}

double arg_double(const ToolContext& ctx, std::string_view key,
                  double fallback) {
  const std::string v = ctx.arg(key);
  if (v.empty()) return fallback;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw ExecError("tool '" + ctx.tool_type_name + "': bad argument " +
                    std::string(key) + "='" + v + "'");
  }
}

// ---- encapsulation functions ------------------------------------------------

ToolOutput run_model_editor(const ToolContext& ctx) {
  const circuit::DeviceModelLibrary base =
      ctx.has_input("seed")
          ? circuit::DeviceModelLibrary::from_text(ctx.payload("seed"))
          : circuit::DeviceModelLibrary::standard();
  ToolOutput out;
  out.set("DeviceModels",
          circuit::apply_model_edits(base, ctx.tool_payload).to_text());
  return out;
}

ToolOutput run_circuit_editor(const ToolContext& ctx) {
  const circuit::Netlist base =
      ctx.has_input("seed")
          ? circuit::Netlist::from_text(ctx.payload("seed"))
          : circuit::Netlist();
  ToolOutput out;
  out.set("EditedNetlist",
          circuit::apply_netlist_edits(base, ctx.tool_payload).to_text());
  return out;
}

ToolOutput run_layout_editor(const ToolContext& ctx) {
  const circuit::Layout base =
      ctx.has_input("seed")
          ? circuit::Layout::from_text(ctx.payload("seed"))
          : circuit::Layout("edited", "", 16, 16);
  ToolOutput out;
  out.set("EditedLayout",
          circuit::apply_layout_edits(base, ctx.tool_payload).to_text());
  return out;
}

ToolOutput run_placer(const ToolContext& ctx) {
  const circuit::Netlist netlist =
      circuit::Netlist::from_text(ctx.payload("Netlist"));
  circuit::PlaceOptions options;
  options.moves = arg_u64(ctx, "moves", options.moves);
  options.seed = arg_u64(ctx, "seed", options.seed);
  ToolOutput out;
  out.set("PlacedLayout", circuit::place(netlist, options).to_text());
  return out;
}

ToolOutput run_router(const ToolContext& ctx) {
  const circuit::Layout layout =
      circuit::Layout::from_text(ctx.payload("Layout"));
  circuit::RouteOptions options;
  options.route_rails = ctx.arg("route_rails") == "1";
  ToolOutput out;
  out.set("RoutedLayout", circuit::route(layout, options).to_text());
  return out;
}

ToolOutput run_extractor(const ToolContext& ctx) {
  const circuit::Layout layout =
      circuit::Layout::from_text(ctx.payload("Layout"));
  circuit::ExtractOptions options;
  options.cap_per_unit_pf =
      arg_double(ctx, "cap_per_unit_pf", options.cap_per_unit_pf);
  circuit::ExtractStatistics stats;
  const circuit::Netlist netlist = circuit::extract(layout, options, &stats);
  ToolOutput out;
  out.set("ExtractedNetlist", netlist.to_text());
  out.set("ExtractionStatistics", stats.to_text());
  return out;
}

ToolOutput run_simulator(const ToolContext& ctx) {
  const auto [models, netlist] = unpack_circuit(ctx.payload("Circuit"));
  const circuit::Stimuli stimuli =
      circuit::Stimuli::from_text(ctx.payload("Stimuli"));
  const circuit::SimOptions options =
      ctx.has_input("options")
          ? circuit::SimOptions::from_text(ctx.payload("options"))
          : circuit::SimOptions{};
  const circuit::SimResult result =
      circuit::simulate(netlist, models, stimuli, options);
  ToolOutput out;
  out.set("Performance", result.to_text());
  out.set("Statistics", result.stats.to_text());
  return out;
}

ToolOutput run_verifier(const ToolContext& ctx) {
  const circuit::Layout layout =
      circuit::Layout::from_text(ctx.payload("Layout"));
  const circuit::Netlist reference =
      circuit::Netlist::from_text(ctx.payload("Netlist"));
  ToolOutput out;
  out.set("Verification",
          circuit::verify_layout(layout, reference).to_text());
  return out;
}

ToolOutput run_plotter(const ToolContext& ctx) {
  const circuit::SimResult result =
      circuit::SimResult::from_text(ctx.payload("Performance"));
  ToolOutput out;
  if (ctx.arg("format", "ascii") == "vcd") {
    out.set("PerformancePlot", circuit::to_vcd(result));
  } else {
    circuit::PlotOptions options;
    options.title = ctx.arg("title", "performance plot");
    out.set("PerformancePlot", circuit::ascii_plot(result, options));
  }
  return out;
}

ToolOutput run_sim_compiler(const ToolContext& ctx) {
  const circuit::Netlist netlist =
      circuit::Netlist::from_text(ctx.payload("Netlist"));
  const circuit::DeviceModelLibrary models =
      circuit::DeviceModelLibrary::standard();
  const auto max_inputs = static_cast<std::size_t>(
      arg_u64(ctx, "max_component_inputs", 12));
  ToolOutput out;
  out.set("CompiledSimulator",
          circuit::compile_netlist(netlist, models, max_inputs).to_text());
  return out;
}

ToolOutput run_compiled_simulator(const ToolContext& ctx) {
  // The program *is* the tool instance's payload (Fig. 2).
  const circuit::CompiledSim program =
      circuit::CompiledSim::from_text(ctx.tool_payload);
  const circuit::Stimuli stimuli =
      circuit::Stimuli::from_text(ctx.payload("Stimuli"));
  const circuit::SimResult result = circuit::run_compiled(program, stimuli);
  ToolOutput out;
  // Products under both naming schemes: Fig. 2's standalone schema calls
  // them Performance/Statistics, the full schema SwitchPerformance/... .
  out.set("Performance", result.to_text());
  out.set("Statistics", result.stats.to_text());
  out.set("SwitchPerformance", result.to_text());
  out.set("SwitchStatistics", result.stats.to_text());
  return out;
}

ToolOutput run_comparator(const ToolContext& ctx) {
  const circuit::SimResult golden =
      circuit::SimResult::from_text(ctx.payload("golden"));
  const circuit::SimResult candidate =
      circuit::SimResult::from_text(ctx.payload("candidate"));
  circuit::CompareOptions options;
  options.time_tolerance_ps = static_cast<std::int64_t>(
      arg_u64(ctx, "time_tolerance_ps", 0));
  ToolOutput out;
  out.set("PerformanceDiff",
          circuit::compare_performance(golden, candidate, options).to_text());
  return out;
}

ToolOutput run_synthesizer(const ToolContext& ctx) {
  const circuit::LogicView view =
      circuit::LogicView::from_text(ctx.payload("LogicView"));
  ToolOutput out;
  out.set("SynthesizedNetlist", circuit::synthesize(view).to_text());
  return out;
}

/// One function serving the three optimizer tools; the algorithm comes
/// from the encapsulation's fixed arguments (shared encapsulation, §3.3).
ToolOutput run_optimizer(const ToolContext& ctx) {
  const auto [models, netlist] = unpack_circuit(ctx.payload("Circuit"));
  const circuit::Stimuli stimuli =
      circuit::Stimuli::from_text(ctx.payload("Stimuli"));
  circuit::OptimizeOptions options;
  const std::string alg = ctx.arg("algorithm", "gradient");
  const auto parsed = circuit::opt_algorithm_from(alg);
  if (!parsed) {
    throw ExecError("optimizer: unknown algorithm '" + alg + "'");
  }
  options.algorithm = *parsed;
  options.iterations =
      static_cast<std::size_t>(arg_u64(ctx, "iterations", 20));
  options.seed = arg_u64(ctx, "seed", 1);
  const circuit::OptimizeResult result =
      circuit::optimize(netlist, models, stimuli, options);
  ToolOutput out;
  out.set("OptimizedNetlist", result.netlist.to_text());
  return out;
}

}  // namespace

void register_standard_tools(ToolRegistry& registry) {
  const schema::TaskSchema& schema = registry.schema();
  const auto add = [&](const char* tool, const char* variant,
                       ToolFunction fn,
                       std::unordered_map<std::string, std::string> args = {},
                       bool accepts_sets = false) {
    const schema::EntityTypeId type = schema.find(tool);
    if (!type.valid()) return;  // entity absent from this schema subset
    Encapsulation enc;
    enc.name = std::string(tool) + "." + variant;
    enc.tool_type = type;
    enc.fn = std::move(fn);
    enc.args = std::move(args);
    enc.accepts_instance_sets = accepts_sets;
    registry.register_encapsulation(std::move(enc));
  };

  add("ModelEditor", "default", run_model_editor);
  add("CircuitEditor", "default", run_circuit_editor);
  add("LayoutEditor", "default", run_layout_editor);
  add("Placer", "default", run_placer);
  // The paper's multiple-encapsulations-with-differing-arguments case.
  add("Placer", "fast", run_placer, {{"moves", "100"}});
  add("Placer", "quality", run_placer, {{"moves", "20000"}});
  add("Router", "default", run_router);
  add("Extractor", "default", run_extractor);
  add("Simulator", "default", run_simulator);
  add("Verifier", "default", run_verifier);
  add("Plotter", "default", run_plotter);
  // Same tool, different output format — another multiple-encapsulation
  // example alongside the placer variants.
  add("Plotter", "vcd", run_plotter, {{"format", "vcd"}});
  add("SimCompiler", "default", run_sim_compiler);
  add("CompiledSimulator", "default", run_compiled_simulator);
  add("Synthesizer", "default", run_synthesizer);
  add("Comparator", "default", run_comparator);
  add("Comparator", "loose", run_comparator,
      {{"time_tolerance_ps", "200"}});
  // Shared encapsulation: three tools, one function, differing arguments.
  add("GradientOptimizer", "default", run_optimizer,
      {{"algorithm", "gradient"}});
  add("AnnealingOptimizer", "default", run_optimizer,
      {{"algorithm", "annealing"}});
  add("RandomSearchOptimizer", "default", run_optimizer,
      {{"algorithm", "random"}});
}

void install_standard_compose_checks(schema::TaskSchema& schema) {
  const schema::EntityTypeId circuit_type = schema.find("Circuit");
  if (!circuit_type.valid()) return;
  schema.set_compose_check(
      circuit_type,
      [](const std::vector<std::string>& parts, std::string& why) {
        if (parts.size() != 2) {
          why = "Circuit needs exactly two components";
          return false;
        }
        try {
          const circuit::DeviceModelLibrary models =
              circuit::DeviceModelLibrary::from_text(parts[0]);
          const circuit::Netlist netlist =
              circuit::Netlist::from_text(parts[1]);
          for (const circuit::Device& d : netlist.devices()) {
            if (d.is_mos() && !models.has_model(d.model)) {
              why = "netlist device '" + d.name + "' needs model '" +
                    d.model + "' which the model library lacks";
              return false;
            }
          }
        } catch (const std::exception& e) {
          why = e.what();
          return false;
        }
        return true;
      });
  schema.set_decompose(circuit_type, [](const std::string& payload) {
    return split_composite(payload);
  });
}

}  // namespace herc::tools
