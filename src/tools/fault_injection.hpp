// Deterministic fault injection for tool encapsulations.
//
// Real CAD tools fail constantly — they crash, hang, and emit garbage —
// and the execution engine's failure semantics need a reproducible way to
// be tested.  `FaultInjectingRegistry` decorates any `ToolRegistry`:
// resolution is delegated to the wrapped registry, but every returned
// encapsulation's function is wrapped so that chosen (encapsulation,
// invocation-count) pairs misbehave.
//
// Faults are addressed by the *per-encapsulation invocation index* (0-based,
// counted across the whole registry lifetime, retries included), which makes
// schedules reproducible: the same flow with the same fault plan fails the
// same task attempts on every run, serial or parallel — provided each
// faulted encapsulation's invocation order is itself deterministic (e.g. it
// is invoked once, or only from one task).
//
// Besides explicit schedules there is a seeded pseudo-random plan: the
// fault decision for invocation `n` of encapsulation `e` is a pure hash of
// (seed, e, n), so it never depends on thread interleaving.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "tools/registry.hpp"

namespace herc::tools {

/// The ways a wrapped tool can misbehave.
enum class FaultKind : std::uint8_t {
  kThrow,    ///< throws `ExecError` instead of running
  kHang,     ///< sleeps `hang` (past any executor timeout), then runs
  kCorrupt,  ///< runs nothing and returns an output naming a bogus entity
};

/// One scheduled fault: the `invocation`-th call (0-based) of the named
/// encapsulation misbehaves.
struct FaultSpec {
  std::string encapsulation;   ///< encapsulation name, e.g. "Simulator.default"
  std::size_t invocation = 0;  ///< 0-based per-encapsulation call index
  FaultKind kind = FaultKind::kThrow;
  /// How long a `kHang` fault stalls before running the real tool.
  std::chrono::milliseconds hang{50};
};

/// A read-only decorator over a `ToolRegistry` that injects faults.
/// Registration methods of the base class must not be called on the
/// decorator; register tools on the wrapped registry instead.
class FaultInjectingRegistry final : public ToolRegistry {
 public:
  /// `inner` must outlive the decorator.  `seed` drives `inject_random`.
  explicit FaultInjectingRegistry(const ToolRegistry& inner,
                                  std::uint64_t seed = 0);

  /// Schedules one fault.  May be called between runs; thread-safe.
  void inject(FaultSpec spec);

  /// Arms a pseudo-random plan: every invocation of every encapsulation
  /// faults with probability `probability`, decided by a pure hash of
  /// (seed, encapsulation name, invocation index).
  void inject_random(double probability, FaultKind kind,
                     std::chrono::milliseconds hang = std::chrono::milliseconds{50});

  /// Clears all scheduled faults and the random plan (counters are kept).
  void clear_faults();

  // Delegating lookups; resolved encapsulations come back fault-wrapped.
  [[nodiscard]] const Encapsulation& resolve(
      schema::EntityTypeId tool_type) const override;
  [[nodiscard]] bool has(schema::EntityTypeId tool_type) const override;
  [[nodiscard]] const Encapsulation* find(
      std::string_view name) const override;
  [[nodiscard]] std::vector<const Encapsulation*> variants(
      schema::EntityTypeId tool_type) const override;
  [[nodiscard]] std::vector<std::string> names() const override;

  /// How many times `encapsulation` has been invoked through the decorator.
  [[nodiscard]] std::size_t invocations(std::string_view encapsulation) const;
  /// Total faults fired so far.
  [[nodiscard]] std::size_t faults_fired() const;

 private:
  struct State;  // shared with wrapped functions (they may outlive a run)

  const Encapsulation& wrap(const Encapsulation& enc) const;

  const ToolRegistry* inner_;
  std::shared_ptr<State> state_;
  mutable std::mutex wrap_mutex_;
  mutable std::unordered_map<std::string, Encapsulation> wrapped_;
};

}  // namespace herc::tools
