// Standard encapsulations: the bridge from the Fig. 1/2 schemas to the
// circuit substrate.
//
// `register_standard_tools` wires every tool entity of
// `schema::make_full_schema()` (and its Fig. 1/2 subsets) to a real
// implementation from `herc::circuit`.  Encapsulation conventions:
//
//  * editors read their edit script from the bound *tool instance's*
//    payload (a CircuitEditor instance is one captured editing session);
//  * the compiled simulator reads its program from its own tool payload —
//    it is the tool the SimCompiler task produced (Fig. 2);
//  * `placer.fast` / `placer.quality` differ only in arguments (§3.3);
//  * one optimizer encapsulation serves all three optimizer tool types
//    (shared encapsulation code, §3.3).
#pragma once

#include "schema/task_schema.hpp"
#include "tools/registry.hpp"

namespace herc::tools {

/// Registers every encapsulation whose tool entity exists in
/// `registry.schema()`; entities absent from the schema are skipped, so
/// this works for the Fig. 1, Fig. 2 and full schemas alike.
void register_standard_tools(ToolRegistry& registry);

/// Installs the `Circuit` composite consistency check ("can these device
/// models be used with this circuit?") on `schema`, when it has a
/// `Circuit` entity.
void install_standard_compose_checks(schema::TaskSchema& schema);

}  // namespace herc::tools
