// The tool-encapsulation registry.
//
// The registry maps tool *entity types* to encapsulations.  Resolution
// walks up the subtype hierarchy, so one registration for an abstract
// `Optimizer` serves its three concrete subtypes — the paper's shared
// encapsulation.  Several encapsulations may exist for one type (differing
// only in arguments, §3.3); the default is selectable.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "schema/task_schema.hpp"
#include "tools/tool_context.hpp"

namespace herc::tools {

/// One registered tool wrapper.
struct Encapsulation {
  /// Unique name, by convention `<tool>.<variant>` ("placer.fast").
  std::string name;
  /// The tool entity type (possibly abstract) it implements.
  schema::EntityTypeId tool_type;
  ToolFunction fn;
  /// Fixed arguments baked into this variant.
  std::unordered_map<std::string, std::string> args;
  /// When set, instance sets bound to an input are passed to a single call
  /// instead of fanning the task out per instance (§4.1).
  bool accepts_instance_sets = false;
  /// Clear for encapsulations whose output is not a pure function of their
  /// inputs (wall-clock seeds, external state).  Memoization
  /// (`reuse_existing`) and crash-resume may then silently reuse a product
  /// a fresh run would not reproduce; `herc lint` flags flows that feed
  /// such products into further tasks (HL105).
  bool deterministic = true;
};

/// The lookup methods are virtual so decorators (e.g. the deterministic
/// `FaultInjectingRegistry` of `tools/fault_injection.hpp`) can interpose
/// on resolution without the execution engine knowing.
class ToolRegistry {
 public:
  explicit ToolRegistry(const schema::TaskSchema& schema);
  virtual ~ToolRegistry() = default;

  [[nodiscard]] const schema::TaskSchema& schema() const { return *schema_; }

  /// Registers an encapsulation.  Throws `ExecError` on a duplicate name or
  /// a non-tool entity type.  The first registration for a type becomes its
  /// default.
  void register_encapsulation(Encapsulation enc);

  /// Makes `name` the default for its tool type.
  void set_default(std::string_view name);

  /// The default encapsulation for `tool_type`, searching the type itself
  /// then its ancestors.  Throws `ExecError` when none is registered.
  [[nodiscard]] virtual const Encapsulation& resolve(
      schema::EntityTypeId tool_type) const;

  [[nodiscard]] virtual bool has(schema::EntityTypeId tool_type) const;
  [[nodiscard]] virtual const Encapsulation* find(std::string_view name) const;

  /// All encapsulations registered for `tool_type` (exact type only).
  [[nodiscard]] virtual std::vector<const Encapsulation*> variants(
      schema::EntityTypeId tool_type) const;

  /// Every registered encapsulation name (the tool catalog's listing).
  [[nodiscard]] virtual std::vector<std::string> names() const;

 private:
  const schema::TaskSchema* schema_;
  std::vector<Encapsulation> encapsulations_;
  /// tool type -> index of its default encapsulation.
  std::unordered_map<schema::EntityTypeId, std::size_t, support::IdHash>
      default_of_;
};

}  // namespace herc::tools
