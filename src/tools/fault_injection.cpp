#include "tools/fault_injection.hpp"

#include <thread>
#include <vector>

#include "support/error.hpp"

namespace herc::tools {

using support::ExecError;

namespace {

/// splitmix64 — a small, well-mixed pure hash; the fault decision for a
/// (seed, name, invocation) triple must be identical on every run and
/// independent of thread interleaving.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

struct FaultInjectingRegistry::State {
  std::uint64_t seed = 0;
  mutable std::mutex mutex;
  /// encapsulation name -> next invocation index.
  std::unordered_map<std::string, std::size_t> counters;
  /// (name, invocation) -> scheduled fault.
  std::unordered_map<std::string, std::unordered_map<std::size_t, FaultSpec>>
      scheduled;
  /// Random plan: fire with probability `random_threshold / 2^32`.
  bool random_armed = false;
  std::uint32_t random_threshold = 0;
  FaultKind random_kind = FaultKind::kThrow;
  std::chrono::milliseconds random_hang{50};
  std::size_t fired = 0;

  /// Claims this call's invocation index and the fault (if any) to fire.
  struct Decision {
    bool fault = false;
    FaultKind kind = FaultKind::kThrow;
    std::chrono::milliseconds hang{0};
    std::size_t invocation = 0;
  };

  Decision decide(const std::string& name) {
    std::scoped_lock lock(mutex);
    Decision d;
    d.invocation = counters[name]++;
    const auto by_name = scheduled.find(name);
    if (by_name != scheduled.end()) {
      const auto it = by_name->second.find(d.invocation);
      if (it != by_name->second.end()) {
        d.fault = true;
        d.kind = it->second.kind;
        d.hang = it->second.hang;
      }
    }
    if (!d.fault && random_armed) {
      const std::uint64_t h =
          mix(seed ^ mix(hash_name(name) ^ (0x51ed270b * d.invocation)));
      if (static_cast<std::uint32_t>(h) < random_threshold) {
        d.fault = true;
        d.kind = random_kind;
        d.hang = random_hang;
      }
    }
    if (d.fault) ++fired;
    return d;
  }
};

FaultInjectingRegistry::FaultInjectingRegistry(const ToolRegistry& inner,
                                               std::uint64_t seed)
    : ToolRegistry(inner.schema()),
      inner_(&inner),
      state_(std::make_shared<State>()) {
  state_->seed = seed;
}

void FaultInjectingRegistry::inject(FaultSpec spec) {
  std::scoped_lock lock(state_->mutex);
  auto& by_invocation = state_->scheduled[spec.encapsulation];
  by_invocation[spec.invocation] = std::move(spec);
}

void FaultInjectingRegistry::inject_random(double probability, FaultKind kind,
                                           std::chrono::milliseconds hang) {
  std::scoped_lock lock(state_->mutex);
  if (probability < 0.0) probability = 0.0;
  if (probability > 1.0) probability = 1.0;
  state_->random_armed = true;
  state_->random_threshold =
      static_cast<std::uint32_t>(probability * 4294967295.0);
  state_->random_kind = kind;
  state_->random_hang = hang;
}

void FaultInjectingRegistry::clear_faults() {
  std::scoped_lock lock(state_->mutex);
  state_->scheduled.clear();
  state_->random_armed = false;
}

const Encapsulation& FaultInjectingRegistry::wrap(
    const Encapsulation& enc) const {
  std::scoped_lock lock(wrap_mutex_);
  const auto it = wrapped_.find(enc.name);
  if (it != wrapped_.end()) return it->second;
  Encapsulation shim = enc;
  // Capture everything by value: a hung invocation abandoned by the
  // executor's timeout may outlive the decorator itself.
  shim.fn = [state = state_, inner_fn = enc.fn,
             name = enc.name](const ToolContext& ctx) -> ToolOutput {
    const State::Decision d = state->decide(name);
    if (d.fault) {
      switch (d.kind) {
        case FaultKind::kThrow:
          throw ExecError("injected fault: '" + name + "' invocation " +
                          std::to_string(d.invocation) + " crashed");
        case FaultKind::kHang:
          std::this_thread::sleep_for(d.hang);
          break;  // then run the real tool — a slow tool, not a dead one
        case FaultKind::kCorrupt: {
          ToolOutput corrupt;
          corrupt.set("__corrupt__",
                      "injected corrupt output from '" + name + "'");
          return corrupt;
        }
      }
    }
    return inner_fn(ctx);
  };
  return wrapped_.emplace(enc.name, std::move(shim)).first->second;
}

const Encapsulation& FaultInjectingRegistry::resolve(
    schema::EntityTypeId tool_type) const {
  return wrap(inner_->resolve(tool_type));
}

bool FaultInjectingRegistry::has(schema::EntityTypeId tool_type) const {
  return inner_->has(tool_type);
}

const Encapsulation* FaultInjectingRegistry::find(
    std::string_view name) const {
  const Encapsulation* enc = inner_->find(name);
  return enc == nullptr ? nullptr : &wrap(*enc);
}

std::vector<const Encapsulation*> FaultInjectingRegistry::variants(
    schema::EntityTypeId tool_type) const {
  std::vector<const Encapsulation*> out;
  for (const Encapsulation* enc : inner_->variants(tool_type)) {
    out.push_back(&wrap(*enc));
  }
  return out;
}

std::vector<std::string> FaultInjectingRegistry::names() const {
  return inner_->names();
}

std::size_t FaultInjectingRegistry::invocations(
    std::string_view encapsulation) const {
  std::scoped_lock lock(state_->mutex);
  const auto it = state_->counters.find(std::string(encapsulation));
  return it == state_->counters.end() ? 0 : it->second;
}

std::size_t FaultInjectingRegistry::faults_fired() const {
  std::scoped_lock lock(state_->mutex);
  return state_->fired;
}

}  // namespace herc::tools
