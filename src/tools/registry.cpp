#include "tools/registry.hpp"

#include "support/error.hpp"

namespace herc::tools {

using support::ExecError;

ToolRegistry::ToolRegistry(const schema::TaskSchema& schema)
    : schema_(&schema) {}

void ToolRegistry::register_encapsulation(Encapsulation enc) {
  if (find(enc.name) != nullptr) {
    throw ExecError("encapsulation '" + enc.name + "' already registered");
  }
  if (!schema_->is_tool(enc.tool_type)) {
    throw ExecError("encapsulation '" + enc.name +
                    "' targets non-tool entity '" +
                    schema_->entity_name(enc.tool_type) + "'");
  }
  if (!enc.fn) {
    throw ExecError("encapsulation '" + enc.name + "' has no function");
  }
  default_of_.try_emplace(enc.tool_type, encapsulations_.size());
  encapsulations_.push_back(std::move(enc));
}

void ToolRegistry::set_default(std::string_view name) {
  for (std::size_t i = 0; i < encapsulations_.size(); ++i) {
    if (encapsulations_[i].name == name) {
      default_of_[encapsulations_[i].tool_type] = i;
      return;
    }
  }
  throw ExecError("no encapsulation named '" + std::string(name) + "'");
}

const Encapsulation& ToolRegistry::resolve(
    schema::EntityTypeId tool_type) const {
  for (schema::EntityTypeId cur = tool_type; cur.valid();
       cur = schema_->entity(cur).parent) {
    const auto it = default_of_.find(cur);
    if (it != default_of_.end()) return encapsulations_[it->second];
  }
  throw ExecError("no encapsulation registered for tool '" +
                  schema_->entity_name(tool_type) + "'");
}

bool ToolRegistry::has(schema::EntityTypeId tool_type) const {
  for (schema::EntityTypeId cur = tool_type; cur.valid();
       cur = schema_->entity(cur).parent) {
    if (default_of_.contains(cur)) return true;
  }
  return false;
}

const Encapsulation* ToolRegistry::find(std::string_view name) const {
  for (const Encapsulation& enc : encapsulations_) {
    if (enc.name == name) return &enc;
  }
  return nullptr;
}

std::vector<const Encapsulation*> ToolRegistry::variants(
    schema::EntityTypeId tool_type) const {
  std::vector<const Encapsulation*> out;
  for (const Encapsulation& enc : encapsulations_) {
    if (enc.tool_type == tool_type) out.push_back(&enc);
  }
  return out;
}

std::vector<std::string> ToolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(encapsulations_.size());
  for (const Encapsulation& enc : encapsulations_) out.push_back(enc.name);
  return out;
}

}  // namespace herc::tools
