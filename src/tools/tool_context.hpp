// The interface between the execution engine and tool encapsulations.
//
// An encapsulation is a C++ function standing in for a wrapped external
// tool.  It receives a `ToolContext` — the payloads of the tool instance
// itself and of every input instance, plus the encapsulation's fixed
// arguments — and returns a `ToolOutput` naming a payload per produced
// entity type (tasks may produce multiple outputs, Fig. 5).
//
// Two paper mechanisms surface here:
//  * the tool instance's own payload is data (`tool_payload`): a
//    CompiledSimulator instance carries its compiled program, a
//    CircuitEditor instance carries the designer's edit script;
//  * fixed `args` let several encapsulations of one tool differ only in
//    arguments (§3.3).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/instance_id.hpp"
#include "schema/task_schema.hpp"

namespace herc::tools {

/// One input position of the running task.
struct ToolInput {
  schema::EntityTypeId type;
  std::string type_name;
  std::string role;
  /// Usually one payload; several when the designer bound an instance set
  /// and the encapsulation accepts sets (§4.1).
  std::vector<std::string> payloads;
  std::vector<data::InstanceId> instances;
};

/// Everything an encapsulation sees.
struct ToolContext {
  const schema::TaskSchema* schema = nullptr;
  schema::EntityTypeId tool_type;
  std::string tool_type_name;
  data::InstanceId tool_instance;
  std::string tool_payload;
  std::vector<ToolInput> inputs;
  /// The encapsulation's fixed arguments.
  std::unordered_map<std::string, std::string> args;

  /// Finds an input by role; falls back to matching the type name.  Throws
  /// `ExecError` when absent.
  [[nodiscard]] const ToolInput& input(std::string_view role_or_type) const;
  [[nodiscard]] bool has_input(std::string_view role_or_type) const;
  /// Single payload of that input (throws when it carries a set).
  [[nodiscard]] const std::string& payload(
      std::string_view role_or_type) const;
  /// Argument lookup with default.
  [[nodiscard]] std::string arg(std::string_view key,
                                std::string_view fallback = "") const;
};

/// What the task produced: payload per output entity-type name.  A tool
/// may emit more product types than the flow requested; extras are ignored.
class ToolOutput {
 public:
  void set(std::string type_name, std::string payload);
  [[nodiscard]] const std::string* find(std::string_view type_name) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  products() const {
    return products_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> products_;
};

using ToolFunction = std::function<ToolOutput(const ToolContext&)>;

}  // namespace herc::tools
