#include "tools/tool_context.hpp"

#include "support/error.hpp"

namespace herc::tools {

using support::ExecError;

const ToolInput& ToolContext::input(std::string_view role_or_type) const {
  for (const ToolInput& in : inputs) {
    if (!in.role.empty() && in.role == role_or_type) return in;
  }
  for (const ToolInput& in : inputs) {
    if (in.type_name == role_or_type) return in;
  }
  // Subtype-tolerant fallback: accept an input whose type descends from the
  // requested name (e.g. asking for "Netlist" finds an "ExtractedNetlist").
  if (schema != nullptr) {
    const schema::EntityTypeId want = schema->find(role_or_type);
    if (want.valid()) {
      for (const ToolInput& in : inputs) {
        if (schema->is_ancestor_or_self(want, in.type)) return in;
      }
    }
  }
  throw ExecError("tool '" + tool_type_name + "': no input named '" +
                  std::string(role_or_type) + "'");
}

bool ToolContext::has_input(std::string_view role_or_type) const {
  for (const ToolInput& in : inputs) {
    if ((!in.role.empty() && in.role == role_or_type) ||
        in.type_name == role_or_type) {
      return true;
    }
  }
  if (schema != nullptr) {
    const schema::EntityTypeId want = schema->find(role_or_type);
    if (want.valid()) {
      for (const ToolInput& in : inputs) {
        if (schema->is_ancestor_or_self(want, in.type)) return true;
      }
    }
  }
  return false;
}

const std::string& ToolContext::payload(std::string_view role_or_type) const {
  const ToolInput& in = input(role_or_type);
  if (in.payloads.size() != 1) {
    throw ExecError("tool '" + tool_type_name + "': input '" +
                    std::string(role_or_type) + "' carries " +
                    std::to_string(in.payloads.size()) +
                    " payloads where one was expected");
  }
  return in.payloads.front();
}

std::string ToolContext::arg(std::string_view key,
                             std::string_view fallback) const {
  const auto it = args.find(std::string(key));
  return it == args.end() ? std::string(fallback) : it->second;
}

void ToolOutput::set(std::string type_name, std::string payload) {
  for (auto& [name, existing] : products_) {
    if (name == type_name) {
      existing = std::move(payload);
      return;
    }
  }
  products_.emplace_back(std::move(type_name), std::move(payload));
}

const std::string* ToolOutput::find(std::string_view type_name) const {
  for (const auto& [name, payload] : products_) {
    if (name == type_name) return &payload;
  }
  return nullptr;
}

}  // namespace herc::tools
