// Composite-entity payload packing (paper §3.1).
//
// Composite entities (e.g. `Circuit` = device models + netlist) carry the
// concatenation of their component payloads.  In practice the paper notes
// the data is "often stored separately anyway, with the composite entity
// storing pointers" — the blob store already dedupes the component bytes,
// so concatenating costs nothing extra while keeping payloads
// self-contained.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace herc::tools {

/// Packs component payloads into one composite payload.
[[nodiscard]] std::string join_composite(
    const std::vector<std::string>& parts);

/// Inverse of `join_composite` — the implicit *decomposition* function.
/// Throws `ExecError` on a malformed composite payload.
[[nodiscard]] std::vector<std::string> split_composite(
    std::string_view payload);

}  // namespace herc::tools
